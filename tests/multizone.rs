//! §3's N-zone extension: *"It is straightforward to extend Umzi to support
//! other HTAP systems with arbitrary number of zones. To this end, one needs
//! to structure Umzi with multiple run lists, each of which corresponds to
//! one zone of data."* This exercises a three-zone configuration with two
//! evolve boundaries.

use std::sync::Arc;

use umzi::prelude::*;
use umzi_core::{EvolveNotice, ReconcileStrategy, ZoneConfig};

fn three_zone_config() -> UmziConfig {
    let mut c = UmziConfig::two_zone("three");
    c.zones = vec![
        ZoneConfig {
            zone: ZoneId(0),
            min_level: 0,
            max_level: 2,
        },
        ZoneConfig {
            zone: ZoneId(1),
            min_level: 3,
            max_level: 5,
        },
        ZoneConfig {
            zone: ZoneId(2),
            min_level: 6,
            max_level: 8,
        },
    ];
    c
}

fn entry(idx: &UmziIndex, zone: u8, k: i64, ts: u64) -> IndexEntry {
    IndexEntry::new(
        idx.layout(),
        &[Datum::Int64(k % 5)],
        &[Datum::Int64(k)],
        ts,
        Rid::new(ZoneId(zone), ts, 0),
        &[],
    )
    .unwrap()
}

fn visible_keys(idx: &UmziIndex) -> usize {
    (0..5)
        .map(|d| {
            idx.range_scan(
                &umzi_core::RangeQuery {
                    equality: vec![Datum::Int64(d)],
                    lower: SortBound::Unbounded,
                    upper: SortBound::Unbounded,
                    query_ts: u64::MAX,
                },
                ReconcileStrategy::PriorityQueue,
            )
            .unwrap()
            .len()
        })
        .sum()
}

#[test]
fn three_zones_evolve_twice() {
    let storage = Arc::new(TieredStorage::in_memory());
    let def = Arc::new(
        IndexDef::builder("t")
            .equality("d", ColumnType::Int64)
            .sort("k", ColumnType::Int64)
            .build()
            .unwrap(),
    );
    let idx = UmziIndex::create(Arc::clone(&storage), def, three_zone_config()).unwrap();

    // Zone 0 receives four builds of 25 keys each.
    for b in 1..=4u64 {
        let entries: Vec<IndexEntry> = (0..25)
            .map(|i| entry(&idx, 0, (b as i64 - 1) * 25 + i, b * 100 + i as u64))
            .collect();
        idx.build_groomed_run(entries, b, b).unwrap();
    }
    assert_eq!(visible_keys(&idx), 100);

    // Evolve zone 0 → zone 1 (covering blocks 1–2).
    let pg: Vec<IndexEntry> = (0..50)
        .map(|i| entry(&idx, 1, i, (1 + (i as u64 / 25)) * 100 + (i as u64 % 25)))
        .collect();
    idx.evolve_between(
        0,
        EvolveNotice {
            psn: 1,
            groomed_lo: 1,
            groomed_hi: 2,
            entries: pg,
        },
    )
    .unwrap();
    assert_eq!(idx.zones()[1].list.len(), 1);
    assert_eq!(idx.zones()[0].list.len(), 2, "blocks 1-2 GC'd from zone 0");
    assert_eq!(visible_keys(&idx), 100, "unified view across three zones");

    // Evolve zone 1 → zone 2 for the same range.
    let z2: Vec<IndexEntry> = (0..50)
        .map(|i| entry(&idx, 2, i, (1 + (i as u64 / 25)) * 100 + (i as u64 % 25)))
        .collect();
    idx.evolve_between(
        1,
        EvolveNotice {
            psn: 2,
            groomed_lo: 1,
            groomed_hi: 2,
            entries: z2,
        },
    )
    .unwrap();
    assert_eq!(idx.zones()[2].list.len(), 1);
    assert_eq!(idx.zones()[1].list.len(), 0, "zone 1 drained");
    assert_eq!(visible_keys(&idx), 100);

    // Watermarks are independent per boundary.
    assert_eq!(idx.covered_groomed_hi(0), Some(2));
    assert_eq!(idx.covered_groomed_hi(1), Some(2));

    // Recovery restores all three zones.
    drop(idx);
    storage.simulate_crash();
    let def = Arc::new(
        IndexDef::builder("t")
            .equality("d", ColumnType::Int64)
            .sort("k", ColumnType::Int64)
            .build()
            .unwrap(),
    );
    let idx = UmziIndex::recover(storage, def, three_zone_config()).unwrap();
    assert_eq!(visible_keys(&idx), 100);
    assert_eq!(idx.zones()[2].list.len(), 1);
}

#[test]
fn merges_stay_within_zone_boundaries() {
    let storage = Arc::new(TieredStorage::in_memory());
    let def = Arc::new(
        IndexDef::builder("t")
            .equality("d", ColumnType::Int64)
            .sort("k", ColumnType::Int64)
            .build()
            .unwrap(),
    );
    let mut config = three_zone_config();
    config.merge = MergePolicy { k: 2, t: 2 };
    let idx = UmziIndex::create(storage, def, config).unwrap();

    for b in 1..=16u64 {
        let entries: Vec<IndexEntry> = (0..10)
            .map(|i| entry(&idx, 0, i, b * 100 + i as u64))
            .collect();
        idx.build_groomed_run(entries, b, b).unwrap();
    }
    idx.drain_merges().unwrap();
    // Everything must still be in zone 0 (levels ≤ 2): merges never cross
    // the zone-2→3 boundary, even at the zone's top level.
    for run in idx.zones()[0].list.snapshot() {
        assert!(
            run.level() <= 2,
            "run escaped its zone: level {}",
            run.level()
        );
    }
    assert_eq!(idx.zones()[1].list.len(), 0);
    assert_eq!(idx.zones()[2].list.len(), 0);
}
