//! Property: for ANY seeded fault plan — transient noise on every op class,
//! bit flips, a torn write, a crash point — driving the engine until storage
//! dies and then recovering must either produce a consistent snapshot or a
//! clean typed error. Never a panic, never a hang.
//!
//! Two recovery attempts are exercised per case:
//! 1. with the faults **still armed** (storage still flaky while the new
//!    process comes up) — any outcome is fine as long as it's `Ok` or a
//!    typed `Err`;
//! 2. after revive + disarm (storage healed) — this one must succeed, and
//!    full scans over the recovered index must resolve every record.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use umzi::prelude::*;
use umzi_run::{IndexEntry, KeyLayout, Rid, RunBuilder, RunParams, RunSearcher, ZoneId};
use umzi_storage::{
    Durability, FaultEvent, FaultInjectingStore, FaultPlan, InMemoryObjectStore, ObjectStore,
    PrefetchConfig, RetryConfig, SharedStorage, TieredStorage as Tiered,
};

const DEVICES: i64 = 3;

fn row(device: i64, msg: i64, payload: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device),
        Datum::Int64(msg),
        Datum::Int64(0),
        Datum::Int64(payload),
    ]
}

/// Harsher than the torture harness: reads fault too, and bit flips are on.
fn plan_for(seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_C3C3_3C3C);
    let mut plan = FaultPlan::transient_only(seed, rng.random_range(0..80) as f64 / 1000.0);
    plan.bit_flip_prob = rng.random_range(0..20) as f64 / 1000.0;
    if rng.random_bool(0.6) {
        plan = plan.with_event(FaultEvent::TornWriteAt {
            nth: rng.random_range(2..30),
        });
    }
    if rng.random_bool(0.8) {
        plan = plan.with_event(FaultEvent::CrashAt {
            nth: rng.random_range(40..400),
        });
    }
    plan
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        n_shards: 1,
        maintenance: None,
        ..EngineConfig::default()
    }
}

fn recover(storage: &Arc<TieredStorage>) -> umzi_wildfire::Result<Arc<WildfireEngine>> {
    WildfireEngine::recover(Arc::clone(storage), Arc::new(iot_table()), engine_config())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_fault_plan_recovers_or_errors_cleanly(seed in any::<u64>()) {
        let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryObjectStore::new());
        let faulty = Arc::new(FaultInjectingStore::new(Arc::clone(&inner), plan_for(seed)));
        faulty.set_armed(false);
        let tc = umzi_storage::TieredConfig {
            retry: RetryConfig {
                max_retries: 2,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
            ..Default::default()
        };
        let storage = Arc::new(Tiered::new(
            SharedStorage::new(
                Arc::clone(&faulty) as Arc<dyn ObjectStore>,
                umzi_storage::LatencyModel::off(),
            ),
            tc,
        ));
        let engine = WildfireEngine::create(
            Arc::clone(&storage),
            Arc::new(iot_table()),
            engine_config(),
        )
        .unwrap();
        faulty.set_armed(true);

        // Drive ingest + the whole maintenance pipeline until something
        // breaks (or the budget runs out). Errors are expected; panics are
        // the bug being hunted.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut msg = 0i64;
        'drive: for _ in 0..25 {
            for _ in 0..8 {
                let d = rng.random_range(0..DEVICES);
                if engine.upsert(row(d, msg, msg)).is_err() {
                    break 'drive;
                }
                msg += 1;
            }
            let shard = &engine.shards()[0];
            let broke = engine.groom_all().is_err()
                || match rng.random_range(0..4) {
                    0 => engine.post_groom_all().is_err(),
                    1 => engine.evolve_all().is_err(),
                    2 => shard.index().drain_merges().is_err(),
                    _ => shard.index().collect_garbage().is_err(),
                };
            if broke {
                break 'drive;
            }
        }
        drop(engine);

        // Attempt 1: recovery races the still-flaky storage. Ok or typed
        // Err are both acceptable — the property is "no panic".
        storage.simulate_crash();
        let first = recover(&storage);
        prop_assert!(
            first.is_ok() || !format!("{}", first.as_ref().unwrap_err()).is_empty(),
            "seed {seed}: recovery error must render cleanly"
        );
        drop(first);

        // Attempt 2: the storage heals; recovery must now succeed and the
        // index must be fully scannable (every RID resolves).
        faulty.revive();
        faulty.set_armed(false);
        storage.simulate_crash();
        let engine = recover(&storage).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: recovery on healed storage failed: {e}\n  {}",
                faulty.stats().summary()
            )
        });
        for d in 0..DEVICES {
            let recs = engine.scan_records(
                vec![Datum::Int64(d)],
                SortBound::Unbounded,
                SortBound::Unbounded,
                Freshness::Latest,
            );
            prop_assert!(
                recs.is_ok(),
                "seed {seed}: post-heal scan failed: {:?}\n  {}",
                recs.err(),
                faulty.stats().summary()
            );
        }
        // And the write path still works.
        engine.upsert(row(0, i64::MAX, 1)).unwrap();
        engine.quiesce().unwrap();
    }

    /// Transient faults racing the pipelined prefetcher surface as retries
    /// (or a silent fallback to the synchronous path) — never as iterator
    /// errors, and never as divergent scan results.
    #[test]
    fn prefetch_under_transient_faults_retries_not_errors(
        seed in any::<u64>(),
        depth in 1usize..=6,
    ) {
        let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryObjectStore::new());
        let mut rng = StdRng::seed_from_u64(seed);
        // Up to 20% per-op fault rate; with 8 retries a single op fails for
        // good with probability ≤ 0.2^9 ≈ 5e-7, so the scan cannot flake.
        let prob = rng.random_range(0..=200) as f64 / 1000.0;
        let faulty = Arc::new(FaultInjectingStore::new(
            Arc::clone(&inner),
            FaultPlan::transient_only(seed, prob),
        ));
        faulty.set_armed(false);
        let storage = Arc::new(Tiered::new(
            SharedStorage::new(
                Arc::clone(&faulty) as Arc<dyn ObjectStore>,
                umzi_storage::LatencyModel::off(),
            ),
            umzi_storage::TieredConfig {
                // Small chunks: the scanned range spans many blocks, so the
                // readahead batches do real work under fire.
                chunk_size: 256,
                retry: RetryConfig {
                    max_retries: 8,
                    base_backoff: Duration::ZERO,
                    max_backoff: Duration::ZERO,
                },
                ..Default::default()
            },
        ));
        storage.set_prefetch_config(PrefetchConfig {
            depth,
            ..PrefetchConfig::default()
        });

        // Build a multi-block run while the storage is healthy.
        let def = umzi_encoding::IndexDef::builder("pf")
            .equality("d", umzi_encoding::ColumnType::Int64)
            .sort("m", umzi_encoding::ColumnType::Int64)
            .build()
            .unwrap();
        let l = KeyLayout::new(Arc::new(def));
        let mut entries: Vec<IndexEntry> = (0..300i64)
            .map(|i| {
                IndexEntry::new(
                    &l,
                    &[Datum::Int64(i % 3)],
                    &[Datum::Int64(i)],
                    1 + (i as u64 % 20),
                    Rid::new(ZoneId::GROOMED, i as u64, 0),
                    &[],
                )
                .unwrap()
            })
            .collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut b = RunBuilder::new(
            l.clone(),
            RunParams {
                run_id: 1,
                zone: ZoneId::GROOMED,
                level: 0,
                groomed_lo: 0,
                groomed_hi: 0,
                psn: 0,
                offset_bits: 0,
                ancestors: vec![],
            },
            storage.chunk_size(),
        );
        for e in &entries {
            b.push(e).unwrap();
        }
        let run = b
            .finish(&storage, "runs/pf", Durability::Persisted, true)
            .unwrap();

        let (lower, upper) = l
            .query_range(
                &[Datum::Int64(1)],
                &SortBound::Unbounded,
                &SortBound::Unbounded,
            )
            .unwrap();
        let cold_scan = || -> umzi_run::Result<Vec<(Vec<u8>, u64)>> {
            storage.purge_object(run.handle())?;
            storage.decoded_cache().clear();
            RunSearcher::new(&run)
                .scan(&lower, upper.as_deref(), None, u64::MAX)?
                .map(|r| r.map(|h| (h.key.to_vec(), h.begin_ts)))
                .collect()
        };
        let healthy = cold_scan().unwrap();
        prop_assert!(!healthy.is_empty());

        // Same cold scan with the faults armed: every read — including the
        // batched prefetches — may fail transiently, yet the iterator must
        // deliver the identical result.
        faulty.set_armed(true);
        let under_fault = cold_scan();
        prop_assert!(
            under_fault.is_ok(),
            "seed {seed} depth {depth}: cold scan under transient faults errored: {:?}\n  {}",
            under_fault.err(),
            faulty.stats().summary()
        );
        prop_assert_eq!(under_fault.unwrap(), healthy);
        if faulty.stats().total_injected() > 0 {
            prop_assert!(
                storage.stats().retries > 0,
                "seed {seed} depth {depth}: faults were injected but no retry was recorded\n  {}",
                faulty.stats().summary()
            );
        }
    }
}
