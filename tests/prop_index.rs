//! Property-based whole-index tests: arbitrary interleavings of builds,
//! merges and evolves must preserve the multi-version query semantics
//! against a BTreeMap oracle.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use umzi::prelude::*;
use umzi_core::{EvolveNotice, ReconcileStrategy};

#[derive(Debug, Clone)]
enum Op {
    /// Groom a batch of (device, msg) upserts.
    Build(Vec<(i64, i64)>),
    /// Merge whatever the policy allows.
    Merge,
    /// Post-groom + evolve everything groomed so far.
    Evolve,
    /// GC the graveyard.
    Collect,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let build = proptest::collection::vec((0i64..4, 0i64..12), 1..20).prop_map(Op::Build);
    let op = prop_oneof![
        4 => build,
        2 => Just(Op::Merge),
        1 => Just(Op::Evolve),
        1 => Just(Op::Collect),
    ];
    proptest::collection::vec(op, 1..24)
}

fn entry(idx: &UmziIndex, zone: ZoneId, d: i64, m: i64, ts: u64) -> IndexEntry {
    IndexEntry::new(
        idx.layout(),
        &[Datum::Int64(d)],
        &[Datum::Int64(m)],
        ts,
        Rid::new(zone, ts, 0),
        &[],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn index_matches_oracle_under_arbitrary_maintenance(ops in arb_ops()) {
        let storage = Arc::new(TieredStorage::in_memory());
        let def = Arc::new(
            IndexDef::builder("p")
                .equality("d", ColumnType::Int64)
                .sort("m", ColumnType::Int64)
                .build()
                .unwrap(),
        );
        let mut config = UmziConfig::two_zone("prop");
        config.merge = MergePolicy { k: 2, t: 2 };
        let idx = UmziIndex::create(storage, def, config).unwrap();

        // Oracle: (d, m) → versions (ts, still-counted).
        let mut oracle: BTreeMap<(i64, i64), Vec<u64>> = BTreeMap::new();
        // All versions ever created, for rebuilding evolve entries.
        let mut history: Vec<(i64, i64, u64)> = Vec::new();
        let mut block = 0u64;
        let mut ts = 0u64;
        let mut evolved_hi = 0u64;

        for op in &ops {
            match op {
                Op::Build(batch) => {
                    block += 1;
                    let mut entries = Vec::new();
                    for &(d, m) in batch {
                        ts += 1;
                        entries.push(entry(&idx, ZoneId::GROOMED, d, m, ts));
                        oracle.entry((d, m)).or_default().push(ts);
                        history.push((d, m, ts));
                    }
                    idx.build_groomed_run(entries, block, block).unwrap();
                }
                Op::Merge => {
                    idx.drain_merges().unwrap();
                }
                Op::Evolve => {
                    if block > evolved_hi {
                        let psn = idx.indexed_psn() + 1;
                        // A post-groom over ALL groomed-so-far versions
                        // (covering blocks evolved_hi+1..=block).
                        let entries: Vec<IndexEntry> = history
                            .iter()
                            .map(|&(d, m, t)| entry(&idx, ZoneId::POST_GROOMED, d, m, t))
                            .collect();
                        idx.evolve(EvolveNotice {
                            psn,
                            groomed_lo: evolved_hi + 1,
                            groomed_hi: block,
                            entries,
                        })
                        .unwrap();
                        evolved_hi = block;
                    }
                }
                Op::Collect => {
                    idx.collect_garbage().unwrap();
                }
            }

            // Invariant: point lookups agree with the oracle at the latest
            // snapshot and at one historical snapshot.
            for &(d, m) in &[(0i64, 0i64), (1, 3), (3, 11)] {
                let expect = oracle.get(&(d, m)).and_then(|v| v.iter().max()).copied();
                let got = idx
                    .point_lookup(&[Datum::Int64(d)], &[Datum::Int64(m)], u64::MAX)
                    .unwrap()
                    .map(|o| o.begin_ts);
                prop_assert_eq!(got, expect, "latest lookup ({}, {})", d, m);

                if ts > 2 {
                    let snap = ts / 2;
                    let expect_old = oracle
                        .get(&(d, m))
                        .map(|v| v.iter().copied().filter(|&t| t <= snap).max())
                        .unwrap_or(None);
                    let got_old = idx
                        .point_lookup(&[Datum::Int64(d)], &[Datum::Int64(m)], snap)
                        .unwrap()
                        .map(|o| o.begin_ts);
                    prop_assert_eq!(got_old, expect_old, "snapshot lookup ({}, {})@{}", d, m, snap);
                }
            }
        }

        // Final exhaustive check: every key, both strategies, full scan.
        for d in 0..4i64 {
            let expect: Vec<(i64, u64)> = (0..12i64)
                .filter_map(|m| {
                    oracle.get(&(d, m)).and_then(|v| v.iter().max()).map(|&t| (m, t))
                })
                .collect();
            for strategy in [ReconcileStrategy::Set, ReconcileStrategy::PriorityQueue] {
                let got: Vec<(i64, u64)> = idx
                    .range_scan(
                        &umzi_core::RangeQuery {
                            equality: vec![Datum::Int64(d)],
                            lower: SortBound::Unbounded,
                            upper: SortBound::Unbounded,
                            query_ts: u64::MAX,
                        },
                        strategy,
                    )
                    .unwrap()
                    .iter()
                    .map(|o| {
                        let cols = o.key_columns(idx.layout()).unwrap();
                        (cols[1].as_i64().unwrap(), o.begin_ts)
                    })
                    .collect();
                prop_assert_eq!(&got, &expect, "device {} via {:?}", d, strategy);
            }
        }
    }

    #[test]
    fn recovery_is_faithful_after_arbitrary_maintenance(ops in arb_ops()) {
        let storage = Arc::new(TieredStorage::in_memory());
        let def = Arc::new(
            IndexDef::builder("p")
                .equality("d", ColumnType::Int64)
                .sort("m", ColumnType::Int64)
                .build()
                .unwrap(),
        );
        let mut config = UmziConfig::two_zone("prop-rec");
        config.merge = MergePolicy { k: 2, t: 2 };
        let idx = UmziIndex::create(Arc::clone(&storage), Arc::clone(&def), config.clone()).unwrap();

        let mut oracle: BTreeMap<(i64, i64), Vec<u64>> = BTreeMap::new();
        let mut history: Vec<(i64, i64, u64)> = Vec::new();
        let mut block = 0u64;
        let mut ts = 0u64;
        let mut evolved_hi = 0u64;
        for op in &ops {
            match op {
                Op::Build(batch) => {
                    block += 1;
                    let mut entries = Vec::new();
                    for &(d, m) in batch {
                        ts += 1;
                        entries.push(entry(&idx, ZoneId::GROOMED, d, m, ts));
                        oracle.entry((d, m)).or_default().push(ts);
                        history.push((d, m, ts));
                    }
                    idx.build_groomed_run(entries, block, block).unwrap();
                }
                Op::Merge => { idx.drain_merges().unwrap(); }
                Op::Evolve => {
                    if block > evolved_hi {
                        let psn = idx.indexed_psn() + 1;
                        let entries: Vec<IndexEntry> = history
                            .iter()
                            .map(|&(d, m, t)| entry(&idx, ZoneId::POST_GROOMED, d, m, t))
                            .collect();
                        idx.evolve(EvolveNotice { psn, groomed_lo: evolved_hi + 1, groomed_hi: block, entries }).unwrap();
                        evolved_hi = block;
                    }
                }
                Op::Collect => { idx.collect_garbage().unwrap(); }
            }
        }
        drop(idx);

        // Crash at an arbitrary point in the maintenance schedule.
        storage.simulate_crash();
        let idx = UmziIndex::recover(storage, def, config).unwrap();
        for ((d, m), versions) in &oracle {
            let expect = versions.iter().max().copied();
            let got = idx
                .point_lookup(&[Datum::Int64(*d)], &[Datum::Int64(*m)], u64::MAX)
                .unwrap()
                .map(|o| o.begin_ts);
            prop_assert_eq!(got, expect, "({}, {}) after recovery", d, m);
        }
    }
}
