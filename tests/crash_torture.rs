//! Crash-recovery torture harness.
//!
//! Each seed derives a reproducible [`FaultPlan`] — transient IO error
//! probabilities, an optional torn write, and a crash point — and runs an
//! ingest → groom → post-groom → evolve → merge → GC workload against a
//! [`FaultInjectingStore`] until the store "dies". The harness then revives
//! the backing objects (the process restarted; whatever reached shared
//! storage survived), recovers the engine, and asserts:
//!
//! - every **acked** row (covered by a groom that returned `Ok`) is visible
//!   with its exact payload;
//! - full scans resolve every record (no dangling RIDs);
//! - recovery is idempotent (a second crash+recover sees the same data);
//! - torn/partial run objects were cleaned out of shared storage.
//!
//! Seed count defaults to 32 and is overridable via `UMZI_TORTURE_SEEDS`.
//! Per-seed fault/retry counters go to the test log (visible with
//! `--nocapture`), so a failing seed's schedule is diagnosable offline.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use umzi::prelude::*;
use umzi_core::ReconcileStrategy;
use umzi_storage::{
    FaultEvent, FaultInjectingStore, FaultPlan, FaultStats, InMemoryObjectStore, LatencyModel,
    ObjectStore, RetryConfig, SharedStorage, TieredConfig,
};

const DEVICES: i64 = 4;

fn seed_count() -> u64 {
    std::env::var("UMZI_TORTURE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

fn row(device: i64, msg: i64, payload: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device),
        Datum::Int64(msg),
        Datum::Int64(0),
        Datum::Int64(payload),
    ]
}

/// Derive this seed's fault plan: mild transient noise on every IO class,
/// sometimes a torn write, and a crash point somewhere in the workload.
fn plan_for(seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
    let mut plan = FaultPlan::transient_only(seed, rng.random_range(0..50) as f64 / 1000.0);
    if rng.random_bool(0.5) {
        plan = plan.with_event(FaultEvent::TornWriteAt {
            nth: rng.random_range(3..40),
        });
    }
    plan.with_event(FaultEvent::CrashAt {
        nth: rng.random_range(60..600),
    })
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        n_shards: 1,
        maintenance: None, // the harness drives the pipeline deterministically
        ..EngineConfig::default()
    }
}

fn storage_over(faulty: &Arc<FaultInjectingStore>) -> Arc<TieredStorage> {
    // Fast retry exhaustion: the point is the counter arithmetic and the
    // typed errors, not wall-clock backoff.
    let tc = TieredConfig {
        retry: RetryConfig {
            max_retries: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        ..Default::default()
    };
    Arc::new(TieredStorage::new(
        SharedStorage::new(
            Arc::clone(faulty) as Arc<dyn ObjectStore>,
            LatencyModel::off(),
        ),
        tc,
    ))
}

/// Everything the workload learned before the crash: rows acked durable by a
/// successful groom, keyed `(device, msg) → payload`.
struct WorkloadOutcome {
    acked: BTreeMap<(i64, i64), i64>,
    stats: FaultStats,
}

/// Run the ingest/maintenance workload until the store dies (or the round
/// budget runs out, for plans whose crash point is never reached).
fn run_workload(
    engine: &WildfireEngine,
    faulty: &FaultInjectingStore,
    seed: u64,
) -> WorkloadOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut acked = BTreeMap::new();
    let mut pending: Vec<(i64, i64, i64)> = Vec::new();
    let mut msg = 0i64;

    'rounds: for _round in 0..40 {
        // A batch of unique-key upserts (in-memory; survives only if a
        // later groom commits it).
        for _ in 0..rng.random_range(4..16) {
            let device = rng.random_range(0..DEVICES as u64) as i64;
            let payload = msg * 7 + device;
            if engine.upsert(row(device, msg, payload)).is_err() {
                break 'rounds;
            }
            pending.push((device, msg, payload));
            msg += 1;
        }

        // Groom: on Ok, the batch is durable (run + manifest committed) —
        // ack it. On Err, nothing of the batch may be assumed durable.
        match engine.groom_all() {
            Ok(_) => {
                for (d, m, p) in pending.drain(..) {
                    acked.insert((d, m), p);
                }
            }
            Err(_) => break 'rounds,
        }

        // Occasional deeper maintenance; any failure ends the run (the
        // store is dying or dead — recovery takes over from here).
        let shard = &engine.shards()[0];
        let step: u32 = rng.random_range(0..4) as u32;
        let result = match step {
            0 => engine.post_groom_all().map(|_| ()),
            1 => engine.evolve_all().map(|_| ()),
            2 => shard.index().drain_merges().map(|_| ()).map_err(Into::into),
            _ => shard
                .index()
                .collect_garbage()
                .map(|_| ())
                .map_err(Into::into),
        };
        if result.is_err() {
            break 'rounds;
        }
    }

    WorkloadOutcome {
        acked,
        stats: faulty.stats(),
    }
}

/// Post-recovery invariants for one seed.
fn assert_recovered(engine: &WildfireEngine, outcome: &WorkloadOutcome, seed: u64, pass: &str) {
    // Every acked row is visible with its exact payload.
    for (&(device, m), &payload) in &outcome.acked {
        let got = engine
            .get(
                &[Datum::Int64(device)],
                &[Datum::Int64(m)],
                Freshness::Latest,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "seed {seed} {pass}: get({device},{m}) failed: {e}\n  {}",
                    outcome.stats.summary()
                )
            });
        let got = got.unwrap_or_else(|| {
            panic!(
                "seed {seed} {pass}: acked row ({device},{m}) lost after recovery\n  {}",
                outcome.stats.summary()
            )
        });
        assert_eq!(
            got.row[3],
            Datum::Int64(payload),
            "seed {seed} {pass}: acked row ({device},{m}) has wrong payload"
        );
    }

    // Full scans resolve every record: no dangling RIDs anywhere in the
    // recovered index, and no duplicate logical keys.
    let mut seen = 0usize;
    for device in 0..DEVICES {
        let recs = engine
            .scan_records(
                vec![Datum::Int64(device)],
                SortBound::Unbounded,
                SortBound::Unbounded,
                Freshness::Latest,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "seed {seed} {pass}: scan(device {device}) failed: {e}\n  {}",
                    outcome.stats.summary()
                )
            });
        let mut msgs: Vec<i64> = recs
            .iter()
            .map(|r| match r.row[1] {
                Datum::Int64(m) => m,
                ref other => panic!("seed {seed} {pass}: bad msg datum {other:?}"),
            })
            .collect();
        seen += msgs.len();
        msgs.sort_unstable();
        msgs.dedup();
        assert_eq!(
            msgs.len(),
            recs.len(),
            "seed {seed} {pass}: duplicate keys on device {device}"
        );
    }
    assert!(
        seen >= outcome.acked.len(),
        "seed {seed} {pass}: {seen} visible < {} acked",
        outcome.acked.len()
    );

    // Torn-object cleanup: every surviving run object opens cleanly (the
    // recovered index already proved the ones it kept; a leftover torn run
    // would have failed recovery or the scans above).
    let runs = engine
        .storage()
        .shared()
        .list("iot/s0/index/runs/")
        .unwrap();
    for name in &runs {
        let len = engine.storage().shared().len(name).unwrap();
        assert!(len > 0, "seed {seed} {pass}: zero-length run object {name}");
    }
}

#[test]
fn torture_many_seeds() {
    let seeds = seed_count();
    for seed in 0..seeds {
        let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryObjectStore::new());
        let faulty = Arc::new(FaultInjectingStore::new(Arc::clone(&inner), plan_for(seed)));
        // Healthy while the engine bootstraps; the plan's ordinals keep
        // counting, so the crash point still lands inside the workload.
        faulty.set_armed(false);
        let storage = storage_over(&faulty);
        let engine =
            WildfireEngine::create(Arc::clone(&storage), Arc::new(iot_table()), engine_config())
                .unwrap_or_else(|e| panic!("seed {seed}: create on healthy store failed: {e}"));
        faulty.set_armed(true);

        let outcome = run_workload(&engine, &faulty, seed);
        drop(engine);
        println!(
            "seed {seed}: acked={} {}  storage: retries={} exhausted={}",
            outcome.acked.len(),
            outcome.stats.summary(),
            storage.stats().retries,
            storage.stats().retries_exhausted,
        );

        // The process restarted: the poison clears, faults stop, and the
        // local tiers are gone. Shared storage keeps whatever survived.
        faulty.revive();
        faulty.set_armed(false);
        storage.simulate_crash();
        let engine =
            WildfireEngine::recover(Arc::clone(&storage), Arc::new(iot_table()), engine_config())
                .unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}: recover failed: {e}\n  {}",
                        outcome.stats.summary()
                    )
                });
        assert_recovered(&engine, &outcome, seed, "first recovery");

        // Crash again immediately: recovery must be idempotent.
        drop(engine);
        storage.simulate_crash();
        let engine =
            WildfireEngine::recover(Arc::clone(&storage), Arc::new(iot_table()), engine_config())
                .unwrap_or_else(|e| panic!("seed {seed}: second recover failed: {e}"));
        assert_recovered(&engine, &outcome, seed, "second recovery");

        // And the pipeline still works going forward.
        engine.upsert(row(0, i64::MAX - seed as i64, 42)).unwrap();
        engine.quiesce().unwrap_or_else(|e| {
            panic!("seed {seed}: post-recovery quiesce failed: {e}");
        });
    }
}

/// Transient-fault smoke test: under retryable noise (no crash point, no
/// tears), the retry loop must absorb every transient error — work
/// completes, `retries > 0`, and nothing exhausts its budget.
#[test]
fn transient_noise_is_absorbed_by_retries() {
    let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryObjectStore::new());
    // 20% transient failures on every op class; generous retry budget.
    let faulty = Arc::new(FaultInjectingStore::new(
        Arc::clone(&inner),
        FaultPlan::transient_only(7, 0.2),
    ));
    let tc = TieredConfig {
        retry: RetryConfig {
            max_retries: 24, // (1 - 0.2^25) ≈ certainty per op
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        ..Default::default()
    };
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::new(
            Arc::clone(&faulty) as Arc<dyn ObjectStore>,
            LatencyModel::off(),
        ),
        tc,
    ));
    let engine =
        WildfireEngine::create(Arc::clone(&storage), Arc::new(iot_table()), engine_config())
            .unwrap();

    for m in 0..200 {
        engine.upsert(row(m % DEVICES, m, m * 3)).unwrap();
        if m % 25 == 24 {
            engine.groom_all().unwrap();
        }
    }
    engine.quiesce().unwrap();

    let st = storage.stats();
    println!(
        "transient smoke: {}  retries={} exhausted={}",
        faulty.stats().summary(),
        st.retries,
        st.retries_exhausted
    );
    assert!(
        faulty.stats().total_injected() > 0,
        "noise must actually fire: {}",
        faulty.stats().summary()
    );
    assert!(st.retries > 0, "transient errors must be retried");
    assert_eq!(st.retries_exhausted, 0, "no op may exhaust its budget");

    // All 200 rows present and correct.
    let mut total = 0;
    for d in 0..DEVICES {
        total += engine
            .scan_index(
                vec![Datum::Int64(d)],
                SortBound::Unbounded,
                SortBound::Unbounded,
                Freshness::Latest,
                ReconcileStrategy::PriorityQueue,
            )
            .unwrap()
            .len();
    }
    assert_eq!(total, 200);
}
