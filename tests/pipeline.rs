//! End-to-end pipeline consistency: the engine's indexed view must agree
//! with a naive model database under interleaved upserts, grooms,
//! post-grooms, evolves and merges — including historical snapshots.

use std::collections::BTreeMap;
use std::sync::Arc;

use umzi::prelude::*;
use umzi_core::ReconcileStrategy;

fn row(device: i64, msg: i64, payload: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device),
        Datum::Int64(msg),
        Datum::Int64(device % 3),
        Datum::Int64(payload),
    ]
}

/// Model: (device, msg) → list of (begin_ts, payload) versions.
type Model = BTreeMap<(i64, i64), Vec<(u64, i64)>>;

fn model_get(model: &Model, device: i64, msg: i64, ts: u64) -> Option<i64> {
    model
        .get(&(device, msg))?
        .iter()
        .filter(|(b, _)| *b <= ts)
        .max_by_key(|(b, _)| *b)
        .map(|(_, p)| *p)
}

#[test]
fn engine_matches_model_through_full_lifecycle() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(
        storage,
        Arc::new(iot_table()),
        EngineConfig {
            maintenance: None,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let shard = &engine.shards()[0];

    let mut model: Model = BTreeMap::new();
    let mut snapshots: Vec<u64> = Vec::new();
    let mut x = 0xDEADBEEFu64;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    };

    // 30 groom cycles with updates; post-groom every 7 cycles; merges as
    // the policy dictates.
    for cycle in 0..30u64 {
        let mut batch = Vec::new();
        for _ in 0..40 {
            let device = (next() % 8) as i64;
            let msg = (next() % 25) as i64;
            let payload = (next() % 100_000) as i64;
            batch.push((device, msg, payload));
        }
        // Commit in order; model applies the same last-writer-wins order.
        for &(d, m, p) in &batch {
            engine.upsert(row(d, m, p)).unwrap();
        }
        let report = shard.groom().unwrap().expect("non-empty groom");
        // Reconstruct beginTS assignment: commit order within the cycle.
        for (i, &(d, m, p)) in batch.iter().enumerate() {
            let ts = umzi::wildfire::compose_begin_ts(report.block_id, i as u64);
            model.entry((d, m)).or_default().push((ts, p));
        }
        snapshots.push(engine.read_ts());

        if cycle % 7 == 6 {
            shard.post_groom().unwrap();
            shard.apply_pending_evolves().unwrap();
        }
        shard.index().drain_merges().unwrap();
        shard.index().collect_garbage().unwrap();
    }

    // Check every (device, msg) at several snapshots, including historic.
    for &ts in snapshots.iter().step_by(5).chain([engine.read_ts()].iter()) {
        for device in 0..8i64 {
            for msg in 0..25i64 {
                let expect = model_get(&model, device, msg, ts);
                let got = engine
                    .get(
                        &[Datum::Int64(device)],
                        &[Datum::Int64(msg)],
                        Freshness::Snapshot(ts),
                    )
                    .unwrap()
                    .map(|v| v.row[3].as_i64().unwrap());
                assert_eq!(got, expect, "device={device} msg={msg} ts={ts}");
            }
        }
    }

    // Range scans agree with the model too.
    let ts = engine.read_ts();
    for device in 0..8i64 {
        let scanned: Vec<(i64, i64)> = engine
            .scan_index(
                vec![Datum::Int64(device)],
                SortBound::Included(vec![Datum::Int64(5)]),
                SortBound::Included(vec![Datum::Int64(19)]),
                Freshness::Snapshot(ts),
                ReconcileStrategy::PriorityQueue,
            )
            .unwrap()
            .iter()
            .map(|o| {
                let cols = o.key_columns(shard.index().layout()).unwrap();
                (cols[0].as_i64().unwrap(), cols[1].as_i64().unwrap())
            })
            .collect();
        let expected: Vec<(i64, i64)> = (5..=19)
            .filter(|&m| model_get(&model, device, m, ts).is_some())
            .map(|m| (device, m))
            .collect();
        assert_eq!(scanned, expected, "scan device={device}");
    }
}

#[test]
fn set_and_pq_reconciliation_agree_end_to_end() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(
        storage,
        Arc::new(iot_table()),
        EngineConfig {
            maintenance: None,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    for c in 0..10i64 {
        for d in 0..6i64 {
            for m in 0..10i64 {
                engine.upsert(row(d, m * c % 17, d * 100 + m + c)).unwrap();
            }
        }
        engine.groom_all().unwrap();
        if c == 5 {
            engine.post_groom_all().unwrap();
            engine.evolve_all().unwrap();
        }
    }
    let ts = engine.read_ts();
    for d in 0..6i64 {
        let mut a = engine
            .scan_index(
                vec![Datum::Int64(d)],
                SortBound::Unbounded,
                SortBound::Unbounded,
                Freshness::Snapshot(ts),
                ReconcileStrategy::Set,
            )
            .unwrap();
        let mut b = engine
            .scan_index(
                vec![Datum::Int64(d)],
                SortBound::Unbounded,
                SortBound::Unbounded,
                Freshness::Snapshot(ts),
                ReconcileStrategy::PriorityQueue,
            )
            .unwrap();
        a.sort_by(|x, y| x.key.cmp(&y.key));
        b.sort_by(|x, y| x.key.cmp(&y.key));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.begin_ts, y.begin_ts);
        }
    }
}

#[test]
fn index_only_plans_avoid_record_fetches() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(
        storage,
        Arc::new(iot_table()),
        EngineConfig {
            maintenance: None,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    for m in 0..100 {
        engine.upsert(row(1, m, m * 2)).unwrap();
    }
    engine.quiesce().unwrap();

    // The included payload column answers the query from the index alone.
    let out = engine
        .scan_index(
            vec![Datum::Int64(1)],
            SortBound::Included(vec![Datum::Int64(10)]),
            SortBound::Included(vec![Datum::Int64(13)]),
            Freshness::Latest,
            ReconcileStrategy::PriorityQueue,
        )
        .unwrap();
    let payloads: Vec<i64> = out
        .iter()
        .map(|o| {
            o.included(engine.shards()[0].index().def()).unwrap()[0]
                .as_i64()
                .unwrap()
        })
        .collect();
    assert_eq!(payloads, vec![20, 22, 24, 26]);
}
