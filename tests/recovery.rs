//! Crash-recovery integration tests across the whole stack: crashes at
//! different pipeline stages must never lose indexed data or resurrect
//! merged-away runs.

use std::sync::Arc;

use umzi::prelude::*;
use umzi_core::ReconcileStrategy;

fn row(device: i64, msg: i64, payload: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device),
        Datum::Int64(msg),
        Datum::Int64(0),
        Datum::Int64(payload),
    ]
}

fn count_visible(engine: &WildfireEngine, devices: i64) -> usize {
    (0..devices)
        .map(|d| {
            engine
                .scan_index(
                    vec![Datum::Int64(d)],
                    SortBound::Unbounded,
                    SortBound::Unbounded,
                    Freshness::Latest,
                    ReconcileStrategy::PriorityQueue,
                )
                .unwrap()
                .len()
        })
        .sum()
}

fn fresh(storage: &Arc<TieredStorage>) -> Arc<WildfireEngine> {
    WildfireEngine::create(
        Arc::clone(storage),
        Arc::new(iot_table()),
        EngineConfig {
            maintenance: None,
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

fn recover(storage: &Arc<TieredStorage>) -> Arc<WildfireEngine> {
    WildfireEngine::recover(
        Arc::clone(storage),
        Arc::new(iot_table()),
        EngineConfig {
            maintenance: None,
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn crash_after_grooms_only() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = fresh(&storage);
    for c in 0..5 {
        for d in 0..4 {
            engine.upsert(row(d, c, d * 10 + c)).unwrap();
        }
        engine.groom_all().unwrap();
    }
    drop(engine);
    storage.simulate_crash();

    let engine = recover(&storage);
    assert_eq!(count_visible(&engine, 4), 20);
}

#[test]
fn crash_mid_merge_window_deletes_covered_inputs() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = fresh(&storage);
    let shard = &engine.shards()[0];
    for c in 0..8 {
        for d in 0..4 {
            engine.upsert(row(d, c, c)).unwrap();
        }
        engine.groom_all().unwrap();
    }
    shard.index().drain_merges().unwrap();
    // Crash WITHOUT collecting garbage: merged inputs are still in shared
    // storage next to their merged superset.
    assert!(shard.index().graveyard_len() > 0);
    let runs_before = storage.shared().list("iot/s0/index/runs/").unwrap().len();
    drop(engine);
    storage.simulate_crash();

    let engine = recover(&storage);
    let runs_after = storage.shared().list("iot/s0/index/runs/").unwrap().len();
    assert!(
        runs_after < runs_before,
        "covered inputs deleted ({runs_before}→{runs_after})"
    );
    assert_eq!(count_visible(&engine, 4), 32);
}

#[test]
fn crash_between_post_groom_and_evolve_keeps_groomed_view() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = fresh(&storage);
    let shard = &engine.shards()[0];
    for c in 0..4 {
        for d in 0..4 {
            engine.upsert(row(d, c, c)).unwrap();
        }
        engine.groom_all().unwrap();
    }
    // Post-groom published but evolve never applied → watermark unchanged,
    // groomed runs still authoritative.
    shard.post_groom().unwrap().unwrap();
    drop(engine);
    storage.simulate_crash();

    let engine = recover(&storage);
    assert_eq!(engine.shards()[0].index().indexed_psn(), 0);
    assert_eq!(count_visible(&engine, 4), 16, "groomed zone still answers");
    // The pipeline can resume: post-groom again, evolve, and converge.
    engine.quiesce().unwrap();
    assert_eq!(count_visible(&engine, 4), 16);
    assert!(engine.shards()[0].index().indexed_psn() >= 1);
}

#[test]
fn double_crash_recovery_is_idempotent() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = fresh(&storage);
    for c in 0..6 {
        for d in 0..3 {
            engine.upsert(row(d, c, d + c)).unwrap();
        }
        engine.groom_all().unwrap();
        if c == 3 {
            engine.post_groom_all().unwrap();
            engine.evolve_all().unwrap();
        }
    }
    drop(engine);

    for _ in 0..3 {
        storage.simulate_crash();
        let engine = recover(&storage);
        assert_eq!(count_visible(&engine, 3), 18);
        drop(engine);
    }
}

#[test]
fn recovery_preserves_version_history() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = fresh(&storage);
    let mut snapshots = Vec::new();
    for v in 1..=3i64 {
        engine.upsert(row(0, 0, v * 111)).unwrap();
        engine.groom_all().unwrap();
        snapshots.push((v, engine.read_ts()));
    }
    engine.quiesce().unwrap();
    drop(engine);
    storage.simulate_crash();

    let engine = recover(&storage);
    for (v, ts) in snapshots {
        let got = engine
            .get(
                &[Datum::Int64(0)],
                &[Datum::Int64(0)],
                Freshness::Snapshot(ts),
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            got.row[3],
            Datum::Int64(v * 111),
            "version {v} visible at its snapshot"
        );
    }
}
