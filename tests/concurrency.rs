//! Concurrency invariants (§5.1): queries are lock-free and always see a
//! consistent index while builds, merges, evolves and GC run concurrently.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use umzi::prelude::*;
use umzi_core::{EvolveNotice, ReconcileStrategy};

fn entry(idx: &UmziIndex, zone: ZoneId, device: i64, msg: i64, ts: u64) -> IndexEntry {
    IndexEntry::new(
        idx.layout(),
        &[Datum::Int64(device)],
        &[Datum::Int64(msg)],
        ts,
        Rid::new(zone, ts, 0),
        &[],
    )
    .unwrap()
}

/// Readers must always observe: (a) every key ever fully published up to
/// their snapshot, (b) no duplicates, while a writer thread churns builds,
/// merges and evolves.
#[test]
fn readers_see_consistent_unified_view_under_maintenance() {
    let storage = Arc::new(TieredStorage::in_memory());
    let def = Arc::new(
        IndexDef::builder("c")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .build()
            .unwrap(),
    );
    let mut config = UmziConfig::two_zone("conc");
    config.merge = MergePolicy { k: 2, t: 4 };
    let idx = UmziIndex::create(storage, def, config).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    // Keys 0..published (msg = key, device = key % 4) are fully visible.
    let published = Arc::new(AtomicU64::new(0));

    let mut readers = Vec::new();
    for r in 0..3 {
        let idx = Arc::clone(&idx);
        let stop = Arc::clone(&stop);
        let published = Arc::clone(&published);
        readers.push(std::thread::spawn(move || {
            let mut checks = 0u64;
            while !stop.load(Ordering::Acquire) {
                let visible = published.load(Ordering::Acquire);
                if visible == 0 {
                    continue;
                }
                let device = (checks % 4) as i64;
                let out = idx
                    .range_scan(
                        &umzi_core::RangeQuery {
                            equality: vec![Datum::Int64(device)],
                            lower: SortBound::Unbounded,
                            upper: SortBound::Unbounded,
                            query_ts: u64::MAX,
                        },
                        if r % 2 == 0 {
                            ReconcileStrategy::PriorityQueue
                        } else {
                            ReconcileStrategy::Set
                        },
                    )
                    .expect("scan never fails under maintenance");
                // No duplicates.
                let mut keys: Vec<&[u8]> = out.iter().map(|o| &o.key[..o.key.len() - 8]).collect();
                keys.sort();
                keys.dedup();
                assert_eq!(keys.len(), out.len(), "duplicate logical keys in scan");
                // Coverage: at least ⌊visible/4⌋ keys of this device exist.
                let expect_min = visible / 4;
                assert!(
                    out.len() as u64 >= expect_min,
                    "device {device}: saw {} < {expect_min} of published {visible}",
                    out.len()
                );
                checks += 1;
            }
            checks
        }));
    }

    // Writer: builds, occasional evolve, continuous merges via drain.
    let mut key = 0u64;
    for block in 1..=40u64 {
        let entries: Vec<IndexEntry> = (0..25)
            .map(|_| {
                let k = key;
                key += 1;
                entry(&idx, ZoneId::GROOMED, (k % 4) as i64, k as i64, k + 1)
            })
            .collect();
        idx.build_groomed_run(entries, block, block).unwrap();
        published.store(key, Ordering::Release);
        idx.drain_merges().unwrap();

        if block % 10 == 0 {
            // Evolve everything groomed so far into the post-groomed zone.
            let psn = idx.indexed_psn() + 1;
            let pg_entries: Vec<IndexEntry> = (0..key)
                .map(|k| entry(&idx, ZoneId::POST_GROOMED, (k % 4) as i64, k as i64, k + 1))
                .collect();
            idx.evolve(EvolveNotice {
                psn,
                groomed_lo: 1,
                groomed_hi: block,
                entries: pg_entries,
            })
            .unwrap();
        }
        idx.collect_garbage().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }

    stop.store(true, Ordering::Release);
    for r in readers {
        let checks = r.join().unwrap();
        assert!(checks > 0, "reader made no progress");
    }

    // Final integrity: all 1000 keys, once each.
    let total: usize = (0..4)
        .map(|d| {
            idx.range_scan(
                &umzi_core::RangeQuery {
                    equality: vec![Datum::Int64(d)],
                    lower: SortBound::Unbounded,
                    upper: SortBound::Unbounded,
                    query_ts: u64::MAX,
                },
                ReconcileStrategy::PriorityQueue,
            )
            .unwrap()
            .len()
        })
        .sum();
    assert_eq!(total, 1000);
}

/// The full engine under daemons: concurrent writers and readers, then a
/// final consistency check after quiescing.
#[test]
fn engine_daemons_with_concurrent_clients() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(
        storage,
        Arc::new(iot_table()),
        EngineConfig {
            n_shards: 2,
            groom_interval: Duration::from_millis(15),
            post_groom_interval: Duration::from_millis(60),
            maintenance: Some(MaintenanceConfig {
                workers: 2,
                janitor_interval: Duration::from_millis(30),
                adaptive_cache: false,
                ..MaintenanceConfig::default()
            }),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let daemons = engine.start_daemons();
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n = 0i64;
            while !stop.load(Ordering::Acquire) {
                let rows: Vec<Vec<Datum>> = (0..50)
                    .map(|i| {
                        let k = n * 50 + i;
                        vec![
                            Datum::Int64(k % 20),
                            Datum::Int64(k / 20),
                            Datum::Int64(k % 5),
                            Datum::Int64(k),
                        ]
                    })
                    .collect();
                engine.upsert_many(rows).unwrap();
                n += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            n * 50
        })
    };

    let reader = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Acquire) {
                for d in 0..20i64 {
                    let _ = engine
                        .get(&[Datum::Int64(d)], &[Datum::Int64(0)], Freshness::Latest)
                        .unwrap();
                    reads += 1;
                }
            }
            reads
        })
    };

    std::thread::sleep(Duration::from_millis(800));
    stop.store(true, Ordering::Release);
    let written = writer.join().unwrap();
    let reads = reader.join().unwrap();
    daemons.shutdown();
    assert!(reads > 0);

    engine.quiesce().unwrap();
    let visible: usize = (0..20i64)
        .map(|d| {
            engine
                .scan_index(
                    vec![Datum::Int64(d)],
                    SortBound::Unbounded,
                    SortBound::Unbounded,
                    Freshness::Latest,
                    ReconcileStrategy::PriorityQueue,
                )
                .unwrap()
                .len()
        })
        .sum();
    assert_eq!(
        visible as i64, written,
        "every committed row visible after quiesce"
    );
}
