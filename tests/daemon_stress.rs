//! Maintenance-daemon stress: concurrent ingest and scans while the worker
//! pool grooms, merges, evolves and retires behind the scenes.
//!
//! Asserts the ISSUE's acceptance properties: (a) queries never surface a
//! dangling RID across evolve, (b) write-path backpressure stalls and then
//! resumes ingest, (c) a graceful shutdown leaves the job queue empty, and
//! full data integrity at the end. (The janitor's retire-without-evolve
//! guarantee is covered deterministically in the shard unit tests.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use umzi::prelude::*;
use umzi_core::ReconcileStrategy;
use umzi_wildfire::WildfireError;

const DEVICES: i64 = 16;

fn row(device: i64, msg: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device),
        Datum::Int64(msg),
        Datum::Int64(100 + msg % 3),
        Datum::Int64(device * 1_000_000 + msg),
    ]
}

fn stress_config() -> EngineConfig {
    let mut shard = ShardConfig::default();
    // Small K so level-0 merges fire often; the low watermark must stay
    // reachable (K − 1 = 1 runs can remain unmerged).
    shard.umzi.merge = MergePolicy { k: 2, t: 4 };
    shard.umzi.maintenance = MaintenanceConfig::default();
    EngineConfig {
        n_shards: 2,
        shard,
        groom_interval: Duration::from_millis(10),
        post_groom_interval: Duration::from_millis(50),
        groom_trigger_rows: 32,
        maintenance: Some(MaintenanceConfig {
            workers: 2,
            l0_high_watermark: 6,
            l0_low_watermark: 2,
            throttle: None,
            janitor_interval: Duration::from_millis(15),
            adaptive_cache: false,
            ..MaintenanceConfig::default()
        }),
        ..EngineConfig::default()
    }
}

/// Readers race the full groom → merge → evolve → retire pipeline and must
/// always see a clean, duplicate-free, ordered view; afterwards a graceful
/// shutdown drains the queue and every committed row is accounted for.
#[test]
fn concurrent_ingest_and_scans_survive_maintenance() {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(storage, Arc::new(iot_table()), stress_config()).unwrap();
    let daemons = engine.start_daemons();
    let daemon = Arc::clone(daemons.daemon().expect("maintenance configured"));

    let stop = Arc::new(AtomicBool::new(false));
    let written = Arc::new(AtomicU64::new(0));

    let writer = {
        let engine = Arc::clone(&engine);
        let written = Arc::clone(&written);
        std::thread::spawn(move || {
            for batch in 0..150i64 {
                let rows: Vec<Vec<Datum>> = (0..20)
                    .map(|i| {
                        let k = batch * 20 + i;
                        row(k % DEVICES, k / DEVICES)
                    })
                    .collect();
                engine.upsert_many(rows).unwrap();
                written.fetch_add(20, Ordering::Release);
                if batch % 8 == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        })
    };

    let mut readers = Vec::new();
    for r in 0..3u64 {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut checks = 0u64;
            while !stop.load(Ordering::Acquire) {
                let device = ((checks + r) % DEVICES as u64) as i64;
                // (a) Full record resolution across evolve: every RID the
                // index hands out must resolve (bounded retry inside).
                let recs = engine
                    .scan_records(
                        vec![Datum::Int64(device)],
                        SortBound::Unbounded,
                        SortBound::Unbounded,
                        Freshness::Latest,
                    )
                    .expect("scan never surfaces a dangling RID");
                // Ordered, duplicate-free view.
                for pair in recs.windows(2) {
                    let (a, b) = (&pair[0].row[1], &pair[1].row[1]);
                    assert!(a < b, "duplicate or out-of-order msg for device {device}");
                }
                // Point path too.
                if let Some(rec) = recs.last() {
                    let msg = rec.row[1].clone();
                    let hit = engine
                        .get(&[Datum::Int64(device)], &[msg], Freshness::Latest)
                        .expect("get never surfaces a dangling RID");
                    assert!(hit.is_some(), "just-scanned record must resolve");
                }
                checks += 1;
            }
            checks
        }));
    }

    writer.join().unwrap();
    // Let the pipeline work a little longer under read load.
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made no progress");
    }

    // (c) Graceful shutdown drains the queue completely.
    daemons.shutdown();
    assert!(daemon.is_idle(), "clean shutdown leaves the queue empty");
    let stats = daemon.stats();
    assert_eq!(stats.queue_depth, 0);
    assert!(
        stats.kind(JobKind::Groom).runs > 0
            && stats.kind(JobKind::Merge).runs > 0
            && stats.kind(JobKind::Evolve).runs > 0,
        "daemon workers did the maintenance: {stats:?}"
    );

    // Integrity: drain the tail synchronously and count everything.
    engine.quiesce().unwrap();
    let total: u64 = (0..DEVICES)
        .map(|d| {
            engine
                .scan_index(
                    vec![Datum::Int64(d)],
                    SortBound::Unbounded,
                    SortBound::Unbounded,
                    Freshness::Latest,
                    ReconcileStrategy::PriorityQueue,
                )
                .unwrap()
                .len() as u64
        })
        .sum();
    assert_eq!(total, written.load(Ordering::Acquire), "no row lost");
}

/// Large partitioned-parallel scans racing the full groom → merge → evolve
/// → retire pipeline: every iteration must observe a sorted, duplicate-free
/// view with no dangling RIDs, and the partitioned path must actually
/// engage (visible in the per-index fan-out counters).
#[test]
fn parallel_scans_survive_concurrent_maintenance() {
    const SCAN_DEVICES: i64 = 4;
    let mut config = stress_config();
    config.n_shards = 2;
    // Force the partitioned merge on even modest scans, with more
    // partitions than cores so the path is exercised regardless of the
    // machine (the adaptive min-rows floor would otherwise keep scans
    // this small sequential).
    config.shard.umzi.scan.max_scan_partitions = 4;
    config.shard.umzi.scan.parallel_row_threshold = 64;
    config.shard.umzi.scan.min_partition_rows = 16;
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(storage, Arc::new(iot_table()), config).unwrap();
    let daemons = engine.start_daemons();

    let stop = Arc::new(AtomicBool::new(false));
    let written = Arc::new(AtomicU64::new(0));

    // Few devices × many msgs: per-device scans are large enough to split.
    let writer = {
        let engine = Arc::clone(&engine);
        let written = Arc::clone(&written);
        std::thread::spawn(move || {
            for batch in 0..120i64 {
                let rows: Vec<Vec<Datum>> = (0..25)
                    .map(|i| {
                        let k = batch * 25 + i;
                        row(k % SCAN_DEVICES, k / SCAN_DEVICES)
                    })
                    .collect();
                engine.upsert_many(rows).unwrap();
                written.fetch_add(25, Ordering::Release);
                if batch % 10 == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        })
    };

    let mut readers = Vec::new();
    for r in 0..2u64 {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut checks = 0u64;
            while !stop.load(Ordering::Acquire) {
                let device = ((checks + r) % SCAN_DEVICES as u64) as i64;
                // Index-only scan: sorted, duplicate-free logical keys.
                let out = engine
                    .scan_index(
                        vec![Datum::Int64(device)],
                        SortBound::Unbounded,
                        SortBound::Unbounded,
                        Freshness::Latest,
                        ReconcileStrategy::PriorityQueue,
                    )
                    .expect("parallel scan never fails under maintenance");
                for pair in out.windows(2) {
                    assert!(
                        pair[0].key < pair[1].key,
                        "duplicate or unsorted logical key for device {device}"
                    );
                }
                // Full record resolution: every RID the partitioned merge
                // hands out must resolve (no dangling RIDs across evolve).
                let recs = engine
                    .scan_records(
                        vec![Datum::Int64(device)],
                        SortBound::Unbounded,
                        SortBound::Unbounded,
                        Freshness::Latest,
                    )
                    .expect("record scan never surfaces a dangling RID");
                for pair in recs.windows(2) {
                    assert!(
                        pair[0].row[1] < pair[1].row[1],
                        "duplicate or out-of-order msg for device {device}"
                    );
                }
                checks += 1;
            }
            checks
        }));
    }

    writer.join().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made no progress");
    }
    daemons.shutdown();

    // The partitioned path must have engaged while maintenance churned.
    let fanned_out: u64 = engine
        .shards()
        .iter()
        .map(|s| s.index().stats().parallel_scans)
        .sum();
    assert!(fanned_out > 0, "no scan ever took the partitioned path");

    // Integrity: drain the tail and account for every committed row.
    engine.quiesce().unwrap();
    let total: u64 = (0..SCAN_DEVICES)
        .map(|d| {
            engine
                .scan_index(
                    vec![Datum::Int64(d)],
                    SortBound::Unbounded,
                    SortBound::Unbounded,
                    Freshness::Latest,
                    ReconcileStrategy::PriorityQueue,
                )
                .unwrap()
                .len() as u64
        })
        .sum();
    assert_eq!(total, written.load(Ordering::Acquire), "no row lost");
}

/// Maintenance fairness under a 10x ingest skew: one hot shard keeps a
/// single slowed worker under sustained level-0 merge pressure (its runs
/// are built inline, so real merge work — which outranks grooms — arrives
/// faster than the worker drains it) while the cold shard takes a trickle.
/// The weighted-aging dequeue must still get the cold shard's groom served
/// while the pressure is on; with the run-count axis parked out of reach,
/// the byte-based gate is the only ingest backpressure, and no acked row
/// may be lost under it.
#[test]
fn cold_shard_groom_completes_under_hot_merge_pressure() {
    let table = iot_table();
    let shard_of = |device: i64| {
        table.shard_of(
            &[
                Datum::Int64(device),
                Datum::Int64(0),
                Datum::Int64(0),
                Datum::Int64(0),
            ],
            2,
        )
    };
    let hot_dev = (0..100).find(|&d| shard_of(d) == 0).unwrap();
    let cold_dev = (0..100).find(|&d| shard_of(d) == 1).unwrap();

    let mut config = stress_config();
    config.groom_trigger_rows = 64;
    config.groom_interval = Duration::from_millis(10);
    config.maintenance = Some(MaintenanceConfig {
        workers: 1,
        fair_dequeue: true,
        // Park the run-count axis so the byte watermarks are the only
        // ingest gate this test exercises.
        l0_high_watermark: 1_000_000,
        l0_low_watermark: 500_000,
        l0_bytes_high_watermark: 32 << 10,
        l0_bytes_low_watermark: 16 << 10,
        // One slowed worker: merge arrivals outpace it, which is exactly
        // the backlog the aging dequeue must let the cold groom overtake.
        throttle: Some(Duration::from_millis(2)),
        stall_timeout: Some(Duration::from_secs(2)),
        janitor_interval: Duration::from_millis(15),
        adaptive_cache: false,
        ..MaintenanceConfig::default()
    });
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(storage, Arc::new(table), config).unwrap();
    let daemons = engine.start_daemons();
    let daemon = Arc::clone(daemons.daemon().expect("maintenance configured"));

    // Hot flood: 10x the cold rate, groomed inline each round so the daemon
    // queue always holds fresh level-0 merge work for the hot shard.
    let stop = Arc::new(AtomicBool::new(false));
    let hot_acked = Arc::new(AtomicU64::new(0));
    let flood = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let hot_acked = Arc::clone(&hot_acked);
        std::thread::spawn(move || {
            let mut msg = 0i64;
            while !stop.load(Ordering::Acquire) {
                let rows: Vec<Vec<Datum>> = (0..80).map(|i| row(hot_dev, msg + i)).collect();
                match engine.upsert_many(rows) {
                    Ok(()) => {
                        hot_acked.fetch_add(80, Ordering::Release);
                        msg += 80;
                    }
                    // A stall that outlives the timeout rejects the batch;
                    // rejected rows are not acked and not expected back.
                    Err(WildfireError::Backpressure { .. }) => {}
                    Err(e) => panic!("hot ingest failed: {e}"),
                }
                engine.shards()[0].groom().expect("inline hot groom");
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // Cold trickle, polling for the cold shard's groom to land while the
    // flood is still running. FIFO dequeue would leave it behind the hot
    // merge backlog; the aging dequeue must serve it within the deadline.
    // Keep the flood alive until a hot merge has actually *run* — on a
    // fast machine the cold groom can land before the first merge job
    // completes, which would make the pressure assertion below vacuous.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let mut cold_acked = 0u64;
    let mut cold_msg = 0i64;
    let cold_shard = &engine.shards()[1];
    while cold_shard.groomed_hi() == 0 || daemon.stats().kind(JobKind::Merge).runs == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "cold shard groom starved behind hot merge pressure: {:?}",
            daemon.stats()
        );
        let rows: Vec<Vec<Datum>> = (0..8).map(|i| row(cold_dev, cold_msg + i)).collect();
        match engine.upsert_many(rows) {
            Ok(()) => {
                cold_acked += 8;
                cold_msg += 8;
            }
            Err(WildfireError::Backpressure { .. }) => {}
            Err(e) => panic!("cold ingest failed: {e}"),
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // The cold groom landed while the flood was live — now wind down.
    stop.store(true, Ordering::Release);
    flood.join().unwrap();
    daemons.shutdown();

    let stats = daemon.stats();
    assert!(
        stats.peak_dequeue_age(JobKind::Groom) > 0,
        "aging dequeue never recorded a groom waiting in the queue: {stats:?}"
    );
    assert!(
        stats.kind(JobKind::Merge).runs > 0,
        "hot flood generated no merge work: {stats:?}"
    );

    // Integrity under the byte-based gate: every acked row is countable,
    // whether or not the gate ever stalled (rejected batches were not
    // acked and are excluded above).
    engine.quiesce().unwrap();
    let count = |device: i64| {
        engine
            .scan_index(
                vec![Datum::Int64(device)],
                SortBound::Unbounded,
                SortBound::Unbounded,
                Freshness::Latest,
                ReconcileStrategy::PriorityQueue,
            )
            .unwrap()
            .len() as u64
    };
    assert_eq!(
        count(hot_dev) + count(cold_dev),
        hot_acked.load(Ordering::Acquire) + cold_acked,
        "acked rows lost under the byte-based ingest gate"
    );
}

/// (b) Sustained ingest against a deliberately slowed worker pool must hit
/// the level-0 high watermark, stall, and then resume once merges catch up
/// — and lose nothing in the process.
#[test]
fn backpressure_stalls_and_resumes_ingest() {
    let mut config = stress_config();
    config.groom_trigger_rows = 8;
    // Small groom batches: every groom job produces a run and leaves
    // backlog behind, so level-0 runs keep appearing while the writer is
    // still live.
    config.shard.groom_batch_limit = 64;
    config.maintenance = Some(MaintenanceConfig {
        workers: 1,
        // K = 2 merges fire exactly at 2 sealed runs, so a high watermark
        // of 2 is the tightest reachable stall point (low = K − 1 stays
        // reachable too — the gate can always be relieved).
        l0_high_watermark: 2,
        l0_low_watermark: 1,
        // Slow the lone worker so grooming outruns merging.
        throttle: Some(Duration::from_millis(2)),
        janitor_interval: Duration::from_millis(20),
        adaptive_cache: false,
        ..MaintenanceConfig::default()
    });
    config.n_shards = 1;
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(storage, Arc::new(iot_table()), config).unwrap();
    let daemons = engine.start_daemons();
    let daemon = Arc::clone(daemons.daemon().unwrap());

    // Sustained ingest: keep writing until the gate has demonstrably
    // engaged. A fixed row count would race the throttled worker — job
    // dedup admits at most one queued groom per shard, so a fast writer
    // can finish before two level-0 runs ever coexist. The deadline only
    // bounds a broken gate; a healthy one engages within milliseconds.
    let mut rows: u64 = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while daemon.stats().backpressure.stalls == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "sustained ingest must hit the watermark: {:?}",
            daemon.stats()
        );
        for _ in 0..64 {
            engine
                .upsert(row(rows as i64 % DEVICES, rows as i64 / DEVICES))
                .unwrap();
            rows += 1;
        }
    }
    // Write on through the stall so the resume path is exercised too.
    for _ in 0..10_000 {
        engine
            .upsert(row(rows as i64 % DEVICES, rows as i64 / DEVICES))
            .unwrap();
        rows += 1;
    }
    let stats = daemon.stats();
    assert!(stats.backpressure.stalls > 0, "stall engaged: {stats:?}");
    assert!(stats.backpressure.stall_nanos > 0, "stall time accounted");
    // Every upsert returned, so each stall was followed by a resume.

    daemons.shutdown();
    engine.quiesce().unwrap();
    let total: u64 = (0..DEVICES)
        .map(|d| {
            engine
                .scan_index(
                    vec![Datum::Int64(d)],
                    SortBound::Unbounded,
                    SortBound::Unbounded,
                    Freshness::Latest,
                    ReconcileStrategy::PriorityQueue,
                )
                .unwrap()
                .len() as u64
        })
        .sum();
    assert_eq!(total, rows, "backpressure must not drop writes");
}
