//! Secondary-index integration tests (§10 future work): maintained by the
//! same groom/post-groom/evolve pipeline as the primary, queried by
//! non-key columns, validated against the primary.

use std::sync::Arc;

use umzi::prelude::*;
use umzi_encoding::ColumnType;

/// Orders table: PK (region, order_id), secondary index on customer.
fn orders_table() -> TableDef {
    TableDef::builder("orders")
        .column("region", ColumnType::Int64)
        .column("order_id", ColumnType::Int64)
        .column("customer", ColumnType::Int64)
        .column("amount", ColumnType::Int64)
        .primary_key(&["region", "order_id"])
        .sharding_key(&["region"])
        .secondary_index("by_customer", &["customer"], &[], &["amount"])
        .build()
        .unwrap()
}

fn row(region: i64, order_id: i64, customer: i64, amount: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(region),
        Datum::Int64(order_id),
        Datum::Int64(customer),
        Datum::Int64(amount),
    ]
}

fn engine() -> Arc<WildfireEngine> {
    let storage = Arc::new(TieredStorage::in_memory());
    WildfireEngine::create(
        storage,
        Arc::new(orders_table()),
        EngineConfig {
            n_shards: 2,
            maintenance: None,
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

fn customer_orders(e: &WildfireEngine, customer: i64) -> Vec<(i64, i64, i64)> {
    let mut out: Vec<(i64, i64, i64)> = e
        .scan_secondary(
            "by_customer",
            vec![Datum::Int64(customer)],
            SortBound::Unbounded,
            SortBound::Unbounded,
            Freshness::Latest,
        )
        .unwrap()
        .iter()
        .map(|v| {
            (
                v.row[0].as_i64().unwrap(),
                v.row[1].as_i64().unwrap(),
                v.row[3].as_i64().unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn secondary_lookup_by_non_key_column() {
    let e = engine();
    // 30 orders across 3 customers and 2 regions.
    for i in 0..30i64 {
        e.upsert(row(i % 2, i, i % 3, i * 10)).unwrap();
    }
    e.groom_all().unwrap();
    let got = customer_orders(&e, 1);
    let mut expect: Vec<(i64, i64, i64)> = (0..30)
        .filter(|i| i % 3 == 1)
        .map(|i| (i % 2, i, i * 10))
        .collect();
    expect.sort();
    assert_eq!(got, expect);
}

#[test]
fn secondary_scan_validation_probes_are_labelled_scan_traffic() {
    // scan_secondary validates its hits with one batched primary-index
    // lookup per shard. Those probes serve an analytical scan: they must be
    // labelled RangeScan for the decoded cache (no promotion into the
    // protected segment), not PointLookup.
    let e = engine();
    for i in 0..200i64 {
        e.upsert(row(i % 2, i, i % 10, i * 10)).unwrap();
    }
    e.quiesce().unwrap();
    let before = e.decoded_cache_stats();
    assert_eq!(customer_orders(&e, 3).len(), 20);
    let after = e.decoded_cache_stats();
    assert_eq!(
        after.point.hits + after.point.misses,
        before.point.hits + before.point.misses,
        "validation probes must not count as point traffic: {after:?}"
    );
    assert!(
        after.scan.hits + after.scan.misses > before.scan.hits + before.scan.misses,
        "the scan and its validation probes are scan traffic: {after:?}"
    );
}

#[test]
fn secondary_survives_full_pipeline_and_merges() {
    let e = engine();
    for c in 0..6i64 {
        for i in 0..20i64 {
            let id = c * 20 + i;
            e.upsert(row(id % 2, id, id % 4, id)).unwrap();
        }
        e.groom_all().unwrap();
    }
    e.quiesce().unwrap();
    for customer in 0..4i64 {
        let got = customer_orders(&e, customer);
        assert_eq!(got.len(), 30, "customer {customer}");
        assert!(got.iter().all(|&(_, id, _)| id % 4 == customer));
    }
    // The secondary index evolved alongside the primary (on every shard
    // that actually holds data — region hashing may leave a shard empty).
    for shard in e.shards() {
        if shard.groomed_hi() == 0 {
            continue;
        }
        let sidx = shard.secondary_index("by_customer").unwrap();
        assert!(sidx.indexed_psn() >= 1);
        assert_eq!(
            sidx.zones()[0].list.len(),
            0,
            "secondary groomed zone drained"
        );
    }
}

#[test]
fn updates_that_change_the_secondary_key_are_validated_out() {
    let e = engine();
    // Order 5 belongs to customer 1 …
    e.upsert(row(0, 5, 1, 100)).unwrap();
    e.groom_all().unwrap();
    assert_eq!(customer_orders(&e, 1), vec![(0, 5, 100)]);

    // … then moves to customer 2.
    e.upsert(row(0, 5, 2, 150)).unwrap();
    e.groom_all().unwrap();

    assert_eq!(
        customer_orders(&e, 1),
        vec![],
        "stale secondary entry must fail primary validation"
    );
    assert_eq!(customer_orders(&e, 2), vec![(0, 5, 150)]);

    // Still true after post-groom + evolve + merges.
    e.quiesce().unwrap();
    assert_eq!(customer_orders(&e, 1), vec![]);
    assert_eq!(customer_orders(&e, 2), vec![(0, 5, 150)]);
}

#[test]
fn secondary_recovers_from_crash() {
    let storage = Arc::new(TieredStorage::in_memory());
    let cfg = EngineConfig {
        n_shards: 1,
        maintenance: None,
        ..EngineConfig::default()
    };
    let e = WildfireEngine::create(Arc::clone(&storage), Arc::new(orders_table()), cfg.clone())
        .unwrap();
    for i in 0..20i64 {
        e.upsert(row(0, i, i % 3, i)).unwrap();
    }
    e.groom_all().unwrap();
    e.post_groom_all().unwrap();
    e.evolve_all().unwrap();
    drop(e);
    storage.simulate_crash();

    let e = WildfireEngine::recover(storage, Arc::new(orders_table()), cfg).unwrap();
    let got = customer_orders(&e, 2);
    assert_eq!(got.len(), (0..20).filter(|i| i % 3 == 2).count());
    // Pipeline keeps working post-recovery.
    e.upsert(row(0, 100, 2, 999)).unwrap();
    e.quiesce().unwrap();
    assert!(customer_orders(&e, 2).contains(&(0, 100, 999)));
}

#[test]
fn unknown_secondary_index_is_an_error() {
    let e = engine();
    assert!(e
        .scan_secondary(
            "nope",
            vec![Datum::Int64(1)],
            SortBound::Unbounded,
            SortBound::Unbounded,
            Freshness::Latest,
        )
        .is_err());
}
