//! The full stack over a real filesystem-backed shared storage: run files,
//! manifests, data blocks and deltas are actual files on disk, and recovery
//! happens in a brand-new process-like context (fresh `TieredStorage`,
//! nothing in memory).

use std::sync::Arc;

use umzi::prelude::*;
use umzi::storage::FsObjectStore;
use umzi_core::ReconcileStrategy;

fn row(device: i64, msg: i64, payload: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device),
        Datum::Int64(msg),
        Datum::Int64(0),
        Datum::Int64(payload),
    ]
}

fn fs_storage(dir: &std::path::Path) -> Arc<TieredStorage> {
    let store = FsObjectStore::open(dir).expect("open fs store");
    Arc::new(TieredStorage::new(
        SharedStorage::new(Arc::new(store), umzi::storage::LatencyModel::off()),
        TieredConfig::default(),
    ))
}

#[test]
fn engine_on_real_files_with_cold_restart() {
    let dir = std::env::temp_dir().join(format!("umzi-fs-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let table = Arc::new(iot_table());
    let cfg = EngineConfig {
        maintenance: None,
        ..EngineConfig::default()
    };

    let snapshot_ts;
    {
        let storage = fs_storage(&dir);
        let engine = WildfireEngine::create(storage, Arc::clone(&table), cfg.clone()).unwrap();
        for c in 0..6i64 {
            for d in 0..5i64 {
                engine.upsert(row(d, c, d * 100 + c)).unwrap();
            }
            engine.groom_all().unwrap();
            if c == 3 {
                engine.post_groom_all().unwrap();
                engine.evolve_all().unwrap();
            }
        }
        engine.shards()[0].index().drain_merges().unwrap();
        engine.shards()[0].index().collect_garbage().unwrap();
        snapshot_ts = engine.read_ts();
        // Everything of interest is on disk now.
    }

    // Files really exist.
    let run_files: Vec<_> = walk(&dir)
        .into_iter()
        .filter(|p| p.to_string_lossy().contains("/runs/"))
        .collect();
    assert!(!run_files.is_empty(), "run files on disk: {run_files:?}");

    // "Cold restart": brand-new storage over the same directory.
    let storage = fs_storage(&dir);
    let engine = WildfireEngine::recover(storage, table, cfg).unwrap();
    for d in 0..5i64 {
        let out = engine
            .scan_index(
                vec![Datum::Int64(d)],
                SortBound::Unbounded,
                SortBound::Unbounded,
                Freshness::Snapshot(snapshot_ts),
                ReconcileStrategy::PriorityQueue,
            )
            .unwrap();
        assert_eq!(out.len(), 6, "device {d} after cold restart");
        // Records resolve from on-disk blocks.
        let rec = engine
            .get(
                &[Datum::Int64(d)],
                &[Datum::Int64(5)],
                Freshness::Snapshot(snapshot_ts),
            )
            .unwrap()
            .unwrap();
        assert_eq!(rec.row[3], Datum::Int64(d * 100 + 5));
    }

    // Keep working and re-persist.
    engine.upsert(row(0, 99, 7)).unwrap();
    engine.quiesce().unwrap();
    assert!(engine
        .get(&[Datum::Int64(0)], &[Datum::Int64(99)], Freshness::Latest)
        .unwrap()
        .is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

fn walk(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if let Ok(entries) = std::fs::read_dir(&d) {
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else {
                    out.push(p);
                }
            }
        }
    }
    out
}
