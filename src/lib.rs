//! # Umzi — Unified Multi-Zone Indexing for Large-Scale HTAP
//!
//! A from-scratch Rust reproduction of *"Umzi: Unified Multi-Zone Indexing
//! for Large-Scale HTAP"* (Luo, Tözün, Tian, Barber, Raman, Sidle — EDBT
//! 2019), the multi-version, multi-zone LSM-like index behind IBM's Wildfire
//! HTAP prototype (and Db2 Event Store).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`encoding`] | `umzi-encoding` | datums, memcmp-comparable key codec, 64-bit hash, index definitions |
//! | [`storage`] | `umzi-storage` | object stores, memory/SSD/shared tiers, latency model |
//! | [`run`] | `umzi-run` | the index-run format: header, synopsis, offset array, search |
//! | [`core`] | `umzi-core` | the Umzi index: zones, merge, evolve, recovery, queries |
//! | [`wildfire`] | `umzi-wildfire` | the HTAP substrate: live zone, groomer, post-groomer, engine |
//! | [`workload`] | `umzi-workload` | the paper's synthetic workloads (I1/I2/I3, key dists, IoT updates) |
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use umzi::prelude::*;
//!
//! // An IoT table sharded by device and partitioned by date (§2.1).
//! let storage = Arc::new(TieredStorage::in_memory());
//! let engine = WildfireEngine::create(
//!     storage,
//!     Arc::new(iot_table()),
//!     EngineConfig { maintenance: None, ..EngineConfig::default() },
//! )
//! .unwrap();
//!
//! // Ingest, then drive the groom → post-groom → evolve pipeline.
//! engine
//!     .upsert(vec![
//!         Datum::Int64(4),   // device  (sharding + index equality)
//!         Datum::Int64(1),   // msg     (index sort)
//!         Datum::Int64(319), // date    (partition key)
//!         Datum::Int64(42),  // payload (index included)
//!     ])
//!     .unwrap();
//! engine.quiesce().unwrap();
//!
//! let rec = engine
//!     .get(&[Datum::Int64(4)], &[Datum::Int64(1)], Freshness::Latest)
//!     .unwrap()
//!     .expect("indexed after grooming");
//! assert_eq!(rec.row[3], Datum::Int64(42));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses regenerating every figure of the paper's evaluation.

pub use umzi_core as core;
pub use umzi_encoding as encoding;
pub use umzi_run as run;
pub use umzi_storage as storage;
pub use umzi_wildfire as wildfire;
pub use umzi_workload as workload;

/// Commonly used items in one import.
pub mod prelude {
    pub use umzi_core::{
        EvolveNotice, IndexDaemon, Job, JobKind, MaintenanceConfig, MaintenanceDaemon,
        MaintenanceStats, MergePolicy, QueryOutput, RangeQuery, ReconcileStrategy, UmziConfig,
        UmziIndex,
    };
    pub use umzi_encoding::{ColumnType, Datum, DatumKind, IndexDef};
    pub use umzi_run::{IndexEntry, Rid, Run, SortBound, ZoneId};
    pub use umzi_storage::{
        Durability, LatencyMode, SharedStorage, TierLatency, TieredConfig, TieredStorage,
    };
    pub use umzi_wildfire::{
        iot_table, EngineConfig, Freshness, ShardConfig, TableDef, WildfireEngine,
    };
    pub use umzi_workload::{IndexPreset, IotUpdateModel, KeyDist, KeyGen};
}
