#!/usr/bin/env python3
"""Print a before/after comparison of two bench-JSON trajectories.

Usage: compare_bench.py COMMITTED.json FRESH.json

Both files follow the shape the benches emit: a "results" list of
measurements keyed by (workload, runs) with an "ops_per_sec" figure, plus
optional top-level "*_speedup_*" scalars and percentile scalars (keys with
a p50/p90/p99/p999 component, e.g. "cold_shard_point_p99_nanos_fair").
Missing rows (new workloads, or a first run with no committed baseline) are
reported as such rather than failing — CI must stay green when a PR adds a
bench group. Percentile scalars are the exception: they are SLO tracking
points, so a committed percentile scalar that vanishes from the fresh run
fails the comparison loudly — a renamed or dropped tail-latency gauge must
never slip through as "group set changed".
"""

import json
import re
import sys

# A top-level scalar is a percentile tracking point when its key has a
# standalone pNN component ("..._p99_nanos_...", not "...p99x...").
PERCENTILE_KEY = re.compile(r"(?:^|_)p(?:50|90|99|999)(?:_|$)")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"  (no usable baseline at {path}: {e})")
        return None


def rows(doc):
    return {(r["workload"], r.get("runs")): r for r in doc.get("results", [])}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    committed_path, fresh_path = sys.argv[1], sys.argv[2]
    fresh = load(fresh_path)
    if fresh is None:
        sys.exit(f"fresh bench output missing at {fresh_path}")
    committed = load(committed_path)

    print(f"\n== bench comparison: committed vs fresh ({fresh.get('bench', '?')}) ==")
    old = rows(committed) if committed else {}
    new = rows(fresh)
    print(f"{'workload':<30} {'runs':>5} {'committed':>12} {'fresh':>12} {'delta':>8}")
    for key in sorted(new, key=str):
        workload, runs = key
        n = new[key]["ops_per_sec"]
        o = old.get(key, {}).get("ops_per_sec")
        if o:
            delta = f"{(n - o) / o * 100:+.1f}%"
            print(f"{workload:<30} {runs!s:>5} {o:>12.1f} {n:>12.1f} {delta:>8}")
        else:
            print(f"{workload:<30} {runs!s:>5} {'—':>12} {n:>12.1f} {'new':>8}")

    # Call out group membership changes explicitly: a PR that adds or drops a
    # bench group should be visible at a glance, not inferred from which rows
    # lack a committed column.
    added = sorted(set(new) - set(old), key=str)
    removed = sorted(set(old) - set(new), key=str)
    if added:
        print(f"added groups ({len(added)}):")
        for workload, runs in added:
            print(f"  + {workload} (runs={runs})")
    if removed:
        print(f"removed groups ({len(removed)}):")
        for workload, runs in removed:
            print(f"  - {workload} (runs={runs})")
    if committed is not None and not added and not removed:
        print("group set unchanged")

    def is_percentile(k):
        return isinstance(fresh.get(k, (committed or {}).get(k)), (int, float)) and bool(
            PERCENTILE_KEY.search(k)
        )

    old_scalars = {k for k in (committed or {}) if "speedup" in k and not is_percentile(k)}
    new_scalars = {k for k in fresh if "speedup" in k and not is_percentile(k)}
    for k in sorted(new_scalars):
        o = (committed or {}).get(k)
        base = f" (committed: {o})" if o is not None else " (new scalar)"
        print(f"{k}: {fresh[k]}{base}")
    for k in sorted(old_scalars - new_scalars):
        print(f"{k}: removed (committed: {committed[k]})")

    # Percentile scalars: diff every one, and fail loudly if a committed one
    # is missing from the fresh run.
    old_pcts = {k for k in (committed or {}) if is_percentile(k)}
    new_pcts = {k for k in fresh if is_percentile(k)}
    if old_pcts or new_pcts:
        print("percentile scalars:")
    for k in sorted(new_pcts):
        n = fresh[k]
        o = (committed or {}).get(k)
        if isinstance(o, (int, float)) and o:
            print(f"  {k}: {o} -> {n} ({(n - o) / o * 100:+.1f}%)")
        elif o is not None:
            print(f"  {k}: {o} -> {n}")
        else:
            print(f"  {k}: {n} (new scalar)")
    lost = sorted(old_pcts - new_pcts)
    if lost:
        for k in lost:
            print(f"  {k}: MISSING from fresh run (committed: {committed[k]})")
        sys.exit(
            f"FAIL: {len(lost)} committed percentile scalar(s) missing from "
            f"{fresh_path} — a tail-latency tracking point was dropped or "
            "renamed without updating the committed baseline"
        )


if __name__ == "__main__":
    main()
