#!/usr/bin/env python3
"""Print a before/after comparison of two bench-JSON trajectories.

Usage: compare_bench.py COMMITTED.json FRESH.json

Both files follow the shape the benches emit: a "results" list of
measurements keyed by (workload, runs) with an "ops_per_sec" figure, plus
optional top-level "*_speedup_*" scalars. Missing rows (new workloads, or a
first run with no committed baseline) are reported as such rather than
failing — CI must stay green when a PR adds a bench group.
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"  (no usable baseline at {path}: {e})")
        return None


def rows(doc):
    return {(r["workload"], r.get("runs")): r for r in doc.get("results", [])}


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    committed_path, fresh_path = sys.argv[1], sys.argv[2]
    fresh = load(fresh_path)
    if fresh is None:
        sys.exit(f"fresh bench output missing at {fresh_path}")
    committed = load(committed_path)

    print(f"\n== bench comparison: committed vs fresh ({fresh.get('bench', '?')}) ==")
    old = rows(committed) if committed else {}
    new = rows(fresh)
    print(f"{'workload':<30} {'runs':>5} {'committed':>12} {'fresh':>12} {'delta':>8}")
    for key in sorted(new, key=str):
        workload, runs = key
        n = new[key]["ops_per_sec"]
        o = old.get(key, {}).get("ops_per_sec")
        if o:
            delta = f"{(n - o) / o * 100:+.1f}%"
            print(f"{workload:<30} {runs!s:>5} {o:>12.1f} {n:>12.1f} {delta:>8}")
        else:
            print(f"{workload:<30} {runs!s:>5} {'—':>12} {n:>12.1f} {'new':>8}")

    # Call out group membership changes explicitly: a PR that adds or drops a
    # bench group should be visible at a glance, not inferred from which rows
    # lack a committed column.
    added = sorted(set(new) - set(old), key=str)
    removed = sorted(set(old) - set(new), key=str)
    if added:
        print(f"added groups ({len(added)}):")
        for workload, runs in added:
            print(f"  + {workload} (runs={runs})")
    if removed:
        print(f"removed groups ({len(removed)}):")
        for workload, runs in removed:
            print(f"  - {workload} (runs={runs})")
    if committed is not None and not added and not removed:
        print("group set unchanged")

    old_scalars = {k for k in (committed or {}) if "speedup" in k}
    new_scalars = {k for k in fresh if "speedup" in k}
    for k, v in fresh.items():
        if "speedup" in k:
            o = (committed or {}).get(k)
            base = f" (committed: {o})" if o is not None else " (new scalar)"
            print(f"{k}: {v}{base}")
    for k in sorted(old_scalars - new_scalars):
        print(f"{k}: removed (committed: {committed[k]})")


if __name__ == "__main__":
    main()
