//! Secondary indexes — the paper's §10 future work, implemented.
//!
//! A secondary index reuses the whole Umzi machinery by appending the
//! primary key to its sort columns (unique logical keys), is maintained by
//! the same groom → post-groom → evolve pipeline, and validates its hits
//! against the primary index so key updates never surface stale rows.
//!
//! Run with: `cargo run --release --example secondary_index`

use std::sync::Arc;

use umzi::encoding::ColumnType;
use umzi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An orders table: PK (region, order_id); secondary index on customer.
    let table = TableDef::builder("orders")
        .column("region", ColumnType::Int64)
        .column("order_id", ColumnType::Int64)
        .column("customer", ColumnType::Int64)
        .column("amount", ColumnType::Int64)
        .primary_key(&["region", "order_id"])
        .sharding_key(&["region"])
        .secondary_index("by_customer", &["customer"], &[], &["amount"])
        .build()?;

    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(
        storage,
        Arc::new(table),
        EngineConfig {
            maintenance: None,
            ..EngineConfig::default()
        },
    )?;

    println!("== ingesting 1000 orders from 50 customers");
    for id in 0..1000i64 {
        engine.upsert(vec![
            Datum::Int64(id % 4),  // region
            Datum::Int64(id),      // order_id
            Datum::Int64(id % 50), // customer
            Datum::Int64(id * 3),  // amount
        ])?;
    }
    engine.quiesce()?; // groom → post-groom → evolve, for all indexes

    // Query by customer — a non-key column the primary index cannot serve.
    let orders = engine.scan_secondary(
        "by_customer",
        vec![Datum::Int64(7)],
        SortBound::Unbounded,
        SortBound::Unbounded,
        Freshness::Latest,
    )?;
    println!("customer 7 has {} orders", orders.len());
    assert_eq!(orders.len(), 20);

    // Move one of customer 7's orders to customer 8; the stale secondary
    // entry is validated out against the primary index.
    engine.upsert(vec![
        Datum::Int64(7 % 4),
        Datum::Int64(7),
        Datum::Int64(8),
        Datum::Int64(21),
    ])?;
    engine.quiesce()?;
    let after = engine.scan_secondary(
        "by_customer",
        vec![Datum::Int64(7)],
        SortBound::Unbounded,
        SortBound::Unbounded,
        Freshness::Latest,
    )?;
    println!(
        "after reassigning order 7: customer 7 has {} orders",
        after.len()
    );
    assert_eq!(after.len(), 19);

    // The secondary index evolved through the zones like the primary.
    for shard in engine.shards() {
        if let Some(sidx) = shard.secondary_index("by_customer") {
            let s = sidx.stats();
            println!(
                "shard {}: secondary runs/zone {:?}, evolves {}",
                shard.shard_id(),
                s.runs_per_zone,
                s.evolves
            );
        }
    }
    println!("OK");
    Ok(())
}
