//! A guided tour of the index internals, reproducing the paper's worked
//! examples directly against `UmziIndex` (no engine): the multi-run
//! structure of Figure 3, a merge splice (Figure 4, §5.3), the three-step
//! evolve of Figure 6 (§5.4), and cache purging (Figure 7, §6.2).
//!
//! Run with: `cargo run --release --example zone_tour`

use std::sync::Arc;

use umzi::core::EvolveNotice;
use umzi::prelude::*;

fn print_structure(title: &str, idx: &UmziIndex) {
    println!("-- {title}");
    for (zi, zone) in idx.zones().iter().enumerate() {
        let runs: Vec<String> = zone
            .list
            .snapshot()
            .iter()
            .map(|r| {
                let (lo, hi) = r.groomed_range();
                format!(
                    "L{}[{lo}-{hi}]{}",
                    r.level(),
                    if r.is_sealed() { "" } else { "*" }
                )
            })
            .collect();
        println!(
            "   zone {} ({}): {}",
            zi,
            zone.config.zone,
            if runs.is_empty() {
                "(empty)".to_owned()
            } else {
                runs.join(" → ")
            }
        );
    }
    println!(
        "   watermark: {:?}, indexed PSN: {}\n",
        idx.covered_groomed_hi(0),
        idx.indexed_psn()
    );
}

fn entries(idx: &UmziIndex, zone: ZoneId, block: u64, n: i64) -> Vec<IndexEntry> {
    (0..n)
        .map(|i| {
            IndexEntry::new(
                idx.layout(),
                &[Datum::Int64(i % 8)],
                &[Datum::Int64(block as i64 * 1000 + i)],
                block * 100 + i as u64,
                Rid::new(zone, block, i as u32),
                &[],
            )
            .expect("valid entry")
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let storage = Arc::new(TieredStorage::in_memory());
    let def = Arc::new(
        IndexDef::builder("tour")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .build()?,
    );
    // Small K so merges fire quickly; the paper's two-zone level layout.
    let mut config = UmziConfig::two_zone("tour");
    config.merge = MergePolicy { k: 3, t: 100 };
    let idx = UmziIndex::create(Arc::clone(&storage), def, config)?;

    // §5.2 index build: each groom produces one level-0 run at the head.
    println!("== §5.2 index build: six grooms → six level-0 runs\n");
    for block in 1..=6u64 {
        idx.build_groomed_run(entries(&idx, ZoneId::GROOMED, block, 64), block, block)?;
    }
    print_structure("after six builds (newest first)", &idx);

    // §5.3 merge: with K = 3, the three oldest level-0 runs splice into one
    // level-1 run (Figure 4's two pointer stores).
    println!("== §5.3 merge (Figure 4)\n");
    while let Some(report) = idx.merge_at(0)? {
        println!(
            "   merged {} runs into run {} at level 1 ({} entries, sealed: {})",
            report.inputs, report.output_run_id, report.output_entries, report.sealed
        );
    }
    print_structure("after level-0 merges", &idx);

    // §5.4 evolve (Figure 6): post-groom covers groomed blocks 1–4; the
    // post-groomed run is prepended, the watermark advances, covered groomed
    // runs are GC'd — queries are never blocked and never see duplicates.
    println!("== §5.4 evolve (Figure 6): post-groom covering blocks 1-4\n");
    let mut pg_entries = Vec::new();
    for block in 1..=4u64 {
        pg_entries.extend(
            entries(&idx, ZoneId::POST_GROOMED, block, 64)
                .into_iter()
                .map(|mut e| {
                    // Same versions, new post-groomed RIDs (zone changes).
                    e.value[0] = 1;
                    e
                }),
        );
    }
    let report = idx.evolve(EvolveNotice {
        psn: 1,
        groomed_lo: 1,
        groomed_hi: 4,
        entries: pg_entries,
    })?;
    println!(
        "   evolve psn {}: new run {}, watermark {}, {} groomed runs GC'd",
        report.psn, report.new_run_id, report.watermark, report.gc_runs
    );
    print_structure("after evolve", &idx);

    // Queries reconcile across zones: every key has exactly one visible
    // version per (device, msg).
    let out = idx.range_scan(
        &RangeQuery {
            equality: vec![Datum::Int64(3)],
            lower: SortBound::Unbounded,
            upper: SortBound::Unbounded,
            query_ts: u64::MAX,
        },
        ReconcileStrategy::PriorityQueue,
    )?;
    println!(
        "   unified scan for device 3: {} entries across both zones\n",
        out.len()
    );

    // §6.2 cache management (Figure 7): purge everything above level 0, keep
    // headers, and watch reads fall back to shared storage block-by-block.
    println!("== §6.2 cache purge (Figure 7)\n");
    let before = idx.storage().stats().shared.reads;
    let report = idx.set_cached_level(0)?;
    println!(
        "   purged {} runs above level 0 (cached level now {})",
        report.purged_runs, report.cached_level
    );
    let _ = idx.point_lookup(&[Datum::Int64(3)], &[Datum::Int64(1003)], u64::MAX)?;
    let after = idx.storage().stats().shared.reads;
    println!(
        "   lookup on purged runs triggered {} shared-storage block reads",
        after - before
    );

    idx.collect_garbage()?;
    println!("\nfinal stats: {:#?}", idx.stats().runs_per_level);
    println!("OK");
    Ok(())
}
