//! Multi-version time travel (§2.1, §7): Umzi is a multi-version index, so a
//! query at `queryTS` sees exactly the versions visible at that snapshot,
//! and the hidden columns (`beginTS`, `endTS`, `prevRID`) chain each
//! record's history across zones.
//!
//! Run with: `cargo run --release --example time_travel`

use std::sync::Arc;

use umzi::prelude::*;

fn row(device: i64, msg: i64, payload: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device),
        Datum::Int64(msg),
        Datum::Int64(20190326),
        Datum::Int64(payload),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(
        storage,
        Arc::new(iot_table()),
        EngineConfig {
            maintenance: None,
            ..EngineConfig::default()
        },
    )?;

    // Three generations of the same record, each groomed separately so each
    // gets a distinct beginTS; snapshots are taken between generations.
    let mut snapshots = Vec::new();
    for (gen, payload) in [(1, 100), (2, 200), (3, 300)] {
        engine.upsert(row(4, 1, payload))?;
        engine.groom_all()?;
        snapshots.push((gen, engine.read_ts()));
        println!(
            "generation {gen}: payload {payload} groomed at ts {}",
            engine.read_ts()
        );
    }

    // Evolve everything into the post-groomed zone: versions must survive.
    engine.quiesce()?;
    println!("\npipeline drained: data now lives in the post-groomed zone\n");

    for &(gen, ts) in &snapshots {
        let rec = engine
            .get(
                &[Datum::Int64(4)],
                &[Datum::Int64(1)],
                Freshness::Snapshot(ts),
            )?
            .expect("visible at snapshot");
        println!(
            "snapshot@gen{gen}: payload = {} (beginTS {})",
            rec.row[3],
            rec.begin_ts.unwrap()
        );
        assert_eq!(rec.row[3], Datum::Int64(gen * 100));
    }

    // A snapshot before the first version sees nothing.
    assert!(engine
        .get(
            &[Datum::Int64(4)],
            &[Datum::Int64(1)],
            Freshness::Snapshot(0)
        )?
        .is_none());
    println!("snapshot@0: (no record yet)");

    // Walk the prevRID chain from the newest version backwards (§2.1's
    // hidden columns, stitched by the post-groomer).
    let newest = engine
        .get(&[Datum::Int64(4)], &[Datum::Int64(1)], Freshness::Latest)?
        .expect("latest");
    let shard = &engine.shards()[engine.table().shard_of(&newest.row, engine.shards().len())];
    println!("\nversion chain via prevRID:");
    let mut cursor = newest.rid;
    while let Some(rid) = cursor {
        let (r, begin, end, prev) = shard.fetch_row(rid)?;
        let end_str = if end == umzi::wildfire::OPEN_END_TS {
            "open".to_owned()
        } else {
            format!("{end}")
        };
        println!(
            "  {rid}: payload {} [beginTS {begin}, endTS {end_str}]",
            r[3]
        );
        cursor = prev;
    }
    println!("OK");
    Ok(())
}
