//! Crash and recovery (§5.5, §6.1): all index runs live in shared storage;
//! after losing every local structure (memory + SSD tiers, run lists,
//! registries) the index is reconstructed from run headers and the manifest,
//! deleting merged leftovers and torn objects along the way.
//!
//! Run with: `cargo run --release --example crash_recovery`

use std::sync::Arc;

use umzi::prelude::*;

fn row(device: i64, msg: i64, payload: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device),
        Datum::Int64(msg),
        Datum::Int64(20190326),
        Datum::Int64(payload),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let storage = Arc::new(TieredStorage::in_memory());
    let table = Arc::new(iot_table());
    let config = EngineConfig {
        maintenance: None,
        ..EngineConfig::default()
    };

    // Build up state: several grooms, merges, one post-groom + evolve.
    let engine = WildfireEngine::create(Arc::clone(&storage), Arc::clone(&table), config.clone())?;
    for round in 0..5 {
        for device in 0..20 {
            engine.upsert(row(device, round, device * 100 + round))?;
        }
        engine.groom_all()?;
    }
    engine.post_groom_all()?;
    engine.evolve_all()?;
    // More grooms on top, so both zones hold runs at crash time.
    for device in 0..20 {
        engine.upsert(row(device, 99, device))?;
    }
    engine.groom_all()?;
    for shard in engine.shards() {
        shard.index().drain_merges()?;
        shard.index().collect_garbage()?;
    }

    let snapshot_ts = engine.read_ts();
    let before: Vec<_> = engine
        .shards()
        .iter()
        .map(|s| {
            let st = s.index().stats();
            (st.runs_per_zone.clone(), st.total_entries)
        })
        .collect();
    println!("before crash: per-shard (runs per zone, entries) = {before:?}");
    drop(engine);

    // ☠ Node crash: all local tiers and in-memory structures are gone.
    storage.simulate_crash();
    println!("simulated node crash (memory + SSD tiers cleared)\n");

    // Recovery: manifests + run headers in shared storage are enough.
    let engine = WildfireEngine::recover(Arc::clone(&storage), table, config)?;
    let after: Vec<_> = engine
        .shards()
        .iter()
        .map(|s| {
            let st = s.index().stats();
            (st.runs_per_zone.clone(), st.total_entries)
        })
        .collect();
    println!("after recovery: per-shard (runs per zone, entries) = {after:?}");
    assert_eq!(before, after, "index structure must survive the crash");

    // Every record is still visible at the pre-crash snapshot.
    for device in 0..20 {
        for msg in (0..5).chain([99]) {
            let rec = engine
                .get(
                    &[Datum::Int64(device)],
                    &[Datum::Int64(msg)],
                    Freshness::Snapshot(snapshot_ts),
                )?
                .unwrap_or_else(|| panic!("({device},{msg}) lost in crash"));
            let expect = if msg == 99 {
                device
            } else {
                device * 100 + msg
            };
            assert_eq!(rec.row[3], Datum::Int64(expect));
        }
    }
    println!("verified: all 120 keys readable at the pre-crash snapshot");

    // The recovered engine keeps ingesting without ID collisions.
    engine.upsert(row(0, 100, 7))?;
    engine.quiesce()?;
    assert!(engine
        .get(&[Datum::Int64(0)], &[Datum::Int64(100)], Freshness::Latest)?
        .is_some());
    println!("post-recovery ingestion works. OK");
    Ok(())
}
