//! Quick start: create an IoT table, ingest upserts, drive the
//! groom → post-groom → evolve pipeline, and query through the unified
//! multi-zone index.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use umzi::prelude::*;

fn row(device: i64, msg: i64, date: i64, payload: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device),
        Datum::Int64(msg),
        Datum::Int64(date),
        Datum::Int64(payload),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The storage hierarchy: in-memory shared storage (zero latency) is the
    // default for demos; see `TieredConfig::with_default_latencies` for a
    // realistic memory ≪ SSD ≪ shared setup.
    let storage = Arc::new(TieredStorage::in_memory());

    // The paper's running example: device is the sharding/equality column,
    // msg the sort column, date the analytics partition key.
    let engine = WildfireEngine::create(
        storage,
        Arc::new(iot_table()),
        EngineConfig {
            maintenance: None,
            ..EngineConfig::default()
        },
    )?;

    // Ingest a burst of sensor readings, including an update to (4, 1).
    println!("== ingesting 1000 readings from 10 devices");
    for msg in 0..100 {
        for device in 0..10 {
            engine.upsert(row(device, msg, 20190326 + msg % 3, device * 1000 + msg))?;
        }
    }
    engine.upsert(row(4, 1, 20190326, 999_999))?; // an upsert (same PK)

    // A freshest read sees the live zone before any grooming happened.
    let live = engine
        .get(&[Datum::Int64(4)], &[Datum::Int64(1)], Freshness::Freshest)?
        .expect("live row");
    println!(
        "freshest read before groom: payload = {} (live zone)",
        live.row[3]
    );

    // Drive the full pipeline synchronously (daemons do this in production;
    // see the iot_telemetry example).
    engine.quiesce()?;

    // Point lookup through the index: the update won.
    let rec = engine
        .get(&[Datum::Int64(4)], &[Datum::Int64(1)], Freshness::Latest)?
        .expect("indexed");
    println!(
        "indexed read after pipeline: payload = {} (rid = {})",
        rec.row[3],
        rec.rid.expect("indexed rows have RIDs")
    );
    assert_eq!(rec.row[3], Datum::Int64(999_999));

    // Range scan: all readings of device 7 with 10 ≤ msg ≤ 19.
    let scan = engine.scan_records(
        vec![Datum::Int64(7)],
        SortBound::Included(vec![Datum::Int64(10)]),
        SortBound::Included(vec![Datum::Int64(19)]),
        Freshness::Latest,
    )?;
    println!("range scan device=7, msg in [10, 19]: {} rows", scan.len());
    assert_eq!(scan.len(), 10);

    // Index-only scan (no record fetch) via the included payload column.
    let index_only = engine.scan_index(
        vec![Datum::Int64(7)],
        SortBound::Unbounded,
        SortBound::Unbounded,
        Freshness::Latest,
        ReconcileStrategy::PriorityQueue,
    )?;
    let payload_sum: i64 = index_only
        .iter()
        .map(|o| {
            o.included(engine.shards()[0].index().def()).unwrap()[0]
                .as_i64()
                .unwrap()
        })
        .sum();
    println!(
        "index-only scan device=7: {} entries, payload sum = {payload_sum}",
        index_only.len()
    );

    // Peek at the index structure.
    for shard in engine.shards() {
        let stats = shard.index().stats();
        println!(
            "shard {}: runs per zone = {:?}, entries = {}, merges = {}, evolves = {}",
            shard.shard_id(),
            stats.runs_per_zone,
            stats.total_entries,
            stats.merges,
            stats.evolves,
        );
    }
    println!("OK");
    Ok(())
}
