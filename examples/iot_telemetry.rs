//! The paper's motivating scenario (§1, §8.4): high-speed IoT ingestion with
//! concurrent real-time analytics, driven by the maintenance daemon —
//! groomer tick every 100 ms, post-groomer tick every 2 s, a worker pool
//! draining groom/merge/evolve/janitor jobs — while reader threads issue
//! batched point lookups.
//!
//! Run with: `cargo run --release --example iot_telemetry`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use umzi::prelude::*;
use umzi::wildfire::ShardConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let storage = Arc::new(TieredStorage::in_memory());
    let engine = WildfireEngine::create(
        storage,
        Arc::new(iot_table()),
        EngineConfig {
            n_shards: 2,
            shard: ShardConfig::default(),
            groom_interval: Duration::from_millis(100),
            post_groom_interval: Duration::from_secs(2),
            maintenance: Some(MaintenanceConfig::default()),
            ..EngineConfig::default()
        },
    )?;
    let daemons = engine.start_daemons();

    let run_secs = 6;
    let stop = Arc::new(AtomicBool::new(false));
    let ingested = Arc::new(AtomicU64::new(0));
    let looked_up = Arc::new(AtomicU64::new(0));
    let found = Arc::new(AtomicU64::new(0));

    // Writer: ~10k readings/s across 50 devices with the §8.4 update mix.
    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let ingested = Arc::clone(&ingested);
        std::thread::spawn(move || {
            let mut model = IotUpdateModel::new(0.10, 1000, 42);
            while !stop.load(Ordering::Relaxed) {
                let batch = model.next_cycle();
                let rows: Vec<Vec<Datum>> = batch
                    .iter()
                    .map(|&(k, _)| {
                        vec![
                            Datum::Int64((k % 50) as i64),           // device
                            Datum::Int64((k / 50) as i64),           // msg
                            Datum::Int64(20190326 + (k % 3) as i64), // date
                            Datum::Int64(k as i64),                  // payload
                        ]
                    })
                    .collect();
                let n = rows.len() as u64;
                engine.upsert_many(rows).expect("upsert");
                ingested.fetch_add(n, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };

    // Readers: continuous random point lookups at the latest snapshot.
    let mut readers = Vec::new();
    for r in 0..4u64 {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let looked_up = Arc::clone(&looked_up);
        let found = Arc::clone(&found);
        readers.push(std::thread::spawn(move || {
            let mut gen = KeyGen::new(KeyDist::Random, 5_000, 100 + r);
            let mut worst = Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                for k in gen.batch(100) {
                    let t0 = Instant::now();
                    let hit = engine
                        .get(
                            &[Datum::Int64((k % 50) as i64)],
                            &[Datum::Int64((k / 50) as i64)],
                            Freshness::Latest,
                        )
                        .expect("lookup");
                    worst = worst.max(t0.elapsed());
                    looked_up.fetch_add(1, Ordering::Relaxed);
                    if hit.is_some() {
                        found.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            worst
        }));
    }

    println!("running {run_secs}s of concurrent ingest + analytics …");
    for s in 1..=run_secs {
        std::thread::sleep(Duration::from_secs(1));
        let stats0 = engine.shards()[0].index().stats();
        println!(
            "t={s}s ingested={} lookups={} hit-rate={:.1}% shard0: runs/zone={:?} merges={} evolves={}",
            ingested.load(Ordering::Relaxed),
            looked_up.load(Ordering::Relaxed),
            100.0 * found.load(Ordering::Relaxed) as f64
                / looked_up.load(Ordering::Relaxed).max(1) as f64,
            stats0.runs_per_zone,
            stats0.merges,
            stats0.evolves,
        );
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer");
    let worst: Duration = readers
        .into_iter()
        .map(|r| r.join().expect("reader"))
        .max()
        .unwrap();
    daemons.shutdown();

    // Settle the pipeline and verify the unified view.
    engine.quiesce()?;
    let total: usize = (0..50)
        .map(|d| {
            engine
                .scan_index(
                    vec![Datum::Int64(d)],
                    SortBound::Unbounded,
                    SortBound::Unbounded,
                    Freshness::Latest,
                    ReconcileStrategy::PriorityQueue,
                )
                .expect("scan")
                .len()
        })
        .sum();
    println!(
        "done: {} records ingested, {} distinct keys visible, worst lookup {:?}",
        ingested.load(Ordering::Relaxed),
        total,
        worst
    );
    Ok(())
}
