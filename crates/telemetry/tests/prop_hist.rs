//! Property tests for the log-bucketed histogram.
//!
//! * **Quantile error bound**: for arbitrary sample sets and quantiles, the
//!   histogram's estimate must land in the same geometric bucket as the
//!   exact order statistic — i.e. within one bucket's relative error (a
//!   factor of two), the bound the bucket layout guarantees by construction.
//! * **Merge associativity**: bucket-wise addition means
//!   `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)` and `a ⊕ b = b ⊕ a` exactly, so sharded
//!   histograms can be folded in any order.

use proptest::prelude::*;
use umzi_telemetry::{bucket_index, Histogram, HistogramSnapshot};

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

/// Exact `q`-quantile under the same rank convention the histogram uses:
/// the sample of rank `ceil(q·n)` (1-based) in sorted order.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The estimate shares the exact order statistic's bucket for every
    /// quantile the subsystem reports, over samples spanning nanoseconds to
    /// minutes (and the degenerate 0/1 bucket).
    #[test]
    fn quantile_within_one_bucket_of_exact(
        mut samples in proptest::collection::vec(0u64..200_000_000_000, 1..400),
        qs_permille in proptest::collection::vec(0u32..1000, 1..8),
    ) {
        let snap = snapshot_of(&samples);
        samples.sort_unstable();
        let qs = qs_permille.into_iter().map(|p| f64::from(p) / 1000.0);
        for q in qs.chain([0.5, 0.9, 0.99, 0.999]) {
            let exact = exact_quantile(&samples, q);
            let est = snap.quantile(q);
            prop_assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "q={} est={} exact={}",
                q, est, exact
            );
        }
    }

    /// Sum and count survive the histogram round trip exactly.
    #[test]
    fn count_and_sum_are_exact(
        samples in proptest::collection::vec(0u64..1_000_000_000, 0..300),
    ) {
        let snap = snapshot_of(&samples);
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
    }

    /// Merging is associative and commutative, and merging equals recording
    /// everything into one histogram.
    #[test]
    fn merge_is_associative_and_lossless(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..120),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..120),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..120),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        // b ⊕ a = a ⊕ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Folding shards ≡ one histogram over the concatenation.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }
}
