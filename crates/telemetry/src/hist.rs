//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] spreads `u64` samples (nanoseconds, by convention) over
//! [`BUCKETS`] geometric buckets: bucket `i` covers `[2^i, 2^(i+1))` (bucket
//! 0 additionally absorbs 0). Recording is two relaxed atomic adds — no
//! locks, no allocation — so the hot read path can afford one per operation.
//! The geometric layout bounds quantile-estimation error by construction:
//! any estimate drawn from the bucket containing the true quantile is within
//! a factor of two (one bucket's relative error) of the exact order
//! statistic, which is plenty for p50/p99/p999 latency reporting and lets
//! two histograms merge by adding bucket counts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; covers the full `u64` range (bucket `i` holds values
/// whose highest set bit is `i`).
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// The half-open value range `[lo, hi)` of bucket `i` (bucket 0 also holds
/// zero).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < BUCKETS);
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
    (lo, hi)
}

/// A fixed-layout, mergeable, lock-free latency histogram.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy (individual buckets are read atomically;
    /// cross-bucket consistency is best-effort, fine for observability).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state: mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub counts: [u64; BUCKETS],
    /// Sum of all recorded samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean sample value; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum as f64 / n as f64)
    }

    /// Fold another snapshot into this one. Bucket-wise addition, so the
    /// operation is commutative and associative (saturating on overflow).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`): the midpoint of the bucket
    /// containing the rank-`ceil(q·n)` sample, hence within one bucket's
    /// relative error (a factor of two) of the exact order statistic.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return lo + (hi - lo) / 2;
            }
        }
        unreachable!("rank ≤ total count");
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }
    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi);
            assert_eq!(bucket_index(lo.max(1)), i);
            assert_eq!(bucket_index(hi - 1), i);
        }
    }

    #[test]
    fn record_and_query() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 1000, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.sum, 3106);
        // The median sample is 100 (rank 4 of 7); the estimate must share
        // its bucket.
        assert_eq!(bucket_index(s.p50()), bucket_index(100));
        assert_eq!(bucket_index(s.p999()), bucket_index(1000));
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1000);
        b.record(1000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum, 2010);
        assert_eq!(bucket_index(m.p99()), bucket_index(1000));
    }
}
