//! Exporters: Prometheus text exposition and JSON.
//!
//! There is deliberately no network server here — callers scrape the
//! rendered string and ship it however they like (HTTP handler, log line,
//! file artifact). Histograms are rendered in the Prometheus *summary*
//! convention (`{quantile="0.5"}` series plus `_sum`/`_count`) because the
//! geometric buckets already did the aggregation; JSON additionally carries
//! the non-empty buckets for offline analysis.

use crate::hist::{bucket_bounds, HistogramSnapshot, BUCKETS};
use crate::registry::MetricsSnapshot;
use crate::trace::TraceRecord;

/// Escape a Prometheus label *value*: backslash, double quote, and newline
/// must be backslash-escaped per the text exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            other => out.push(other),
        }
    }
    out
}

/// Split a metric name into its base and the inner label list, if any:
/// `foo{a="b"}` → `("foo", Some("a=\"b\""))`.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(i), true) => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Build one series name: `base` + optional suffix + merged label list.
fn series(base: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let inner = match (labels, extra) {
        (Some(l), Some(e)) => format!("{l},{e}"),
        (Some(l), None) => l.to_string(),
        (None, Some(e)) => e.to_string(),
        (None, None) => String::new(),
    };
    if inner.is_empty() {
        format!("{base}{suffix}")
    } else {
        format!("{base}{suffix}{{{inner}}}")
    }
}

/// Render a metrics snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let (base, labels) = split_name(name);
        out.push_str(&format!("{} {}\n", series(base, "", labels, None), v));
    }
    for (name, v) in &snap.gauges {
        let (base, labels) = split_name(name);
        out.push_str(&format!("{} {}\n", series(base, "", labels, None), v));
    }
    for (name, h) in &snap.histograms {
        let (base, labels) = split_name(name);
        for (q, label) in [
            (h.p50(), "0.5"),
            (h.p90(), "0.9"),
            (h.p99(), "0.99"),
            (h.p999(), "0.999"),
        ] {
            let extra = format!("quantile=\"{label}\"");
            out.push_str(&format!(
                "{} {}\n",
                series(base, "", labels, Some(&extra)),
                q
            ));
        }
        out.push_str(&format!(
            "{} {}\n",
            series(base, "_sum", labels, None),
            h.sum
        ));
        out.push_str(&format!(
            "{} {}\n",
            series(base, "_count", labels, None),
            h.count()
        ));
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = (0..BUCKETS)
        .filter(|&i| h.counts[i] > 0)
        .map(|i| format!("[{},{}]", bucket_bounds(i).0, h.counts[i]))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum,
        h.p50(),
        h.p90(),
        h.p99(),
        h.p999(),
        buckets.join(",")
    )
}

/// Render a metrics snapshot as a JSON object with `counters`, `gauges`,
/// and `histograms` maps (histograms keep quantiles plus non-empty buckets
/// as `[lower_bound, count]` pairs).
pub fn to_json(snap: &MetricsSnapshot) -> String {
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
        .collect();
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
        .collect();
    let hists: Vec<String> = snap
        .histograms
        .iter()
        .map(|(k, h)| format!("\"{}\":{}", escape_json(k), histogram_json(h)))
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

/// Render slow-query trace records as a JSON array (oldest first).
pub fn traces_to_json(records: &[TraceRecord]) -> String {
    let items: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"op\":\"{}\",\"total_nanos\":{},\"plan_nanos\":{},\"position_nanos\":{},\
                 \"merge_nanos\":{},\"blocks_read\":{},\"cache_hits\":{},\"bytes_decoded\":{},\
                 \"partitions\":{},\"retries\":{}}}",
                escape_json(r.op),
                r.total_nanos,
                r.plan_nanos,
                r.position_nanos,
                r.merge_nanos,
                r.blocks_read,
                r.cache_hits,
                r.bytes_decoded,
                r.partitions,
                r.retries
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // Composed: a label value with every special character survives the
        // exposition round trip as one line.
        let v = escape_label_value("x\"\\\ny");
        let r = Registry::new();
        r.counter(&format!("m{{k=\"{v}\"}}")).inc();
        let text = to_prometheus(&r.snapshot());
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("m{k=\"x\\\"\\\\\\ny\"} 1"));
    }

    #[test]
    fn prometheus_renders_all_kinds() {
        let r = Registry::new();
        r.counter("umzi_ops_total{op=\"get\"}").add(3);
        r.gauge("umzi_entries").set(42);
        let h = r.histogram("umzi_latency{op=\"get\"}");
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("umzi_ops_total{op=\"get\"} 3\n"));
        assert!(text.contains("umzi_entries 42\n"));
        assert!(text.contains("umzi_latency{op=\"get\",quantile=\"0.5\"}"));
        assert!(text.contains("umzi_latency_sum{op=\"get\"} 600\n"));
        assert!(text.contains("umzi_latency_count{op=\"get\"} 3\n"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let r = Registry::new();
        r.counter("c\"tricky").add(1);
        r.histogram("h").record(5);
        let json = to_json(&r.snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c\\\"tricky\":1"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"buckets\":[[4,1]]"));
    }
}
