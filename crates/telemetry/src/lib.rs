//! Unified telemetry for Umzi: a lock-free metrics registry with
//! log-bucketed latency histograms, per-query trace contexts, a slow-query
//! log, and Prometheus/JSON exporters.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost when disabled is one relaxed atomic load.** Every
//!    instrumentation site goes through [`Telemetry::start`], which answers
//!    `None` without reading the clock when telemetry is off; the
//!    `telemetry_overhead` bench group holds the *enabled* path within a few
//!    percent of disabled.
//! 2. **No locks while recording.** Handles ([`Histogram`], [`Counter`],
//!    [`Gauge`]) are resolved once at construction ([`OpMetrics`]) and are
//!    plain atomics; only registration and snapshotting lock.
//! 3. **No dependencies.** This crate sits below `umzi-storage` in the
//!    graph, so every layer (storage, core, wildfire) can record into the
//!    same handle without circular imports. The engine-level snapshot that
//!    folds the domain stats structs together lives upstream in
//!    `umzi-wildfire`.
//!
//! Metric naming: `umzi_<domain>_<quantity>_<unit>` with Prometheus-style
//! inline labels for the operation class, e.g.
//! `umzi_query_duration_nanos{op="point_lookup"}` and
//! `umzi_job_duration_nanos{kind="groom"}`.

mod export;
mod hist;
mod registry;
mod trace;

pub use export::{escape_json, escape_label_value, to_json, to_prometheus, traces_to_json};
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricsSnapshot, Registry};
pub use trace::{QueryTrace, SlowQueryLog, TraceRecord};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of daemon job kinds with a dedicated latency histogram
/// (groom / merge / evolve / retire_deprecated, in stats-reporting order).
pub const JOB_KINDS: usize = 4;

/// Labels of the per-job-kind histograms, in [`OpMetrics::jobs`] order.
pub const JOB_LABELS: [&str; JOB_KINDS] = ["groom", "merge", "evolve", "retire_deprecated"];

/// Tuning knobs for the telemetry subsystem, carried on `UmziConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch: when false, instrumentation sites skip clock reads and
    /// histogram records entirely.
    pub enabled: bool,
    /// Queries at least this slow land in the slow-query log.
    pub slow_query_threshold: Duration,
    /// Ring capacity of the slow-query log (newest records win).
    pub slow_query_log_len: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            slow_query_threshold: Duration::from_millis(100),
            slow_query_log_len: 128,
        }
    }
}

impl TelemetryConfig {
    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.slow_query_log_len > 1 << 20 {
            return Err(format!(
                "telemetry slow_query_log_len {} is absurd (cap is 2^20)",
                self.slow_query_log_len
            ));
        }
        Ok(())
    }
}

/// Pre-resolved histogram handles for every instrumented operation class.
/// Resolving by name on the hot path would take the registry lock; these are
/// looked up exactly once when the [`Telemetry`] handle is built.
#[derive(Debug)]
pub struct OpMetrics {
    /// Point-lookup latency (`umzi_query_duration_nanos{op="point_lookup"}`).
    pub point_lookup: Arc<Histogram>,
    /// Batched-lookup latency (per batch, not per key).
    pub batch_lookup: Arc<Histogram>,
    /// Range scans merged sequentially.
    pub range_scan_seq: Arc<Histogram>,
    /// Range scans that took the partitioned parallel-reconcile path.
    pub range_scan_partitioned: Arc<Histogram>,
    /// Ingest/upsert latency (per batch).
    pub ingest: Arc<Histogram>,
    /// Daemon job execution latency, indexed by [`JOB_LABELS`] order.
    pub jobs: [Arc<Histogram>; JOB_KINDS],
    /// One shared-storage block fetch inside `TieredStorage`.
    pub block_fetch: Arc<Histogram>,
    /// One batched readahead fetch (all ranges of the batch together).
    pub prefetch_batch: Arc<Histogram>,
    /// Blocks per readahead batch (a depth distribution, not a latency).
    pub readahead_depth: Arc<Histogram>,
    /// One manifest persist/load/gc round trip.
    pub manifest_io: Arc<Histogram>,
}

impl OpMetrics {
    fn new(registry: &Registry) -> Self {
        let q = |op: &str| registry.histogram(&format!("umzi_query_duration_nanos{{op=\"{op}\"}}"));
        Self {
            point_lookup: q("point_lookup"),
            batch_lookup: q("batch_lookup"),
            range_scan_seq: q("range_scan_seq"),
            range_scan_partitioned: q("range_scan_partitioned"),
            ingest: registry.histogram("umzi_ingest_duration_nanos"),
            jobs: std::array::from_fn(|i| {
                registry.histogram(&format!(
                    "umzi_job_duration_nanos{{kind=\"{}\"}}",
                    JOB_LABELS[i]
                ))
            }),
            block_fetch: registry.histogram("umzi_storage_block_fetch_duration_nanos"),
            prefetch_batch: registry.histogram("umzi_storage_prefetch_batch_duration_nanos"),
            readahead_depth: registry.histogram("umzi_storage_readahead_depth_blocks"),
            manifest_io: registry.histogram("umzi_storage_manifest_io_duration_nanos"),
        }
    }
}

/// The telemetry handle one storage hierarchy (and everything stacked on it)
/// shares. Cheap to clone via `Arc`; reconfigurable in place so applying a
/// config never resets accumulated counters.
#[derive(Debug)]
pub struct Telemetry {
    enabled: AtomicBool,
    slow_threshold_nanos: AtomicU64,
    registry: Registry,
    ops: OpMetrics,
    slow: SlowQueryLog,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// An enabled handle with default thresholds.
    pub fn new() -> Self {
        Self::with_config(&TelemetryConfig::default())
    }

    /// A handle with instrumentation switched off (the A/B baseline for the
    /// `telemetry_overhead` bench; also the cheapest possible configuration).
    pub fn disabled() -> Self {
        Self::with_config(&TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        })
    }

    /// A handle from an explicit configuration.
    pub fn with_config(config: &TelemetryConfig) -> Self {
        let registry = Registry::new();
        let ops = OpMetrics::new(&registry);
        Self {
            enabled: AtomicBool::new(config.enabled),
            slow_threshold_nanos: AtomicU64::new(config.slow_query_threshold.as_nanos() as u64),
            registry,
            ops,
            slow: SlowQueryLog::new(config.slow_query_log_len),
        }
    }

    /// Apply a configuration to the live handle. Counters and histograms
    /// are preserved — only the switch, threshold, and ring capacity move —
    /// so re-applying the same config (engine create + per-shard index
    /// creates) is idempotent.
    pub fn configure(&self, config: &TelemetryConfig) {
        self.enabled.store(config.enabled, Ordering::Relaxed);
        self.slow_threshold_nanos.store(
            config.slow_query_threshold.as_nanos() as u64,
            Ordering::Relaxed,
        );
        self.slow.set_capacity(config.slow_query_log_len);
    }

    /// Whether instrumentation is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip the master switch.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Start timing an operation: `Some(now)` when enabled, `None` (no
    /// clock read) when disabled.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record the time since `start` into `hist`; returns the measured
    /// nanoseconds (0 when the timer was off).
    #[inline]
    pub fn record_since(&self, hist: &Histogram, start: Option<Instant>) -> u64 {
        match start {
            Some(t0) => {
                let nanos = t0.elapsed().as_nanos() as u64;
                hist.record(nanos);
                nanos
            }
            None => 0,
        }
    }

    /// The slow-query latency threshold in nanoseconds.
    #[inline]
    pub fn slow_threshold_nanos(&self) -> u64 {
        self.slow_threshold_nanos.load(Ordering::Relaxed)
    }

    /// Log `record` if it crossed the slow-query threshold.
    pub fn maybe_log_slow(&self, record: TraceRecord) {
        if record.total_nanos >= self.slow_threshold_nanos() {
            self.slow.push(record);
        }
    }

    /// The pre-resolved operation histograms.
    #[inline]
    pub fn ops(&self) -> &OpMetrics {
        &self.ops
    }

    /// The underlying registry (for layer-specific ad-hoc metrics).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Oldest-first copy of the slow-query log.
    pub fn slow_queries(&self) -> Vec<TraceRecord> {
        self.slow.snapshot()
    }

    /// Records evicted from the slow-query ring so far.
    pub fn slow_queries_evicted(&self) -> u64 {
        self.slow.evicted()
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_record(nanos: u64) -> TraceRecord {
        let mut t = QueryTrace::begin("range_scan_seq");
        t.blocks_read = 7;
        let mut r = t.finish();
        r.total_nanos = nanos;
        r
    }

    #[test]
    fn disabled_handle_skips_clock_and_records_nothing() {
        let t = Telemetry::disabled();
        assert!(t.start().is_none());
        assert_eq!(t.record_since(&t.ops().point_lookup, None), 0);
        assert_eq!(t.ops().point_lookup.count(), 0);
    }

    #[test]
    fn enabled_handle_records_latency() {
        let t = Telemetry::new();
        let t0 = t.start();
        assert!(t0.is_some());
        let nanos = t.record_since(&t.ops().point_lookup, t0);
        assert!(nanos > 0);
        assert_eq!(t.ops().point_lookup.count(), 1);
        assert!(t.snapshot().histograms.len() >= 9, "ops pre-registered");
    }

    #[test]
    fn slow_query_threshold_gates_the_log() {
        let t = Telemetry::with_config(&TelemetryConfig {
            enabled: true,
            slow_query_threshold: Duration::from_nanos(1000),
            slow_query_log_len: 8,
        });
        t.maybe_log_slow(slow_record(999));
        assert!(t.slow_queries().is_empty());
        t.maybe_log_slow(slow_record(1000));
        assert_eq!(t.slow_queries().len(), 1);
        assert_eq!(t.slow_queries()[0].blocks_read, 7);
    }

    #[test]
    fn configure_preserves_history() {
        let t = Telemetry::new();
        t.ops().ingest.record(42);
        t.configure(&TelemetryConfig {
            enabled: false,
            slow_query_threshold: Duration::from_millis(5),
            slow_query_log_len: 4,
        });
        assert!(!t.is_enabled());
        assert_eq!(t.ops().ingest.count(), 1, "history survives reconfigure");
        assert_eq!(t.slow_threshold_nanos(), 5_000_000);
    }

    #[test]
    fn config_validation() {
        assert!(TelemetryConfig::default().validate().is_ok());
        assert!(TelemetryConfig {
            slow_query_log_len: (1 << 20) + 1,
            ..TelemetryConfig::default()
        }
        .validate()
        .is_err());
    }
}
