//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name interning) takes a lock; the returned handles are
//! plain `Arc`s over atomics, so the *recording* hot path is lock-free.
//! Callers resolve their handles once at construction and never look a
//! metric up by name per operation.
//!
//! Metric names follow the Prometheus convention and may carry a label set
//! inline: `umzi_query_duration_nanos{op="point_lookup"}`. The registry
//! treats names as opaque strings; the exporters split base name and labels
//! at render time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Registry of named metrics. Cheap to snapshot, lock-free to record into.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// An owned copy of a registry's state, extendable with derived values
/// before export (the engine folds its domain stats structs in as gauges).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name at capture.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name at capture.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` pairs, sorted by name at capture.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Append a derived gauge (not range-checked against existing names).
    pub fn push_gauge(&mut self, name: impl Into<String>, value: i64) {
        self.gauges.push((name.into(), value));
    }

    /// Append a derived counter value.
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_interned_by_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.gauge("g").set(-7);
        r.histogram("h").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("c".to_string(), 5)]);
        assert_eq!(s.gauges, vec![("g".to_string(), -7)]);
        assert_eq!(s.histogram("h").unwrap().count(), 1);
        assert!(s.histogram("nope").is_none());
    }
}
