//! Per-query trace contexts and the slow-query log.
//!
//! A [`QueryTrace`] is a plain mutable struct owned by the querying thread —
//! the read path fills in phase timings and storage-counter deltas as it
//! goes, then [`QueryTrace::finish`] seals it into a [`TraceRecord`]. The
//! deltas are read from shared atomic counters, so under concurrent queries
//! they attribute *approximately*: a trace may absorb a neighbour's block
//! fetch. That is the documented trade-off for keeping the read path free of
//! per-query plumbing through every storage layer.
//!
//! Records whose total latency crosses the configured threshold land in the
//! ring-buffered [`SlowQueryLog`]; the newest `capacity` records survive.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A finished query trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Operation class (`point_lookup`, `range_scan_seq`, …).
    pub op: &'static str,
    /// End-to-end latency.
    pub total_nanos: u64,
    /// Planning: bound encoding, candidate-run selection, synopsis pruning.
    pub plan_nanos: u64,
    /// Iterator positioning (fence search, first block fetch per run).
    pub position_nanos: u64,
    /// K-way merge / reconcile.
    pub merge_nanos: u64,
    /// Chunk reads through the tier hierarchy (any tier).
    pub blocks_read: u64,
    /// Decoded-block cache hits.
    pub cache_hits: u64,
    /// Bytes of blocks decoded (parsed) on behalf of this query.
    pub bytes_decoded: u64,
    /// Scan partitions executed (0 = sequential merge).
    pub partitions: u64,
    /// Shared-storage retries absorbed.
    pub retries: u64,
}

/// An in-flight query trace. Thread-local by construction: the query layer
/// creates one per instrumented query and mutates it without synchronization.
#[derive(Debug)]
pub struct QueryTrace {
    /// Operation class; may be refined before `finish` (seq vs partitioned).
    pub op: &'static str,
    start: Instant,
    /// See [`TraceRecord::plan_nanos`].
    pub plan_nanos: u64,
    /// See [`TraceRecord::position_nanos`].
    pub position_nanos: u64,
    /// See [`TraceRecord::merge_nanos`].
    pub merge_nanos: u64,
    /// See [`TraceRecord::blocks_read`].
    pub blocks_read: u64,
    /// See [`TraceRecord::cache_hits`].
    pub cache_hits: u64,
    /// See [`TraceRecord::bytes_decoded`].
    pub bytes_decoded: u64,
    /// See [`TraceRecord::partitions`].
    pub partitions: u64,
    /// See [`TraceRecord::retries`].
    pub retries: u64,
}

impl QueryTrace {
    /// Start a trace now.
    pub fn begin(op: &'static str) -> Self {
        Self {
            op,
            start: Instant::now(),
            plan_nanos: 0,
            position_nanos: 0,
            merge_nanos: 0,
            blocks_read: 0,
            cache_hits: 0,
            bytes_decoded: 0,
            partitions: 0,
            retries: 0,
        }
    }

    /// Nanoseconds since the trace began.
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Seal the trace with its end-to-end latency.
    pub fn finish(self) -> TraceRecord {
        TraceRecord {
            op: self.op,
            total_nanos: self.elapsed_nanos(),
            plan_nanos: self.plan_nanos,
            position_nanos: self.position_nanos,
            merge_nanos: self.merge_nanos,
            blocks_read: self.blocks_read,
            cache_hits: self.cache_hits,
            bytes_decoded: self.bytes_decoded,
            partitions: self.partitions,
            retries: self.retries,
        }
    }
}

/// Ring buffer of the most recent slow queries.
#[derive(Debug)]
pub struct SlowQueryLog {
    ring: Mutex<VecDeque<TraceRecord>>,
    capacity: AtomicUsize,
    evicted: AtomicU64,
}

impl SlowQueryLog {
    /// A log keeping the newest `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: AtomicUsize::new(capacity),
            evicted: AtomicU64::new(0),
        }
    }

    /// Append a record, evicting the oldest once full. A zero-capacity log
    /// drops everything.
    pub fn push(&self, record: TraceRecord) {
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap == 0 {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ring = self.ring.lock().expect("slow-query log poisoned");
        while ring.len() >= cap {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Change the capacity in place; excess oldest records are evicted.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("slow-query log poisoned");
        while ring.len() > capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Oldest-first copy of the retained records.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.ring
            .lock()
            .expect("slow-query log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Records dropped to make room (ring evictions).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: &'static str, total: u64) -> TraceRecord {
        TraceRecord {
            op,
            total_nanos: total,
            plan_nanos: 0,
            position_nanos: 0,
            merge_nanos: 0,
            blocks_read: 0,
            cache_hits: 0,
            bytes_decoded: 0,
            partitions: 0,
            retries: 0,
        }
    }

    #[test]
    fn ring_keeps_newest_records() {
        let log = SlowQueryLog::new(3);
        for i in 0..5 {
            log.push(rec("scan", i));
        }
        let snap = log.snapshot();
        assert_eq!(
            snap.iter().map(|r| r.total_nanos).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest two evicted, newest three kept in order"
        );
        assert_eq!(log.evicted(), 2);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let log = SlowQueryLog::new(4);
        for i in 0..4 {
            log.push(rec("q", i));
        }
        log.set_capacity(2);
        assert_eq!(
            log.snapshot()
                .iter()
                .map(|r| r.total_nanos)
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        // The shrunk capacity also bounds future pushes.
        log.push(rec("q", 9));
        assert_eq!(log.snapshot().len(), 2);
    }

    #[test]
    fn zero_capacity_log_is_inert() {
        let log = SlowQueryLog::new(0);
        log.push(rec("q", 1));
        assert!(log.snapshot().is_empty());
        assert_eq!(log.evicted(), 1);
    }

    #[test]
    fn trace_finish_seals_fields() {
        let mut t = QueryTrace::begin("range_scan_seq");
        t.plan_nanos = 10;
        t.partitions = 4;
        t.op = "range_scan_partitioned";
        let r = t.finish();
        assert_eq!(r.op, "range_scan_partitioned");
        assert_eq!(r.plan_nanos, 10);
        assert_eq!(r.partitions, 4);
    }
}
