//! Minimal `rand` 0.9 API shim: [`rngs::StdRng`], [`SeedableRng`] and the
//! [`Rng`] extension trait with `random_range` over integer and `f64`
//! ranges.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic for a
//! given seed, which is all the workload generators and benchmarks rely on.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `random_range` can sample.
pub trait SampleRange<T> {
    /// Sample uniformly from the range. Panics if the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw which is irrelevant for workload generation.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $wide).wrapping_add(v as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as $wide).wrapping_sub(start as $wide) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}

impl_sample_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits → u in [0, 1); scale into the range.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A random boolean.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default seedable generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state (the xoshiro authors'
            // recommended seeding procedure).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_bounded() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let s: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let i: u8 = r.random_range(0u8..=255);
            let _ = i;
            let f: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _: u64 = r.random_range(5..5);
    }
}
