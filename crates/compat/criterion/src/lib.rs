//! Minimal `criterion` API shim.
//!
//! Benchmarks compile and run under `cargo bench` (with `harness = false`
//! bench targets) and print mean wall-clock time per iteration plus
//! throughput when declared. No statistical analysis, HTML reports, or
//! baseline comparisons — this is a smoke-bench harness for an offline
//! build environment; swap in the real crate for rigorous measurement.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_bench(&id.to_string(), self.default_sample_size, None, f);
    }
}

/// Declared work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this shim: every
/// iteration gets a fresh setup, i.e. `PerIteration` semantics).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// A `group/function/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Timing hook passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` with a fresh untimed `setup` product per run.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{label:<60} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    eprintln!("{label:<60} mean {mean:>12.3?}  min {min:>12.3?}{rate}");
}

/// Group benchmark functions into one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::new("f", 1), &1u64, |b, &_x| {
            b.iter(|| runs += 1)
        });
        g.finish();
        assert_eq!(runs, 4, "one warm-up + three samples");
    }

    #[test]
    fn iter_batched_fresh_input() {
        let mut c = Criterion::default();
        let mut n = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    n += 1;
                    n
                },
                |v| v * 2,
                BatchSize::PerIteration,
            )
        });
        assert_eq!(n, 11, "one warm-up + ten samples, fresh setup each");
    }
}
