//! Minimal `proptest` API shim: deterministic randomized property testing.
//!
//! Supports the subset the Umzi test-suite uses — `proptest!` with
//! `ProptestConfig`, `any::<T>()`, integer range strategies, tuple and `vec`
//! composition, `prop_map`, `Just`, `prop_oneof!` (weighted), and simple
//! `.{a,b}` string patterns. Failing cases are *not* shrunk: the generator
//! is seeded from the test's module path, so every failure reproduces
//! exactly by re-running the test.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

pub use strategy::{any, Just, Strategy, Union};

/// Per-proptest-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything property tests usually import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$strat, &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert inside a property (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the case when the assumption fails (this shim just returns from the
/// case body loop iteration by continuing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}
