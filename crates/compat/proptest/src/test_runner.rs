//! Deterministic RNG for property tests.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The generator handed to strategies. Seeded from the test name, so a
/// failing case reproduces by re-running the same test binary.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed deterministically from an arbitrary string (the test path).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `u64` below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
