//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A way of generating values of one type. Object-safe: `prop_map` is gated
/// on `Sized` so `Box<dyn Strategy<Value = V>>` works (used by
/// `prop_oneof!`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (API parity; rarely needed in this shim).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias towards structurally interesting values the way real
                // proptest does: extremes and small magnitudes show up often.
                match rng.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        loop {
            let v = match rng.below(6) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                _ => f64::from_bits(rng.next_u64()),
            };
            // Exclude NaN: its ordering is unspecified across the codec and
            // `Ord` impls the tests compare against.
            if !v.is_nan() {
                return v;
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps failures readable.
        (b' ' + rng.below(95) as u8) as char
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                if s as i128 == <$t>::MIN as i128 && e as i128 == <$t>::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                let span = (e as i128 - s as i128) as u64 + 1;
                (s as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// String "regex" strategy: supports the `.{a,b}` patterns the tests use
/// (any printable string with a length in `[a, b]`); any other pattern
/// falls back to 0–16 printable characters.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (a, b) = body.split_once(',')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

/// Collection-size specification for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Weighted union over boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! total weight must be positive");
        Union { options, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum covered above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_bounded() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3i64..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let u = (0u8..=255).generate(&mut r);
            let _ = u;
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut r = rng();
        let s = vec((0i64..5, 1u64..3), 2..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.generate(&mut r);
            assert!((2..6).contains(&n));
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut r = rng();
        let s: &'static str = ".{0,24}";
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(v.chars().count() <= 24);
        }
    }

    #[test]
    fn union_respects_weights_loosely() {
        let mut r = rng();
        let u = crate::prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut ones = 0;
        for _ in 0..1000 {
            if u.generate(&mut r) == 1u8 {
                ones += 1;
            }
        }
        assert!(ones > 700, "weighted pick should dominate: {ones}");
    }

    #[test]
    fn f64_never_nan() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(!f64::arbitrary(&mut r).is_nan());
        }
    }
}
