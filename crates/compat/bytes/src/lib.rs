//! Minimal re-implementation of the `bytes` crate API surface Umzi uses.
//!
//! [`Bytes`] is an immutable, reference-counted byte buffer; [`Bytes::slice`]
//! is O(1) and shares the backing allocation, which is what makes zero-copy
//! entry views over cached data blocks cheap.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static byte slice (copies into an `Arc`; the real crate keeps
    /// a pointer, but the observable behavior is identical).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view sharing the backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end,
            "slice index starts at {begin} but ends at {end}"
        );
        assert!(end <= len, "range end out of bounds: {end} <= {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == &other[..]
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.slice(..).len(), 5);
        assert!(b.slice(2..2).is_empty());
    }

    #[test]
    fn eq_ord_hash_behave_like_slices() {
        let a = Bytes::from(vec![1u8, 2]);
        let b = Bytes::from(vec![1u8, 2, 0]).slice(0..2);
        assert_eq!(a, b);
        assert!(a[..] < [1u8, 3][..]);
        assert_eq!(a, vec![1u8, 2]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
