//! Per-op-class circuit breaker for the shared storage tier.
//!
//! When shared storage goes sick, every operation burns its full
//! retry-with-backoff budget before failing — under load that multiplies a
//! single slow dependency into thousands of queued, sleeping queries. The
//! breaker watches *retry exhaustions* (and hard `Unavailable` results) per
//! [`OpClass`] in a rolling window; past a threshold it **opens** and fails
//! subsequent operations of that class immediately with a typed
//! [`StorageError::Unavailable`], letting callers degrade (serve from local
//! tiers, shed the scan) instead of piling up. After a cooldown the breaker
//! goes **half-open** and admits a bounded number of probe operations; one
//! success closes it, one failure re-opens it.
//!
//! Classes are independent: a sick manifest prefix does not stop block
//! fetches, and GC delete failures never block the read path.
//!
//! The breaker is **disabled by default** (`failure_threshold == 0`): the
//! fault-injection and crash-recovery suites depend on exhausted retries
//! surfacing as their original errors. Deployments opt in via
//! [`TieredConfig::breaker`](crate::TieredConfig).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::context::OpClass;
use crate::error::StorageError;

/// Circuit-breaker tuning. `failure_threshold == 0` disables the breaker
/// entirely (every `admit` succeeds, nothing is recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Failures (retry exhaustions / hard unavailability) within `window`
    /// that trip the breaker open. `0` = disabled.
    pub failure_threshold: u32,
    /// Rolling window over which failures are counted.
    pub window: Duration,
    /// How long an open breaker rejects before allowing half-open probes.
    pub cooldown: Duration,
    /// Concurrent probe operations admitted while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 0,
            window: Duration::from_secs(10),
            cooldown: Duration::from_millis(500),
            half_open_probes: 1,
        }
    }
}

impl BreakerConfig {
    /// An enabled config with the given threshold and the default window,
    /// cooldown, and probe budget.
    pub fn enabled(failure_threshold: u32) -> Self {
        BreakerConfig {
            failure_threshold,
            ..Self::default()
        }
    }
}

/// Breaker state of one op class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all operations admitted.
    Closed,
    /// Tripped: operations fail fast with `Unavailable`.
    Open,
    /// Cooldown elapsed: a bounded number of probes admitted; one success
    /// closes, one failure re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric encoding (exported as a telemetry gauge).
    pub fn as_u8(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Metric-label spelling.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug, Default)]
struct ClassInner {
    /// Timestamps of failures inside the rolling window (pruned lazily).
    failures: VecDeque<Instant>,
    /// When the breaker last opened.
    opened_at: Option<Instant>,
    /// Probes admitted and not yet resolved while half-open.
    probes_inflight: u32,
}

#[derive(Debug, Default)]
struct ClassBreaker {
    /// `BreakerState` encoding; the closed-state fast path is one relaxed
    /// load with no lock.
    state: AtomicU8,
    transitions: AtomicU64,
    rejections: AtomicU64,
    inner: Mutex<ClassInner>,
}

/// Independent per-[`OpClass`] circuit breakers over shared storage.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    classes: [ClassBreaker; OpClass::COUNT],
}

impl CircuitBreaker {
    /// Build a breaker set from config.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            classes: Default::default(),
        }
    }

    /// Whether the breaker participates at all.
    pub fn is_enabled(&self) -> bool {
        self.cfg.failure_threshold > 0
    }

    /// Admit or reject an operation of `class`. Rejection is the typed
    /// fail-fast path: `Unavailable` without touching shared storage.
    pub fn admit(&self, class: OpClass) -> Result<(), StorageError> {
        if !self.is_enabled() {
            return Ok(());
        }
        let cb = &self.classes[class.index()];
        match BreakerState::from_u8(cb.state.load(Ordering::Acquire)) {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                let mut inner = cb.inner.lock().unwrap();
                // Re-check under the lock: another thread may have moved us.
                match BreakerState::from_u8(cb.state.load(Ordering::Acquire)) {
                    BreakerState::Closed => Ok(()),
                    BreakerState::HalfOpen => self.try_probe(cb, &mut inner, class),
                    BreakerState::Open => {
                        let elapsed = inner
                            .opened_at
                            .map(|t| t.elapsed())
                            .unwrap_or(Duration::MAX);
                        if elapsed >= self.cfg.cooldown {
                            self.transition(cb, BreakerState::HalfOpen);
                            inner.probes_inflight = 0;
                            self.try_probe(cb, &mut inner, class)
                        } else {
                            cb.rejections.fetch_add(1, Ordering::Relaxed);
                            Err(Self::rejection(class))
                        }
                    }
                }
            }
            BreakerState::HalfOpen => {
                let mut inner = cb.inner.lock().unwrap();
                if BreakerState::from_u8(cb.state.load(Ordering::Acquire)) == BreakerState::Closed {
                    return Ok(());
                }
                self.try_probe(cb, &mut inner, class)
            }
        }
    }

    fn try_probe(
        &self,
        cb: &ClassBreaker,
        inner: &mut ClassInner,
        class: OpClass,
    ) -> Result<(), StorageError> {
        if inner.probes_inflight < self.cfg.half_open_probes {
            inner.probes_inflight += 1;
            Ok(())
        } else {
            cb.rejections.fetch_add(1, Ordering::Relaxed);
            Err(Self::rejection(class))
        }
    }

    fn rejection(class: OpClass) -> StorageError {
        StorageError::Unavailable {
            reason: format!("circuit breaker open for {class} operations"),
        }
    }

    fn transition(&self, cb: &ClassBreaker, to: BreakerState) {
        cb.state.store(to.as_u8(), Ordering::Release);
        cb.transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a healthy completion. In half-open state one success closes
    /// the breaker and clears the failure window.
    pub fn record_success(&self, class: OpClass) {
        if !self.is_enabled() {
            return;
        }
        let cb = &self.classes[class.index()];
        if BreakerState::from_u8(cb.state.load(Ordering::Acquire)) == BreakerState::Closed {
            return;
        }
        let mut inner = cb.inner.lock().unwrap();
        match BreakerState::from_u8(cb.state.load(Ordering::Acquire)) {
            BreakerState::HalfOpen => {
                inner.failures.clear();
                inner.probes_inflight = 0;
                inner.opened_at = None;
                self.transition(cb, BreakerState::Closed);
            }
            // A straggler admitted before the breaker opened — ignore.
            BreakerState::Open | BreakerState::Closed => {}
        }
    }

    /// Record a breaker-relevant failure (retry exhaustion or hard
    /// `Unavailable`). May trip the breaker open.
    pub fn record_failure(&self, class: OpClass) {
        if !self.is_enabled() {
            return;
        }
        let cb = &self.classes[class.index()];
        let mut inner = cb.inner.lock().unwrap();
        let now = Instant::now();
        while let Some(front) = inner.failures.front() {
            if now.duration_since(*front) > self.cfg.window {
                inner.failures.pop_front();
            } else {
                break;
            }
        }
        inner.failures.push_back(now);
        match BreakerState::from_u8(cb.state.load(Ordering::Acquire)) {
            BreakerState::Closed => {
                if inner.failures.len() >= self.cfg.failure_threshold as usize {
                    inner.opened_at = Some(now);
                    self.transition(cb, BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: back to open, restart the cooldown.
                inner.probes_inflight = inner.probes_inflight.saturating_sub(1);
                inner.opened_at = Some(now);
                self.transition(cb, BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }

    /// Release an admitted slot with no health verdict (the *query* gave up
    /// — deadline or cancellation — which says nothing about the store).
    pub fn record_neutral(&self, class: OpClass) {
        if !self.is_enabled() {
            return;
        }
        let cb = &self.classes[class.index()];
        if BreakerState::from_u8(cb.state.load(Ordering::Acquire)) == BreakerState::Closed {
            return;
        }
        let mut inner = cb.inner.lock().unwrap();
        inner.probes_inflight = inner.probes_inflight.saturating_sub(1);
    }

    /// Current state of one class.
    pub fn state(&self, class: OpClass) -> BreakerState {
        BreakerState::from_u8(self.classes[class.index()].state.load(Ordering::Acquire))
    }

    /// All class states, encoded per [`BreakerState::as_u8`], in
    /// [`OpClass::ALL`] order.
    pub fn states(&self) -> [u8; OpClass::COUNT] {
        let mut out = [0u8; OpClass::COUNT];
        for (i, cb) in self.classes.iter().enumerate() {
            out[i] = cb.state.load(Ordering::Acquire);
        }
        out
    }

    /// Cumulative state transitions per class, in [`OpClass::ALL`] order.
    pub fn transitions(&self) -> [u64; OpClass::COUNT] {
        let mut out = [0u64; OpClass::COUNT];
        for (i, cb) in self.classes.iter().enumerate() {
            out[i] = cb.transitions.load(Ordering::Relaxed);
        }
        out
    }

    /// Cumulative fail-fast rejections per class, in [`OpClass::ALL`] order.
    pub fn rejections(&self) -> [u64; OpClass::COUNT] {
        let mut out = [0u64; OpClass::COUNT];
        for (i, cb) in self.classes.iter().enumerate() {
            out[i] = cb.rejections.load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg(threshold: u32) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            window: Duration::from_secs(10),
            cooldown: Duration::from_millis(10),
            half_open_probes: 1,
        }
    }

    #[test]
    fn disabled_breaker_never_rejects() {
        let b = CircuitBreaker::new(BreakerConfig::default());
        assert!(!b.is_enabled());
        for _ in 0..100 {
            b.record_failure(OpClass::BlockFetch);
            b.admit(OpClass::BlockFetch).unwrap();
        }
        assert_eq!(b.state(OpClass::BlockFetch), BreakerState::Closed);
    }

    #[test]
    fn opens_after_threshold_and_rejects_typed() {
        let b = CircuitBreaker::new(fast_cfg(3));
        for _ in 0..2 {
            b.record_failure(OpClass::BlockFetch);
            b.admit(OpClass::BlockFetch).unwrap();
        }
        b.record_failure(OpClass::BlockFetch);
        assert_eq!(b.state(OpClass::BlockFetch), BreakerState::Open);
        match b.admit(OpClass::BlockFetch) {
            Err(StorageError::Unavailable { reason }) => {
                assert!(reason.contains("block_fetch"), "{reason}");
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        // Other classes unaffected.
        b.admit(OpClass::Manifest).unwrap();
        assert_eq!(b.state(OpClass::Manifest), BreakerState::Closed);
        assert_eq!(b.rejections()[OpClass::BlockFetch.index()], 1);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = CircuitBreaker::new(fast_cfg(1));
        b.record_failure(OpClass::Manifest);
        assert_eq!(b.state(OpClass::Manifest), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        // Cooldown elapsed: first admit becomes the probe…
        b.admit(OpClass::Manifest).unwrap();
        assert_eq!(b.state(OpClass::Manifest), BreakerState::HalfOpen);
        // …and the probe budget rejects a second concurrent operation.
        assert!(b.admit(OpClass::Manifest).is_err());
        b.record_success(OpClass::Manifest);
        assert_eq!(b.state(OpClass::Manifest), BreakerState::Closed);
        b.admit(OpClass::Manifest).unwrap();
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = CircuitBreaker::new(fast_cfg(1));
        b.record_failure(OpClass::Gc);
        std::thread::sleep(Duration::from_millis(15));
        b.admit(OpClass::Gc).unwrap();
        assert_eq!(b.state(OpClass::Gc), BreakerState::HalfOpen);
        b.record_failure(OpClass::Gc);
        assert_eq!(b.state(OpClass::Gc), BreakerState::Open);
        assert!(b.admit(OpClass::Gc).is_err());
    }

    #[test]
    fn neutral_releases_probe_slot() {
        let b = CircuitBreaker::new(fast_cfg(1));
        b.record_failure(OpClass::Delta);
        std::thread::sleep(Duration::from_millis(15));
        b.admit(OpClass::Delta).unwrap();
        assert!(b.admit(OpClass::Delta).is_err());
        // Query gave up (deadline) — slot released, still half-open.
        b.record_neutral(OpClass::Delta);
        assert_eq!(b.state(OpClass::Delta), BreakerState::HalfOpen);
        b.admit(OpClass::Delta).unwrap();
    }
}
