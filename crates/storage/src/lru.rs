//! A slab-backed LRU map used by the cache tiers.
//!
//! Implemented in-repo (no external LRU crates in the dependency budget):
//! a `HashMap` from key to slot index plus an intrusive doubly-linked list
//! threaded through a slab of entries. All operations are O(1).

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// An LRU-ordered map. Most-recently-used entries are at the front;
/// [`LruMap::pop_lru`] removes the least-recently-used entry.
#[derive(Debug)]
pub struct LruMap<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> Default for LruMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Insert or replace; the entry becomes most-recently-used.
    /// Returns the previous value if the key was present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&idx) = self.map.get(&key) {
            self.detach(idx);
            self.attach_front(idx);
            let slot = self.slots[idx].as_mut().expect("live slot");
            return Some(std::mem::replace(&mut slot.value, value));
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
            None => {
                self.slots.push(Some(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                }));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        None
    }

    /// Get a reference and mark the entry most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(&self.slots[idx].as_ref().expect("live slot").value)
    }

    /// Get a reference without disturbing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        Some(&self.slots[idx].as_ref().expect("live slot").value)
    }

    /// Whether the key is present (does not disturb recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Remove a specific key.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        let slot = self.slots[idx].take().expect("live slot");
        self.free.push(idx);
        Some(slot.value)
    }

    /// Borrow the least-recently-used entry without disturbing recency.
    pub fn peek_lru(&self) -> Option<(&K, &V)> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.slots[self.tail].as_ref().expect("live slot");
        Some((&slot.key, &slot.value))
    }

    /// Remove and return the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.detach(idx);
        let slot = self.slots[idx].take().expect("live slot");
        self.map.remove(&slot.key);
        self.free.push(idx);
        Some((slot.key, slot.value))
    }

    /// Iterate over entries in unspecified order (no recency effect).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|s| (&s.key, &s.value)))
    }

    /// Iterate in eviction order, least-recently-used first (no recency
    /// effect).
    pub fn iter_lru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut idx = self.tail;
        std::iter::from_fn(move || {
            if idx == NIL {
                return None;
            }
            let slot = self.slots[idx].as_ref().expect("live slot");
            idx = slot.prev;
            Some((&slot.key, &slot.value))
        })
    }

    /// Remove all entries for which `pred` returns true, returning them.
    pub fn drain_filter(&mut self, mut pred: impl FnMut(&K, &V) -> bool) -> Vec<(K, V)> {
        let keys: Vec<K> = self
            .slots
            .iter()
            .filter_map(|s| s.as_ref())
            .filter(|s| pred(&s.key, &s.value))
            .map(|s| s.key.clone())
            .collect();
        keys.into_iter()
            .filter_map(|k| {
                let v = self.remove(&k)?;
                Some((k, v))
            })
            .collect()
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = {
            let slot = self.slots[idx].as_ref().expect("live slot");
            (slot.prev, slot.next)
        };
        if prev != NIL {
            self.slots[prev].as_mut().expect("live slot").next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].as_mut().expect("live slot").prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let slot = self.slots[idx].as_mut().expect("live slot");
        slot.prev = NIL;
        slot.next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let slot = self.slots[idx].as_mut().expect("live slot");
            slot.prev = NIL;
            slot.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head].as_mut().expect("live slot").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut lru = LruMap::new();
        assert!(lru.is_empty());
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.remove(&"a"), Some(1));
        assert_eq!(lru.get(&"a"), None);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut lru = LruMap::new();
        lru.insert(1, ());
        lru.insert(2, ());
        lru.insert(3, ());
        // Touch 1 so 2 becomes LRU.
        lru.get(&1);
        assert_eq!(lru.peek_lru().map(|(k, _)| *k), Some(2));
        let order: Vec<i32> = lru.iter_lru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![2, 3, 1], "iter_lru walks LRU → MRU");
        assert_eq!(lru.pop_lru().map(|(k, _)| k), Some(2));
        assert_eq!(lru.pop_lru().map(|(k, _)| k), Some(3));
        assert_eq!(lru.pop_lru().map(|(k, _)| k), Some(1));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn insert_replaces_and_promotes() {
        let mut lru = LruMap::new();
        lru.insert("k", 1);
        lru.insert("x", 9);
        assert_eq!(lru.insert("k", 2), Some(1));
        // "x" is now LRU because "k" was refreshed.
        assert_eq!(lru.pop_lru().map(|(k, _)| k), Some("x"));
        assert_eq!(lru.peek(&"k"), Some(&2));
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut lru = LruMap::new();
        for i in 0..100 {
            lru.insert(i, i);
        }
        for i in 0..100 {
            assert_eq!(lru.remove(&i), Some(i));
        }
        // Slab slots must be reused, not grown.
        let before = lru.slots.len();
        for i in 100..200 {
            lru.insert(i, i);
        }
        assert_eq!(lru.slots.len(), before);
    }

    #[test]
    fn drain_filter_removes_matching() {
        let mut lru = LruMap::new();
        for i in 0..10 {
            lru.insert(i, i * 10);
        }
        let drained = lru.drain_filter(|k, _| k % 2 == 0);
        assert_eq!(drained.len(), 5);
        assert_eq!(lru.len(), 5);
        assert!(!lru.contains(&0));
        assert!(lru.contains(&1));
        // Remaining list is still well-formed.
        let mut n = 0;
        while lru.pop_lru().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn stress_against_model() {
        // Compare against a straightforward Vec-based model.
        use std::collections::VecDeque;
        let mut lru = LruMap::new();
        let mut model: VecDeque<u32> = VecDeque::new(); // front = MRU
        let ops: Vec<u32> = (0..1000)
            .map(|i| (i * 2_654_435_761u64 % 37) as u32)
            .collect();
        for (i, k) in ops.iter().enumerate() {
            match i % 3 {
                0 => {
                    lru.insert(*k, i);
                    model.retain(|x| x != k);
                    model.push_front(*k);
                }
                1 => {
                    let got = lru.get(k).is_some();
                    let have = model.contains(k);
                    assert_eq!(got, have);
                    if have {
                        model.retain(|x| x != k);
                        model.push_front(*k);
                    }
                }
                _ => {
                    let got = lru.pop_lru().map(|(k, _)| k);
                    let have = model.pop_back();
                    assert_eq!(got, have);
                }
            }
            assert_eq!(lru.len(), model.len());
        }
    }
}
