//! The shared-storage layer: an [`ObjectStore`] plus latency model and stats.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;

use crate::latency::LatencyModel;
use crate::object_store::ObjectStore;
use crate::stats::{SharedCounters, SharedStats};
use crate::Result;

/// Shared storage as seen by the rest of the system: durable, append-only,
/// and costly to reach. All index runs in persisted levels, groomed and
/// post-groomed blocks, and manifests live here.
#[derive(Clone)]
pub struct SharedStorage {
    store: Arc<dyn ObjectStore>,
    latency: LatencyModel,
    counters: Arc<SharedCounters>,
}

impl std::fmt::Debug for SharedStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStorage")
            .field("stats", &self.stats())
            .finish()
    }
}

impl SharedStorage {
    /// Wrap an object store with the given latency model.
    pub fn new(store: Arc<dyn ObjectStore>, latency: LatencyModel) -> Self {
        Self {
            store,
            latency,
            counters: Arc::new(SharedCounters::default()),
        }
    }

    /// An in-memory shared storage with zero latency (unit tests).
    pub fn in_memory() -> Self {
        Self::new(
            Arc::new(crate::object_store::InMemoryObjectStore::new()),
            LatencyModel::off(),
        )
    }

    /// Create an immutable object.
    pub fn put(&self, name: &str, data: Bytes) -> Result<()> {
        let n = data.len();
        self.store.put(name, data)?;
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_written
            .fetch_add(n as u64, Ordering::Relaxed);
        self.latency.apply(n);
        Ok(())
    }

    /// Read a whole object.
    pub fn get(&self, name: &str) -> Result<Bytes> {
        let data = self.store.get(name)?;
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.latency.apply(data.len());
        Ok(data)
    }

    /// Read a range of an object.
    pub fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes> {
        let data = self.store.get_range(name, offset, len)?;
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.latency.apply(data.len());
        Ok(data)
    }

    /// Read several ranges of one object as a single batched request.
    /// Counters record every constituent range, but the latency model is
    /// charged **once**, for the largest range in the batch: the whole point
    /// of batching is that the backend issues the reads concurrently, so the
    /// caller waits for the slowest read, not the sum.
    pub fn get_ranges(&self, name: &str, ranges: &[(u64, usize)]) -> Result<Vec<Bytes>> {
        let data = self.store.get_ranges(name, ranges)?;
        let total: u64 = data.iter().map(|d| d.len() as u64).sum();
        self.counters
            .reads
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.counters.bytes_read.fetch_add(total, Ordering::Relaxed);
        self.latency
            .apply(data.iter().map(|d| d.len()).max().unwrap_or(0));
        Ok(data)
    }

    /// Object size.
    pub fn len(&self, name: &str) -> Result<u64> {
        self.store.len(name)
    }

    /// Whether the object exists.
    pub fn exists(&self, name: &str) -> bool {
        self.store.exists(name)
    }

    /// List objects by prefix.
    pub fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.store.list(prefix)
    }

    /// Delete an object.
    pub fn delete(&self, name: &str) -> Result<()> {
        self.store.delete(name)?;
        self.counters.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> SharedStats {
        self.counters.snapshot(self.latency.charged())
    }

    /// The latency model (shared virtual clock).
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Fault-injection statistics of the backing store, if it injects any.
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.store.fault_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{LatencyMode, TierLatency};

    #[test]
    fn stats_track_operations() {
        let shared = SharedStorage::in_memory();
        shared.put("x", Bytes::from_static(b"abcdef")).unwrap();
        shared.get("x").unwrap();
        shared.get_range("x", 0, 3).unwrap();
        shared.delete("x").unwrap();
        let s = shared.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.bytes_written, 6);
        assert_eq!(s.bytes_read, 9);
    }

    #[test]
    fn batched_ranges_charge_latency_once() {
        let shared = SharedStorage::new(
            Arc::new(crate::object_store::InMemoryObjectStore::new()),
            LatencyModel::new(TierLatency::micros(500, 0), LatencyMode::Accounting),
        );
        shared.put("x", Bytes::from_static(b"abcdef")).unwrap();
        let before = shared.stats().charged_latency;
        let got = shared.get_ranges("x", &[(0, 2), (2, 2), (4, 2)]).unwrap();
        assert_eq!(got.len(), 3);
        // Three ranges, one latency charge — the batch models concurrent
        // issuance, so the caller pays for the slowest read only.
        assert_eq!(
            shared.stats().charged_latency - before,
            std::time::Duration::from_micros(500)
        );
        let s = shared.stats();
        assert_eq!(s.reads, 3);
        assert_eq!(s.bytes_read, 6);
    }

    #[test]
    fn latency_is_charged() {
        let shared = SharedStorage::new(
            Arc::new(crate::object_store::InMemoryObjectStore::new()),
            LatencyModel::new(TierLatency::micros(500, 0), LatencyMode::Accounting),
        );
        shared.put("x", Bytes::from_static(b"abc")).unwrap();
        shared.get("x").unwrap();
        assert_eq!(
            shared.stats().charged_latency,
            std::time::Duration::from_millis(1)
        );
    }
}
