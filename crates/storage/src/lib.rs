//! Multi-tier storage hierarchy for the Umzi index.
//!
//! Umzi targets distributed HTAP clusters with three storage tiers (§1, §6):
//!
//! 1. **Shared storage** (HDFS / GlusterFS / S3 / COS): durable and highly
//!    available, but append-only, block-oriented, and slow to reach over the
//!    network. Modeled by [`ObjectStore`] implementations wrapped in
//!    [`SharedStorage`], which adds an explicit [`LatencyModel`] and
//!    operation statistics.
//! 2. **Local SSD cache**: block-granularity cache of run data; also the
//!    *only* home of runs in non-persisted levels (§6.1).
//! 3. **Local memory cache**: the fastest tier.
//!
//! [`TieredStorage`] composes the three. Objects (index runs, groomed blocks,
//! manifests) are immutable once created — mirroring the append-only nature
//! of shared storage — and are read in fixed-size *chunks* that map 1:1 to
//! the run format's blocks. Reads walk memory → SSD → shared, promoting on
//! miss on a block-by-block basis, exactly as §7 describes (*"we first
//! transfer runs from shared storage to the SSD cache on a block-basis"*).
//!
//! Every tier records hit/miss/byte counters and accumulates a *virtual
//! latency charge* so benchmarks can report storage-hierarchy effects
//! deterministically; the latency model can also physically sleep to make
//! end-to-end experiments (Figures 12–15) behave like a real hierarchy.
//!
//! ```
//! use bytes::Bytes;
//! use umzi_storage::{Durability, TieredStorage};
//!
//! let ts = TieredStorage::in_memory();
//! // An immutable object with one pinned header chunk, written through.
//! let h = ts
//!     .create_object("runs/r1", Bytes::from(vec![7u8; 64 << 10]), Durability::Persisted, 1, true)
//!     .unwrap();
//! assert!(ts.is_fully_cached(h).unwrap());
//!
//! // Purge drops data chunks from the local tiers; the next read promotes
//! // them back from shared storage block-by-block (§7).
//! ts.purge_object(h).unwrap();
//! let block = ts.read_chunk(h, 3).unwrap();
//! assert_eq!(block.len(), ts.chunk_size());
//! assert!(ts.stats().shared.reads >= 1);
//! ```

pub mod block_cache;
pub mod breaker;
pub mod cache;
pub mod context;
pub mod error;
pub mod fault;
pub mod latency;
pub mod lru;
pub mod object_store;
pub mod shared;
mod sketch;
pub mod stats;
pub mod tiered;

pub use block_cache::{AccessPattern, CachePolicy, DecodedBlockCache, DecodedCacheConfig};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::CacheTier;
pub use context::{CancelToken, ContextGuard, OpClass, Priority, QueryContext};
pub use error::StorageError;
pub use fault::{FaultEvent, FaultInjectingStore, FaultOp, FaultPlan, FaultStats};
pub use latency::{LatencyMode, LatencyModel, TierLatency};
pub use object_store::{FsObjectStore, InMemoryObjectStore, ObjectStore};
pub use shared::SharedStorage;
pub use stats::{
    DecodedCacheStats, PatternCounters, SharedStats, StorageStats, TierStats, TraceProbe,
};
pub use tiered::{
    Durability, ObjectHandle, PrefetchConfig, RetryConfig, TieredConfig, TieredStorage,
};

// Re-exported so upstream layers (core, wildfire) reach the telemetry types
// through the storage handle they already hold.
pub use umzi_telemetry as telemetry;
pub use umzi_telemetry::{Telemetry, TelemetryConfig};

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
