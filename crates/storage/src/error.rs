//! Error type for the storage hierarchy.

use std::fmt;

/// Errors from object stores and tiered storage.
#[derive(Debug)]
pub enum StorageError {
    /// The named object does not exist.
    NotFound {
        /// Object name.
        name: String,
    },
    /// Attempted to create an object that already exists (objects are
    /// immutable / create-once, matching append-only shared storage).
    AlreadyExists {
        /// Object name.
        name: String,
    },
    /// A read range extended past the end of the object.
    RangeOutOfBounds {
        /// Object name.
        name: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Actual object size.
        size: u64,
    },
    /// A non-persisted object's data was lost (e.g. after a simulated crash);
    /// it cannot be re-read from shared storage because it was never written
    /// there (§6.1).
    LostObject {
        /// Object name.
        name: String,
    },
    /// An object handle was used after the object was deleted or the handle
    /// never existed.
    StaleHandle {
        /// The numeric handle value.
        handle: u64,
    },
    /// Underlying filesystem error (filesystem-backed object store).
    Io(std::io::Error),
    /// Invalid configuration (e.g. decoded-cache knobs out of range).
    Config(String),
    /// A transient fault: the operation failed but left no side effects and
    /// may succeed if retried (network hiccup, throttling, injected fault).
    Transient {
        /// The operation that failed (`put`, `get`, ...).
        op: &'static str,
        /// Object name the operation targeted.
        name: String,
        /// Human-readable fault detail.
        detail: String,
    },
    /// The store is unavailable and every operation fails — e.g. a
    /// fault-injected crash point poisoned it to simulate process death,
    /// or an open circuit breaker failing the op class fast.
    /// Permanent until the store is revived; retrying is pointless.
    Unavailable {
        /// Why the store went away.
        reason: String,
    },
    /// The query's deadline expired before the operation completed. The
    /// operation left no side effects; retrying under a fresh deadline is
    /// safe but pointless under the current one.
    DeadlineExceeded {
        /// The operation (or checkpoint) at which the budget ran out.
        op: &'static str,
    },
    /// The query was cooperatively cancelled via its
    /// [`CancelToken`](crate::context::CancelToken).
    Cancelled {
        /// The operation (or checkpoint) at which cancellation was observed.
        op: &'static str,
    },
}

impl StorageError {
    /// Whether the error is transient: the operation had no side effects and
    /// a bounded retry with backoff is worthwhile. Permanent errors (missing
    /// objects, stale handles, corruption, an unavailable store) are not.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Transient { .. } => true,
            // Interrupted syscalls and timeouts are the classic retryable
            // IO failures; everything else (ENOSPC, EACCES, ...) is not.
            StorageError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }

    /// Whether the error means the *query* gave up (deadline expiry or
    /// cooperative cancellation) rather than storage failing. Callers must
    /// not count these against store health (circuit breaker, retry
    /// exhaustion) and must not retry them.
    pub fn is_query_abort(&self) -> bool {
        matches!(
            self,
            StorageError::DeadlineExceeded { .. } | StorageError::Cancelled { .. }
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound { name } => write!(f, "object not found: {name}"),
            StorageError::AlreadyExists { name } => {
                write!(f, "object already exists (objects are immutable): {name}")
            }
            StorageError::RangeOutOfBounds {
                name,
                offset,
                len,
                size,
            } => write!(
                f,
                "range [{offset}, {offset}+{len}) out of bounds for {name} (size {size})"
            ),
            StorageError::LostObject { name } => {
                write!(
                    f,
                    "non-persisted object lost (not in shared storage): {name}"
                )
            }
            StorageError::StaleHandle { handle } => write!(f, "stale object handle {handle}"),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Config(msg) => write!(f, "invalid storage configuration: {msg}"),
            StorageError::Transient { op, name, detail } => {
                write!(f, "transient {op} failure on {name}: {detail}")
            }
            StorageError::Unavailable { reason } => {
                write!(f, "object store unavailable: {reason}")
            }
            StorageError::DeadlineExceeded { op } => {
                write!(f, "query deadline exceeded at {op}")
            }
            StorageError::Cancelled { op } => write!(f, "query cancelled at {op}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
