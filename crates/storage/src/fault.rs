//! Deterministic fault injection for the storage layer.
//!
//! [`FaultInjectingStore`] wraps any [`ObjectStore`] and executes a seeded,
//! reproducible [`FaultPlan`]: transient IO errors (by op type, probability
//! or nth-op schedule), torn writes (a partial object lands in the inner
//! store, then the writer dies), bit-flip corruption on reads, and crash
//! points that poison the store so every later operation fails — simulating
//! process death mid-operation. The same `(plan, seed)` always injects the
//! same faults in the same order for a single-threaded caller, which is what
//! lets the crash-torture harness replay a failing schedule from its seed
//! alone.
//!
//! Faults injected *before* the inner call (transient errors, crash points)
//! leave no side effects, so a retry against the same name is safe. Torn
//! writes are the exception by design: they deliberately leave a partial
//! object behind and then poison the store, because a torn object can only
//! arise when the writer dies mid-write — recovery must find and delete it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::StorageError;
use crate::object_store::ObjectStore;
use crate::Result;

/// The operation classes faults can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Object creation.
    Put,
    /// Whole-object read.
    Get,
    /// Range read.
    GetRange,
    /// Size query.
    Len,
    /// Prefix listing.
    List,
    /// Object deletion.
    Delete,
}

impl FaultOp {
    /// All operation classes, in counter order.
    pub const ALL: [FaultOp; 6] = [
        FaultOp::Put,
        FaultOp::Get,
        FaultOp::GetRange,
        FaultOp::Len,
        FaultOp::List,
        FaultOp::Delete,
    ];

    /// Index of this op in the per-op counter arrays ([`FaultOp::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            FaultOp::Put => 0,
            FaultOp::Get => 1,
            FaultOp::GetRange => 2,
            FaultOp::Len => 3,
            FaultOp::List => 4,
            FaultOp::Delete => 5,
        }
    }

    /// Short label (`put`, `get`, ...).
    pub fn label(self) -> &'static str {
        match self {
            FaultOp::Put => "put",
            FaultOp::Get => "get",
            FaultOp::GetRange => "get_range",
            FaultOp::Len => "len",
            FaultOp::List => "list",
            FaultOp::Delete => "delete",
        }
    }
}

/// One scheduled fault. Op counts are 1-based and per [`FaultOp`]; the crash
/// point counts *global* operations across all op types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Fail the `nth` operation of `op` with a transient error (no side
    /// effects — a retry may succeed).
    TransientAt {
        /// Targeted operation class.
        op: FaultOp,
        /// 1-based per-op ordinal.
        nth: u64,
    },
    /// Fail every operation of `op` strictly after the `nth` one (persistent
    /// degradation: e.g. "writes stop working after a while").
    TransientAfter {
        /// Targeted operation class.
        op: FaultOp,
        /// 1-based per-op ordinal after which every call fails.
        nth: u64,
    },
    /// Tear the `nth` put: a strict prefix of the object is written under
    /// its real name, then the store is poisoned (the writer died mid-write).
    TornWriteAt {
        /// 1-based put ordinal.
        nth: u64,
    },
    /// Flip one random bit in the data returned by the `nth` read
    /// (`get` and `get_range` share the read counter).
    BitFlipAt {
        /// 1-based read ordinal.
        nth: u64,
    },
    /// Poison the store at the `nth` global operation: that operation and
    /// every later one fail with [`StorageError::Unavailable`], simulating
    /// process death mid-operation.
    CrashAt {
        /// 1-based global-op ordinal.
        nth: u64,
    },
}

/// A seeded, reproducible fault plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the plan's private RNG (probabilistic faults, bit and tear
    /// positions). The same seed replays the same faults.
    pub seed: u64,
    /// Per-op transient-error probability in `[0, 1]`, indexed by
    /// [`FaultOp::ALL`] order.
    pub transient_prob: [f64; 6],
    /// Probability that a read (`get`/`get_range`) returns data with one
    /// flipped bit.
    pub bit_flip_prob: f64,
    /// Exact fault schedule, applied before the probabilistic knobs.
    pub schedule: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing (pass-through wrapper).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_prob: [0.0; 6],
            bit_flip_prob: 0.0,
            schedule: Vec::new(),
        }
    }

    /// A plan injecting transient errors on every op class with probability
    /// `prob`, and nothing else.
    pub fn transient_only(seed: u64, prob: f64) -> Self {
        FaultPlan {
            seed,
            transient_prob: [prob; 6],
            bit_flip_prob: 0.0,
            schedule: Vec::new(),
        }
    }

    /// Set the transient probability of one op class (builder style).
    pub fn with_transient(mut self, op: FaultOp, prob: f64) -> Self {
        self.transient_prob[op.index()] = prob;
        self
    }

    /// Append a scheduled fault (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.schedule.push(event);
        self
    }
}

/// Per-op totals of operations seen and faults injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations observed per class, indexed by [`FaultOp::ALL`] order.
    pub ops: [u64; 6],
    /// Transient errors injected per class, same indexing.
    pub injected: [u64; 6],
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Reads whose result had a bit flipped.
    pub bit_flips: u64,
    /// Operations rejected because the store was poisoned.
    pub rejected_while_crashed: u64,
    /// Whether the store is currently poisoned.
    pub crashed: bool,
}

impl FaultStats {
    /// Total transient faults injected across all op classes.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Render per-op counters for a failure log.
    pub fn summary(&self) -> String {
        let per_op: Vec<String> = FaultOp::ALL
            .iter()
            .map(|op| {
                format!(
                    "{}={}/{}",
                    op.label(),
                    self.injected[op.index()],
                    self.ops[op.index()]
                )
            })
            .collect();
        format!(
            "faults[{}] torn={} bitflips={} rejected={} crashed={}",
            per_op.join(" "),
            self.torn_writes,
            self.bit_flips,
            self.rejected_while_crashed,
            self.crashed
        )
    }
}

#[derive(Debug, Default)]
struct FaultCounters {
    ops: [AtomicU64; 6],
    injected: [AtomicU64; 6],
    torn_writes: AtomicU64,
    bit_flips: AtomicU64,
    rejected_while_crashed: AtomicU64,
}

/// An [`ObjectStore`] decorator that injects faults per a [`FaultPlan`].
pub struct FaultInjectingStore {
    inner: Arc<dyn ObjectStore>,
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    /// Global op ordinal (all classes), for crash points.
    global_ops: AtomicU64,
    /// Read ordinal (`get` + `get_range`), for bit-flip scheduling.
    reads: AtomicU64,
    counters: FaultCounters,
    crashed: AtomicBool,
    armed: AtomicBool,
}

impl std::fmt::Debug for FaultInjectingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjectingStore")
            .field("plan", &self.plan)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FaultInjectingStore {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: Arc<dyn ObjectStore>, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        Self {
            inner,
            plan,
            rng: Mutex::new(rng),
            global_ops: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            counters: FaultCounters::default(),
            crashed: AtomicBool::new(false),
            armed: AtomicBool::new(true),
        }
    }

    /// The wrapped store (e.g. to inspect surviving objects after a crash).
    pub fn inner(&self) -> &Arc<dyn ObjectStore> {
        &self.inner
    }

    /// Point-in-time fault statistics.
    pub fn stats(&self) -> FaultStats {
        let load = |a: &[AtomicU64; 6]| {
            let mut out = [0u64; 6];
            for (o, v) in out.iter_mut().zip(a.iter()) {
                *o = v.load(Ordering::Relaxed);
            }
            out
        };
        FaultStats {
            ops: load(&self.counters.ops),
            injected: load(&self.counters.injected),
            torn_writes: self.counters.torn_writes.load(Ordering::Relaxed),
            bit_flips: self.counters.bit_flips.load(Ordering::Relaxed),
            rejected_while_crashed: self.counters.rejected_while_crashed.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
        }
    }

    /// Whether a crash point has poisoned the store.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Poison the store manually: every subsequent op fails.
    pub fn crash(&self) {
        self.crashed.store(true, Ordering::Relaxed);
    }

    /// Clear the crash poison — the "process" restarted. Scheduled and
    /// probabilistic faults keep applying unless disarmed.
    pub fn revive(&self) {
        self.crashed.store(false, Ordering::Relaxed);
    }

    /// Arm or disarm fault injection entirely (counters keep counting ops).
    /// Disarming does not clear an existing crash poison.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::Relaxed);
    }

    fn unavailable(&self) -> StorageError {
        self.counters
            .rejected_while_crashed
            .fetch_add(1, Ordering::Relaxed);
        StorageError::Unavailable {
            reason: "simulated crash (fault-injected crash point)".to_owned(),
        }
    }

    fn transient(&self, op: FaultOp, name: &str, detail: &str) -> StorageError {
        self.counters.injected[op.index()].fetch_add(1, Ordering::Relaxed);
        StorageError::Transient {
            op: op.label(),
            name: name.to_owned(),
            detail: detail.to_owned(),
        }
    }

    /// Count the op and decide whether to inject, before touching the inner
    /// store. Returns the per-op ordinal of this call on success.
    fn before(&self, op: FaultOp, name: &str) -> Result<u64> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(self.unavailable());
        }
        let global = self.global_ops.fetch_add(1, Ordering::Relaxed) + 1;
        let nth = self.counters.ops[op.index()].fetch_add(1, Ordering::Relaxed) + 1;
        if !self.armed.load(Ordering::Relaxed) {
            return Ok(nth);
        }
        for ev in &self.plan.schedule {
            match *ev {
                FaultEvent::CrashAt { nth: g } if g == global => {
                    self.crashed.store(true, Ordering::Relaxed);
                    return Err(self.unavailable());
                }
                FaultEvent::TransientAt { op: o, nth: n } if o == op && n == nth => {
                    return Err(self.transient(op, name, "scheduled transient fault"));
                }
                FaultEvent::TransientAfter { op: o, nth: n } if o == op && nth > n => {
                    return Err(self.transient(op, name, "scheduled persistent degradation"));
                }
                _ => {}
            }
        }
        let prob = self.plan.transient_prob[op.index()];
        if prob > 0.0 && self.rng.lock().random_bool(prob) {
            return Err(self.transient(op, name, "probabilistic transient fault"));
        }
        Ok(nth)
    }

    /// Whether this read (by ordinal) should have a bit flipped.
    fn should_flip(&self, read_nth: u64) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        let scheduled = self
            .plan
            .schedule
            .iter()
            .any(|ev| matches!(*ev, FaultEvent::BitFlipAt { nth } if nth == read_nth));
        scheduled
            || (self.plan.bit_flip_prob > 0.0
                && self.rng.lock().random_bool(self.plan.bit_flip_prob))
    }

    fn maybe_flip(&self, data: Bytes, read_nth: u64) -> Bytes {
        if data.is_empty() || !self.should_flip(read_nth) {
            return data;
        }
        self.counters.bit_flips.fetch_add(1, Ordering::Relaxed);
        let mut v = data.to_vec();
        let bit = self.rng.lock().random_range(0..v.len() as u64 * 8);
        v[(bit / 8) as usize] ^= 1 << (bit % 8);
        Bytes::from(v)
    }
}

impl ObjectStore for FaultInjectingStore {
    fn fault_stats(&self) -> Option<FaultStats> {
        Some(self.stats())
    }

    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        let nth = self.before(FaultOp::Put, name)?;
        let torn = self
            .plan
            .schedule
            .iter()
            .any(|ev| matches!(*ev, FaultEvent::TornWriteAt { nth: n } if n == nth));
        if torn && self.armed.load(Ordering::Relaxed) && data.len() > 1 {
            // Writer dies mid-write: a strict prefix lands under the real
            // name and the store is poisoned. Recovery must clean this up.
            let cut = self.rng.lock().random_range(1..data.len() as u64) as usize;
            let _ = self.inner.put(name, data.slice(0..cut));
            self.counters.torn_writes.fetch_add(1, Ordering::Relaxed);
            self.crashed.store(true, Ordering::Relaxed);
            return Err(self.unavailable());
        }
        self.inner.put(name, data)
    }

    fn get(&self, name: &str) -> Result<Bytes> {
        self.before(FaultOp::Get, name)?;
        let read_nth = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        let data = self.inner.get(name)?;
        Ok(self.maybe_flip(data, read_nth))
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes> {
        self.before(FaultOp::GetRange, name)?;
        let read_nth = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        let data = self.inner.get_range(name, offset, len)?;
        Ok(self.maybe_flip(data, read_nth))
    }

    fn len(&self, name: &str) -> Result<u64> {
        self.before(FaultOp::Len, name)?;
        self.inner.len(name)
    }

    fn exists(&self, name: &str) -> bool {
        // Existence probes are not an IO fault target (and cannot report an
        // error), but a crashed store sees nothing.
        if self.crashed.load(Ordering::Relaxed) {
            return false;
        }
        self.inner.exists(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.before(FaultOp::List, prefix)?;
        self.inner.list(prefix)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.before(FaultOp::Delete, name)?;
        self.inner.delete(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_store::InMemoryObjectStore;

    fn store(plan: FaultPlan) -> (Arc<InMemoryObjectStore>, FaultInjectingStore) {
        let inner = Arc::new(InMemoryObjectStore::new());
        let faulty = FaultInjectingStore::new(inner.clone() as Arc<dyn ObjectStore>, plan);
        (inner, faulty)
    }

    #[test]
    fn pass_through_with_empty_plan() {
        let (_, s) = store(FaultPlan::none());
        s.put("a", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.get("a").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.get_range("a", 1, 3).unwrap(), Bytes::from_static(b"ell"));
        assert_eq!(s.len("a").unwrap(), 5);
        assert_eq!(s.list("").unwrap(), vec!["a".to_owned()]);
        s.delete("a").unwrap();
        assert_eq!(s.stats().total_injected(), 0);
    }

    #[test]
    fn scheduled_transient_fails_exactly_the_nth_op() {
        let plan = FaultPlan::none().with_event(FaultEvent::TransientAt {
            op: FaultOp::Put,
            nth: 2,
        });
        let (_, s) = store(plan);
        s.put("a", Bytes::from_static(b"x")).unwrap();
        let err = s.put("b", Bytes::from_static(b"y")).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert!(!s.exists("b"), "transient put left no side effects");
        // Retrying the same name succeeds: no partial state.
        s.put("b", Bytes::from_static(b"y")).unwrap();
        assert_eq!(s.stats().injected[FaultOp::Put.index()], 1);
    }

    #[test]
    fn transient_after_degrades_permanently() {
        let plan = FaultPlan::none().with_event(FaultEvent::TransientAfter {
            op: FaultOp::Put,
            nth: 1,
        });
        let (_, s) = store(plan);
        s.put("a", Bytes::from_static(b"x")).unwrap();
        for i in 0..5 {
            assert!(s.put(&format!("b{i}"), Bytes::from_static(b"y")).is_err());
        }
    }

    #[test]
    fn probabilistic_faults_are_deterministic_per_seed() {
        let run = |seed| {
            let (_, s) = store(FaultPlan::transient_only(seed, 0.5));
            (0..64)
                .map(|i| s.put(&format!("o{i}"), Bytes::from_static(b"z")).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn torn_write_leaves_prefix_and_poisons() {
        let plan = FaultPlan::none().with_event(FaultEvent::TornWriteAt { nth: 1 });
        let (inner, s) = store(plan);
        let err = s.put("r", Bytes::from(vec![7u8; 100])).unwrap_err();
        assert!(matches!(err, StorageError::Unavailable { .. }), "{err}");
        let torn = inner.get("r").unwrap();
        assert!(!torn.is_empty() && torn.len() < 100, "strict prefix");
        assert!(s.is_crashed());
        assert!(s.get("r").is_err(), "poisoned store rejects everything");
        s.revive();
        assert_eq!(s.get("r").unwrap().len(), torn.len());
        assert_eq!(s.stats().torn_writes, 1);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let plan = FaultPlan::none().with_event(FaultEvent::BitFlipAt { nth: 2 });
        let (_, s) = store(plan);
        let payload = Bytes::from(vec![0u8; 64]);
        s.put("r", payload.clone()).unwrap();
        assert_eq!(s.get("r").unwrap(), payload, "first read clean");
        let flipped = s.get("r").unwrap();
        let diff_bits: u32 = flipped
            .iter()
            .zip(payload.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1, "exactly one bit flipped");
        assert_eq!(s.get("r").unwrap(), payload, "third read clean again");
        assert_eq!(s.stats().bit_flips, 1);
    }

    #[test]
    fn crash_point_poisons_at_global_ordinal() {
        let plan = FaultPlan::none().with_event(FaultEvent::CrashAt { nth: 3 });
        let (_, s) = store(plan);
        s.put("a", Bytes::from_static(b"1")).unwrap();
        s.put("b", Bytes::from_static(b"2")).unwrap();
        assert!(matches!(
            s.get("a").unwrap_err(),
            StorageError::Unavailable { .. }
        ));
        assert!(s.is_crashed());
        assert!(s.list("").is_err());
        assert!(s.stats().rejected_while_crashed >= 2);
        s.revive();
        assert_eq!(s.get("a").unwrap(), Bytes::from_static(b"1"));
    }

    #[test]
    fn disarm_stops_injection() {
        let (_, s) = store(FaultPlan::transient_only(3, 1.0));
        assert!(s.put("a", Bytes::from_static(b"x")).is_err());
        s.set_armed(false);
        s.put("a", Bytes::from_static(b"x")).unwrap();
    }
}
