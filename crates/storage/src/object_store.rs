//! Append-only object stores modeling shared storage back-ends.
//!
//! §1: *"most of these shared storage options are not good at random access
//! and in-place update ... HDFS only supports append-only operations ...
//! object storage on cloud allows neither random access inside an object nor
//! update to an object."* Accordingly, [`ObjectStore`] exposes create-once
//! immutable objects; mutation is modeled the way real systems do it — by
//! writing new objects and deleting old ones.

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::StorageError;
use crate::Result;

/// An append-only (create-once) object store.
///
/// Implementations must be thread-safe; Umzi's groomer, post-groomer and
/// indexer daemons access shared storage concurrently.
pub trait ObjectStore: Send + Sync + 'static {
    /// Create an immutable object. Fails with [`StorageError::AlreadyExists`]
    /// if the name is taken.
    fn put(&self, name: &str, data: Bytes) -> Result<()>;

    /// Read an entire object.
    fn get(&self, name: &str) -> Result<Bytes>;

    /// Read `len` bytes at `offset`. The range must lie fully inside the
    /// object (shared storage serves block-aligned range reads; the caller
    /// computes exact ranges from the object length).
    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes>;

    /// Read several `(offset, len)` ranges of one object in a single batched
    /// call, returning the buffers in request order. The batch shape lets a
    /// backend issue the reads concurrently (an io_uring or async backend
    /// slots in here later); this default simply loops [`Self::get_range`],
    /// so decorators (fault injection, counters) that only override the
    /// per-range method still see every individual read.
    fn get_ranges(&self, name: &str, ranges: &[(u64, usize)]) -> Result<Vec<Bytes>> {
        ranges
            .iter()
            .map(|&(offset, len)| self.get_range(name, offset, len))
            .collect()
    }

    /// Object size in bytes.
    fn len(&self, name: &str) -> Result<u64>;

    /// Whether the object exists.
    fn exists(&self, name: &str) -> bool;

    /// List object names with the given prefix, in lexicographic order.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Delete an object. Deleting a missing object is an error (callers track
    /// ownership; silent double-deletes hide GC bugs).
    fn delete(&self, name: &str) -> Result<()>;

    /// Fault-injection statistics, if this store (or a decorator in its
    /// chain) injects faults. Plain backends answer `None`; the engine folds
    /// a `Some` answer into its health report so degraded-storage diagnosis
    /// never requires reaching into the decorator by hand.
    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        None
    }
}

/// In-memory object store — the default simulation back-end.
///
/// Holds object payloads as [`Bytes`], so range reads are zero-copy slices
/// of the stored buffer.
#[derive(Debug, Default)]
pub struct InMemoryObjectStore {
    objects: RwLock<BTreeMap<String, Bytes>>,
}

impl InMemoryObjectStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|b| b.len() as u64).sum()
    }
}

impl ObjectStore for InMemoryObjectStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        let mut objects = self.objects.write();
        if objects.contains_key(name) {
            return Err(StorageError::AlreadyExists {
                name: name.to_owned(),
            });
        }
        objects.insert(name.to_owned(), data);
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Bytes> {
        self.objects
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::NotFound {
                name: name.to_owned(),
            })
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes> {
        let objects = self.objects.read();
        let data = objects.get(name).ok_or_else(|| StorageError::NotFound {
            name: name.to_owned(),
        })?;
        let end = offset as usize + len;
        if end > data.len() {
            return Err(StorageError::RangeOutOfBounds {
                name: name.to_owned(),
                offset,
                len,
                size: data.len() as u64,
            });
        }
        Ok(data.slice(offset as usize..end))
    }

    fn len(&self, name: &str) -> Result<u64> {
        self.objects
            .read()
            .get(name)
            .map(|b| b.len() as u64)
            .ok_or_else(|| StorageError::NotFound {
                name: name.to_owned(),
            })
    }

    fn exists(&self, name: &str) -> bool {
        self.objects.read().contains_key(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let objects = self.objects.read();
        Ok(objects
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.objects
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound {
                name: name.to_owned(),
            })
    }
}

/// Filesystem-backed object store (one file per object under a root
/// directory). Useful for durability across process restarts and for
/// inspecting run files on disk.
///
/// Object names may contain `/`, which maps to subdirectories.
#[derive(Debug)]
pub struct FsObjectStore {
    root: PathBuf,
    /// Serializes create/delete so `put`'s exists-check + rename is atomic
    /// with respect to other writers in this process.
    write_lock: parking_lot::Mutex<()>,
}

impl FsObjectStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            write_lock: parking_lot::Mutex::new(()),
        })
    }

    fn path_for(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Fsync the directory containing `path`, making a completed rename (or
    /// unlink) inside it durable. `File::sync_all` on the object file alone
    /// persists the *data*, but the directory entry created by the rename
    /// lives in the parent directory's metadata — without this a committed
    /// object can vanish on power loss. Directory fsync is a Unix notion;
    /// elsewhere this is a no-op.
    fn sync_parent_dir(path: &std::path::Path) -> Result<()> {
        #[cfg(unix)]
        if let Some(parent) = path.parent() {
            std::fs::File::open(parent)?.sync_all()?;
        }
        #[cfg(not(unix))]
        let _ = path;
        Ok(())
    }
}

impl ObjectStore for FsObjectStore {
    fn put(&self, name: &str, data: Bytes) -> Result<()> {
        let _guard = self.write_lock.lock();
        let path = self.path_for(name);
        if path.exists() {
            return Err(StorageError::AlreadyExists {
                name: name.to_owned(),
            });
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write to a temp file then rename, so readers never observe a
        // partially-written object (recovery treats partial objects as
        // incomplete runs, but the local FS can do better).
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&data)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        // The rename only becomes crash-durable once the parent directory's
        // entry table reaches disk. (Intermediate directories created above
        // are not individually synced; a lost empty directory is harmless
        // because the object entry itself is what recovery keys on.)
        Self::sync_parent_dir(&path)?;
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Bytes> {
        match std::fs::read(self.path_for(name)) {
            Ok(v) => Ok(Bytes::from(v)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StorageError::NotFound {
                name: name.to_owned(),
            }),
            Err(e) => Err(e.into()),
        }
    }

    fn get_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes> {
        let path = self.path_for(name);
        let mut f = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::NotFound {
                    name: name.to_owned(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        let size = f.metadata()?.len();
        if offset + len as u64 > size {
            return Err(StorageError::RangeOutOfBounds {
                name: name.to_owned(),
                offset,
                len,
                size,
            });
        }
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    /// Batched ranges are served by a small scoped-thread pool, each worker
    /// opening its own file handle so the seeks don't serialize. Results
    /// keep request order.
    fn get_ranges(&self, name: &str, ranges: &[(u64, usize)]) -> Result<Vec<Bytes>> {
        const POOL: usize = 4;
        if ranges.len() <= 1 {
            return ranges
                .iter()
                .map(|&(off, len)| self.get_range(name, off, len))
                .collect();
        }
        let mut out: Vec<Result<Bytes>> = Vec::with_capacity(ranges.len());
        out.resize_with(ranges.len(), || Ok(Bytes::new()));
        let workers = POOL.min(ranges.len());
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            let cursor = &cursor;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&(off, len)) = ranges.get(i) else {
                                return got;
                            };
                            got.push((i, self.get_range(name, off, len)));
                        }
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)) {
                    out[i] = r;
                }
            }
        });
        out.into_iter().collect()
    }

    fn len(&self, name: &str) -> Result<u64> {
        match std::fs::metadata(self.path_for(name)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StorageError::NotFound {
                name: name.to_owned(),
            }),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.path_for(name).exists()
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = match std::fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().map(|e| e == "tmp").unwrap_or(false) {
                    continue; // in-flight writes are invisible
                } else if let Ok(rel) = path.strip_prefix(&self.root) {
                    let name = rel.to_string_lossy().replace('\\', "/");
                    if name.starts_with(prefix) {
                        out.push(name);
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn delete(&self, name: &str) -> Result<()> {
        let _guard = self.write_lock.lock();
        let path = self.path_for(name);
        match std::fs::remove_file(&path) {
            Ok(()) => {
                // Same durability rule as `put`: the unlink must reach the
                // parent directory's on-disk state, or a crashed GC pass can
                // resurrect a deleted (possibly superseded) run.
                Self::sync_parent_dir(&path)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StorageError::NotFound {
                name: name.to_owned(),
            }),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ObjectStore) {
        store
            .put("runs/a", Bytes::from_static(b"hello world"))
            .unwrap();
        store.put("runs/b", Bytes::from_static(b"bye")).unwrap();
        store.put("manifest/1", Bytes::from_static(b"m")).unwrap();

        // create-once
        assert!(matches!(
            store.put("runs/a", Bytes::new()),
            Err(StorageError::AlreadyExists { .. })
        ));

        assert_eq!(
            store.get("runs/a").unwrap(),
            Bytes::from_static(b"hello world")
        );
        assert_eq!(
            store.get_range("runs/a", 6, 5).unwrap(),
            Bytes::from_static(b"world")
        );
        assert_eq!(store.len("runs/a").unwrap(), 11);
        assert!(store.exists("runs/b"));
        assert!(!store.exists("runs/zzz"));

        assert!(matches!(
            store.get_range("runs/a", 8, 10),
            Err(StorageError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            store.get("nope"),
            Err(StorageError::NotFound { .. })
        ));

        let listed = store.list("runs/").unwrap();
        assert_eq!(listed, vec!["runs/a".to_owned(), "runs/b".to_owned()]);

        // Batched ranges: request order preserved, overlaps allowed, and a
        // bad range fails the whole batch.
        let batch = store
            .get_ranges("runs/a", &[(6, 5), (0, 5), (4, 3)])
            .unwrap();
        assert_eq!(
            batch,
            vec![
                Bytes::from_static(b"world"),
                Bytes::from_static(b"hello"),
                Bytes::from_static(b"o w"),
            ]
        );
        assert_eq!(
            store.get_ranges("runs/a", &[]).unwrap(),
            Vec::<Bytes>::new()
        );
        assert!(store.get_ranges("runs/a", &[(0, 5), (8, 10)]).is_err());

        store.delete("runs/b").unwrap();
        assert!(!store.exists("runs/b"));
        assert!(matches!(
            store.delete("runs/b"),
            Err(StorageError::NotFound { .. })
        ));
    }

    #[test]
    fn in_memory_store_contract() {
        let store = InMemoryObjectStore::new();
        exercise(&store);
        assert_eq!(store.object_count(), 2); // runs/a + manifest/1
        assert_eq!(store.total_bytes(), 12);
    }

    #[test]
    fn fs_store_contract() {
        let dir = std::env::temp_dir().join(format!("umzi-fsstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FsObjectStore::open(&dir).unwrap();
        exercise(&store);
        // Survives reopen.
        drop(store);
        let store = FsObjectStore::open(&dir).unwrap();
        assert_eq!(
            store.get("runs/a").unwrap(),
            Bytes::from_static(b"hello world")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_range_reads_are_zero_copy() {
        let store = InMemoryObjectStore::new();
        let payload = Bytes::from(vec![7u8; 1 << 16]);
        store.put("big", payload.clone()).unwrap();
        let slice = store.get_range("big", 1024, 4096).unwrap();
        // Zero-copy: the slice points into the original allocation.
        assert_eq!(slice.as_ptr(), unsafe { payload.as_ptr().add(1024) });
    }

    #[test]
    fn list_is_prefix_scoped_and_sorted() {
        let store = InMemoryObjectStore::new();
        for name in ["z", "a/2", "a/1", "a1", "b/1"] {
            store.put(name, Bytes::new()).unwrap();
        }
        assert_eq!(
            store.list("a/").unwrap(),
            vec!["a/1".to_owned(), "a/2".to_owned()]
        );
        assert_eq!(store.list("").unwrap().len(), 5);
    }
}
