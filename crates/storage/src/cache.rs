//! A capacity-bounded, block-granularity cache tier (memory or SSD).
//!
//! Entries are chunks of immutable objects, keyed by `(object handle, chunk
//! number)`. Two residency classes exist:
//!
//! * **unpinned** — ordinary cached chunks, evicted LRU under pressure;
//! * **pinned** — never evicted. Used for run *header* blocks (§6.2: purging
//!   *"drops all data blocks from the SSD while only keeps the header block
//!   for queries to locate data blocks"*) and for all chunks of runs in
//!   non-persisted levels (§6.1), whose only copy lives in this tier.

use bytes::Bytes;
use parking_lot::Mutex;

use crate::latency::LatencyModel;
use crate::lru::LruMap;
use crate::stats::{TierCounters, TierStats};

/// Cache key: `(object handle, chunk number)`.
pub type ChunkKey = (u64, u32);

#[derive(Debug)]
struct TierInner {
    unpinned: LruMap<ChunkKey, Bytes>,
    pinned: std::collections::HashMap<ChunkKey, Bytes>,
    used_bytes: u64,
    pinned_bytes: u64,
}

/// One cache tier of the storage hierarchy.
pub struct CacheTier {
    name: &'static str,
    capacity: u64,
    latency: LatencyModel,
    inner: Mutex<TierInner>,
    counters: TierCounters,
}

impl std::fmt::Debug for CacheTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheTier")
            .field("name", &self.name)
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CacheTier {
    /// Create a tier with a byte capacity and latency model.
    ///
    /// Pinned insertions may exceed capacity (the alternative — refusing to
    /// hold a non-persisted run — would lose data); only unpinned entries
    /// are evicted to make room.
    pub fn new(name: &'static str, capacity: u64, latency: LatencyModel) -> Self {
        Self {
            name,
            capacity,
            latency,
            inner: Mutex::new(TierInner {
                unpinned: LruMap::new(),
                pinned: std::collections::HashMap::new(),
                used_bytes: 0,
                pinned_bytes: 0,
            }),
            counters: TierCounters::default(),
        }
    }

    /// Tier name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Look up a chunk; charges read latency on hit and refreshes recency.
    pub fn get(&self, key: ChunkKey) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        let found = inner
            .pinned
            .get(&key)
            .cloned()
            .or_else(|| inner.unpinned.get(&key).cloned());
        drop(inner);
        match found {
            Some(data) => {
                self.counters
                    .hits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.counters
                    .bytes_read
                    .fetch_add(data.len() as u64, std::sync::atomic::Ordering::Relaxed);
                self.latency.apply(data.len());
                Some(data)
            }
            None => {
                self.counters
                    .misses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether a chunk is resident (no latency charge, no recency effect).
    pub fn contains(&self, key: ChunkKey) -> bool {
        let inner = self.inner.lock();
        inner.pinned.contains_key(&key) || inner.unpinned.contains(&key)
    }

    /// Insert a chunk, evicting LRU unpinned entries if needed.
    /// Charges write latency.
    pub fn insert(&self, key: ChunkKey, data: Bytes, pinned: bool) {
        let len = data.len() as u64;
        let mut evicted = 0u64;
        {
            let mut inner = self.inner.lock();
            // Replace any existing entry for this key first.
            if let Some(old) = inner.unpinned.remove(&key) {
                inner.used_bytes -= old.len() as u64;
            } else if let Some(old) = inner.pinned.remove(&key) {
                inner.used_bytes -= old.len() as u64;
                inner.pinned_bytes -= old.len() as u64;
            }
            // Evict unpinned LRU entries until the new chunk fits.
            while inner.used_bytes + len > self.capacity {
                match inner.unpinned.pop_lru() {
                    Some((_, old)) => {
                        inner.used_bytes -= old.len() as u64;
                        evicted += 1;
                    }
                    None => break, // only pinned remain; allow overflow
                }
            }
            inner.used_bytes += len;
            if pinned {
                inner.pinned_bytes += len;
                inner.pinned.insert(key, data);
            } else {
                inner.unpinned.insert(key, data);
            }
        }
        self.counters
            .insertions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.counters
            .evictions
            .fetch_add(evicted, std::sync::atomic::Ordering::Relaxed);
        self.counters
            .bytes_written
            .fetch_add(len, std::sync::atomic::Ordering::Relaxed);
        self.latency.apply(len as usize);
    }

    /// Remove one chunk (pinned or not). Returns whether it was resident.
    pub fn remove(&self, key: ChunkKey) -> bool {
        let mut inner = self.inner.lock();
        if let Some(old) = inner.unpinned.remove(&key) {
            inner.used_bytes -= old.len() as u64;
            true
        } else if let Some(old) = inner.pinned.remove(&key) {
            inner.used_bytes -= old.len() as u64;
            inner.pinned_bytes -= old.len() as u64;
            true
        } else {
            false
        }
    }

    /// Remove all chunks of an object with chunk number ≥ `from_chunk`.
    /// Returns the number of chunks dropped. This implements run *purging*:
    /// `from_chunk` is the first data chunk, so headers stay resident.
    pub fn remove_object_chunks(&self, handle: u64, from_chunk: u32) -> usize {
        let mut inner = self.inner.lock();
        let dropped_unpinned = inner
            .unpinned
            .drain_filter(|&(h, c), _| h == handle && c >= from_chunk);
        let mut freed: u64 = dropped_unpinned.iter().map(|(_, b)| b.len() as u64).sum();
        let mut count = dropped_unpinned.len();

        let pinned_keys: Vec<ChunkKey> = inner
            .pinned
            .keys()
            .filter(|&&(h, c)| h == handle && c >= from_chunk)
            .copied()
            .collect();
        for k in pinned_keys {
            if let Some(old) = inner.pinned.remove(&k) {
                freed += old.len() as u64;
                inner.pinned_bytes -= old.len() as u64;
                count += 1;
            }
        }
        inner.used_bytes -= freed;
        count
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }

    /// Drop everything (simulated node crash: local tiers are lost).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.unpinned.clear();
        inner.pinned.clear();
        inner.used_bytes = 0;
        inner.pinned_bytes = 0;
    }

    /// Current statistics.
    pub fn stats(&self) -> TierStats {
        let inner = self.inner.lock();
        self.counters.snapshot(
            inner.used_bytes,
            inner.pinned_bytes,
            (inner.unpinned.len() + inner.pinned.len()) as u64,
        )
    }

    /// The tier's latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(n: usize) -> Bytes {
        Bytes::from(vec![0xCD; n])
    }

    #[test]
    fn insert_get_roundtrip() {
        let tier = CacheTier::new("mem", 1024, LatencyModel::off());
        tier.insert((1, 0), chunk(100), false);
        assert_eq!(tier.get((1, 0)).unwrap().len(), 100);
        assert!(tier.get((1, 1)).is_none());
        let s = tier.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.used_bytes, 100);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let tier = CacheTier::new("mem", 300, LatencyModel::off());
        tier.insert((1, 0), chunk(100), false);
        tier.insert((1, 1), chunk(100), false);
        tier.insert((1, 2), chunk(100), false);
        // Touch (1,0) so (1,1) is LRU.
        tier.get((1, 0));
        tier.insert((1, 3), chunk(100), false);
        assert!(tier.contains((1, 0)));
        assert!(!tier.contains((1, 1)), "LRU chunk must have been evicted");
        assert!(tier.contains((1, 2)));
        assert!(tier.contains((1, 3)));
        assert_eq!(tier.stats().evictions, 1);
        assert!(tier.used_bytes() <= 300);
    }

    #[test]
    fn pinned_chunks_survive_pressure() {
        let tier = CacheTier::new("ssd", 250, LatencyModel::off());
        tier.insert((7, 0), chunk(100), true); // header, pinned
        tier.insert((7, 1), chunk(100), false);
        tier.insert((7, 2), chunk(100), false); // forces eviction of (7,1)
        assert!(tier.contains((7, 0)), "pinned chunk must never be evicted");
        assert!(!tier.contains((7, 1)));
        assert_eq!(tier.stats().pinned_bytes, 100);
    }

    #[test]
    fn pinned_overflow_is_allowed() {
        let tier = CacheTier::new("ssd", 100, LatencyModel::off());
        tier.insert((1, 0), chunk(80), true);
        tier.insert((2, 0), chunk(80), true);
        // Over capacity, but both pinned chunks are resident.
        assert!(tier.contains((1, 0)));
        assert!(tier.contains((2, 0)));
        assert_eq!(tier.used_bytes(), 160);
    }

    #[test]
    fn purge_keeps_header_chunks() {
        let tier = CacheTier::new("ssd", 10_000, LatencyModel::off());
        tier.insert((3, 0), chunk(10), true); // header
        for c in 1..=5u32 {
            tier.insert((3, c), chunk(10), false);
        }
        tier.insert((4, 1), chunk(10), false); // other object untouched
        let dropped = tier.remove_object_chunks(3, 1);
        assert_eq!(dropped, 5);
        assert!(tier.contains((3, 0)));
        assert!(!tier.contains((3, 3)));
        assert!(tier.contains((4, 1)));
        assert_eq!(tier.used_bytes(), 20);
    }

    #[test]
    fn replace_same_key_accounts_bytes_once() {
        let tier = CacheTier::new("mem", 1000, LatencyModel::off());
        tier.insert((1, 0), chunk(100), false);
        tier.insert((1, 0), chunk(200), true); // replace + pin
        assert_eq!(tier.used_bytes(), 200);
        assert_eq!(tier.stats().pinned_bytes, 200);
        tier.remove((1, 0));
        assert_eq!(tier.used_bytes(), 0);
        assert_eq!(tier.stats().pinned_bytes, 0);
    }

    #[test]
    fn clear_simulates_crash() {
        let tier = CacheTier::new("ssd", 1000, LatencyModel::off());
        tier.insert((1, 0), chunk(10), true);
        tier.insert((1, 1), chunk(10), false);
        tier.clear();
        assert_eq!(tier.used_bytes(), 0);
        assert!(!tier.contains((1, 0)));
    }
}
