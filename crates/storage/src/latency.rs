//! Configurable latency model for storage tiers.
//!
//! The paper's end-to-end experiments depend on the memory ≪ SSD ≪ shared
//! latency ordering (Figure 14 shows purged runs costing orders of magnitude
//! more than SSD-cached ones). Since this reproduction simulates the
//! hierarchy, latencies are explicit and configurable rather than emergent.
//!
//! Each tier charge is always *accounted* (a virtual clock accumulates
//! nanoseconds), and in [`LatencyMode::Sleep`] it is also *enforced* by
//! sleeping, which makes end-to-end harnesses behave like a real hierarchy.
//! Unit tests and CPU-bound microbenchmarks use [`LatencyMode::Accounting`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How latency charges are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyMode {
    /// Only accumulate the virtual-clock charge; never sleep.
    Accounting,
    /// Accumulate the charge *and* sleep for its duration.
    Sleep,
}

/// Latency parameters of a single tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierLatency {
    /// Fixed cost per operation.
    pub base: Duration,
    /// Additional cost per KiB transferred.
    pub per_kib: Duration,
}

impl TierLatency {
    /// Zero-cost tier (e.g. local memory).
    pub const fn free() -> Self {
        TierLatency {
            base: Duration::ZERO,
            per_kib: Duration::ZERO,
        }
    }

    /// Construct from microsecond figures.
    pub const fn micros(base_us: u64, per_kib_us: u64) -> Self {
        TierLatency {
            base: Duration::from_micros(base_us),
            per_kib: Duration::from_micros(per_kib_us),
        }
    }

    /// The charge for transferring `bytes` bytes.
    pub fn charge(&self, bytes: usize) -> Duration {
        let kib = (bytes as u64).div_ceil(1024);
        self.base + self.per_kib * (kib as u32)
    }

    fn is_free(&self) -> bool {
        self.base.is_zero() && self.per_kib.is_zero()
    }
}

/// A latency model shared by the components of one tier.
///
/// Cloning is cheap; clones share the same virtual clock.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    latency: TierLatency,
    mode: LatencyMode,
    /// Virtual clock: total nanoseconds charged.
    charged_nanos: Arc<AtomicU64>,
}

impl LatencyModel {
    /// A model with the given parameters and mode.
    pub fn new(latency: TierLatency, mode: LatencyMode) -> Self {
        Self {
            latency,
            mode,
            charged_nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A free (zero-latency) model; used for memory tiers and unit tests.
    pub fn off() -> Self {
        Self::new(TierLatency::free(), LatencyMode::Accounting)
    }

    /// Default SSD-like latencies (≈100 µs per op, ≈1 µs/KiB), accounting only.
    pub fn ssd_default() -> Self {
        Self::new(TierLatency::micros(100, 1), LatencyMode::Accounting)
    }

    /// Default shared-storage-like latencies (≈2 ms per op, ≈20 µs/KiB),
    /// accounting only.
    pub fn shared_default() -> Self {
        Self::new(TierLatency::micros(2_000, 20), LatencyMode::Accounting)
    }

    /// Apply the charge for an operation moving `bytes` bytes.
    pub fn apply(&self, bytes: usize) {
        if self.latency.is_free() {
            return;
        }
        let d = self.latency.charge(bytes);
        self.charged_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        if self.mode == LatencyMode::Sleep && !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    /// Total virtual time charged so far.
    pub fn charged(&self) -> Duration {
        Duration::from_nanos(self.charged_nanos.load(Ordering::Relaxed))
    }

    /// The configured tier latency.
    pub fn tier_latency(&self) -> TierLatency {
        self.latency
    }

    /// The configured mode.
    pub fn mode(&self) -> LatencyMode {
        self.mode
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_computation() {
        let l = TierLatency::micros(100, 10);
        assert_eq!(l.charge(0), Duration::from_micros(100));
        assert_eq!(l.charge(1), Duration::from_micros(110));
        assert_eq!(l.charge(1024), Duration::from_micros(110));
        assert_eq!(l.charge(1025), Duration::from_micros(120));
        assert_eq!(l.charge(4096), Duration::from_micros(140));
    }

    #[test]
    fn accounting_accumulates_without_sleeping() {
        let m = LatencyModel::new(TierLatency::micros(1_000, 0), LatencyMode::Accounting);
        let t0 = std::time::Instant::now();
        for _ in 0..100 {
            m.apply(512);
        }
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "accounting mode must not sleep"
        );
        assert_eq!(m.charged(), Duration::from_millis(100));
    }

    #[test]
    fn clones_share_the_clock() {
        let m = LatencyModel::new(TierLatency::micros(10, 0), LatencyMode::Accounting);
        let m2 = m.clone();
        m.apply(1);
        m2.apply(1);
        assert_eq!(m.charged(), Duration::from_micros(20));
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = LatencyModel::off();
        m.apply(1 << 20);
        assert_eq!(m.charged(), Duration::ZERO);
    }

    #[test]
    fn sleep_mode_sleeps() {
        let m = LatencyModel::new(TierLatency::micros(2_000, 0), LatencyMode::Sleep);
        let t0 = std::time::Instant::now();
        m.apply(1);
        assert!(t0.elapsed() >= Duration::from_micros(1_800));
    }
}
