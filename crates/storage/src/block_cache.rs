//! A sharded, scan-resistant cache of *decoded* data blocks.
//!
//! The tiered chunk caches hold raw bytes; every block access on top of
//! them still pays a parse (offset-trailer validation + `Bytes` slicing).
//! For index-structure-aware read paths that re-visit the same block many
//! times — binary-search probes, adjacent range-scan positions, batched
//! lookups with sorted keys — caching the *parsed* representation removes
//! that repeated work entirely (the MV-PBT observation that structure-aware
//! block caching, not raw-byte caching, is the decisive read-path lever).
//!
//! HTAP mixes two access patterns over the same blocks, and a plain LRU
//! serves them badly: one analytical range scan touches every block of a
//! run exactly once and sweeps the point-lookup working set out of the
//! cache. The default [`CachePolicy::ScanResistant`] policy defends the
//! working set with three mechanisms:
//!
//! 1. **Segmented LRU** per shard: a *probation* segment absorbs new and
//!    once-seen blocks, a *protected* segment (a configurable fraction of
//!    capacity) holds blocks re-referenced by point lookups. Scans flow
//!    through probation and evict only each other.
//! 2. **Frequency-sketch admission** (TinyLFU): a 4-bit count–min sketch
//!    with periodic halving estimates each block's recent popularity. When
//!    the shard is full, a cold candidate is admitted only if its estimate
//!    at least matches the probation victim's, and a block evicted from
//!    probation displaces the protected tail only if its estimated
//!    frequency strictly wins.
//! 3. **Access-pattern hints**: callers label traffic
//!    [`AccessPattern::PointLookup`] (may promote into protected),
//!    [`AccessPattern::RangeScan`] (probation-only; large scans bypass
//!    insertion entirely past [`DecodedCacheConfig::scan_bypass_bytes`]),
//!    or [`AccessPattern::Maintenance`] (groom/merge sweeps — never
//!    admitted).
//!
//! [`CachePolicy::Lru`] keeps the previous single-segment always-admit
//! behaviour for A/B comparison (the `cache_policy` bench group).
//!
//! The cache is value-type-agnostic (`Arc<dyn Any + Send + Sync>`) because
//! the decoded block type lives upstream of this crate; `umzi-run` stores
//! its `DataBlock` here keyed by `(object handle, data block number)`.
//! Sharding keeps lock hold times negligible under the parallel multi-run
//! scan fan-out.

use std::any::Any;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

use parking_lot::{Mutex, RwLock};

use crate::cache::ChunkKey;
use crate::error::StorageError;
use crate::lru::LruMap;
use crate::sketch::FrequencySketch;
use crate::stats::{DecodedCacheStats, PatternCounters};

/// What kind of access a block fetch serves. Plumbed from the query layer
/// down to the cache so replacement can tell the hot point working set from
/// one-pass analytical and maintenance sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessPattern {
    /// Point or batched lookup: re-reference promotes into the protected
    /// segment.
    #[default]
    PointLookup,
    /// Range-scan iteration: admitted to probation only; never promotes.
    RangeScan,
    /// Background maintenance (merge/groom/fence rebuilds): one-pass
    /// traffic, never inserted.
    Maintenance,
}

impl AccessPattern {
    pub(crate) fn idx(self) -> usize {
        match self {
            AccessPattern::PointLookup => 0,
            AccessPattern::RangeScan => 1,
            AccessPattern::Maintenance => 2,
        }
    }
}

/// Replacement policy of the decoded-block cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Single-segment LRU, every insert admitted (the pre-scan-resistance
    /// behaviour; kept for A/B benchmarking).
    Lru,
    /// Segmented LRU + frequency-sketch admission + pattern hints.
    #[default]
    ScanResistant,
}

/// Configuration of the decoded-block cache.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedCacheConfig {
    /// Total capacity in (raw-block) bytes, split evenly across shards;
    /// 0 disables the cache.
    pub capacity_bytes: u64,
    /// Shard count (lock granularity under parallel scans). Fixed at
    /// construction — [`DecodedBlockCache::reconfigure`] rejects a config
    /// that asks for a different count.
    pub shards: usize,
    /// Replacement policy.
    pub policy: CachePolicy,
    /// Fraction of each shard's capacity reserved for the protected
    /// segment (blocks re-referenced by point lookups). Must be in (0, 1).
    pub protected_fraction: f64,
    /// A single range scan stops inserting into the cache once it has
    /// streamed this many block bytes (it clearly won't fit, so caching
    /// its tail only causes churn); 0 never bypasses.
    pub scan_bypass_bytes: u64,
    /// Counters in the frequency sketch (one sketch shared by all shards);
    /// 0 sizes automatically from the total capacity (~8 counters per KiB).
    pub sketch_counters: usize,
    /// The sketch halves its counters after `sketch_sample_factor ×
    /// counters` recorded accesses (aging horizon).
    pub sketch_sample_factor: u32,
}

impl Default for DecodedCacheConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 64 * 1024 * 1024,
            shards: 16,
            policy: CachePolicy::ScanResistant,
            protected_fraction: 0.8,
            scan_bypass_bytes: 8 * 1024 * 1024,
            sketch_counters: 0,
            sketch_sample_factor: 8,
        }
    }
}

impl DecodedCacheConfig {
    /// Validate structural invariants.
    pub fn validate(&self) -> crate::Result<()> {
        if self.shards == 0 {
            return Err(StorageError::Config(
                "decoded cache needs at least one shard".into(),
            ));
        }
        if !(self.protected_fraction > 0.0 && self.protected_fraction < 1.0) {
            return Err(StorageError::Config(format!(
                "decoded cache protected_fraction must be in (0, 1), got {}",
                self.protected_fraction
            )));
        }
        if self.sketch_counters > 1 << 26 {
            return Err(StorageError::Config(format!(
                "decoded cache sketch_counters {} is absurd (cap is 2^26)",
                self.sketch_counters
            )));
        }
        if self.sketch_sample_factor == 0 {
            return Err(StorageError::Config(
                "decoded cache sketch_sample_factor must be ≥ 1".into(),
            ));
        }
        Ok(())
    }

    fn resolved_sketch_counters(&self, total_capacity: u64) -> usize {
        if self.sketch_counters != 0 {
            // Same bound validate() enforces; new() clamps instead of
            // erroring (infallible constructor).
            return self.sketch_counters.min(1 << 26);
        }
        // ~8 counters per KiB ⇒ dozens per typical 4–8 KiB block, keeping
        // count–min aliasing (which inflates estimates and can displace
        // legitimately-protected blocks) rare at working-set scale.
        (total_capacity / 128).clamp(1024, 1 << 22) as usize
    }

    /// A copy with every out-of-range knob clamped into its documented
    /// domain — the infallible construction path
    /// ([`DecodedBlockCache::new`] / `TieredStorage::new`) uses this, while
    /// [`DecodedBlockCache::reconfigure`] rejects the same configs via
    /// [`Self::validate`].
    fn clamped(&self) -> DecodedCacheConfig {
        DecodedCacheConfig {
            shards: self.shards.max(1),
            protected_fraction: if self.protected_fraction > 0.0 && self.protected_fraction < 1.0 {
                self.protected_fraction
            } else {
                0.8
            },
            sketch_sample_factor: self.sketch_sample_factor.max(1),
            sketch_counters: self.sketch_counters.min(1 << 26),
            ..self.clone()
        }
    }
}

/// A decoded block plus its accounting weight (the raw block size).
type Slot = (std::sync::Arc<dyn Any + Send + Sync>, u64);

/// Policy parameters shared by all shards, swapped by
/// [`DecodedBlockCache::reconfigure`]. Stored as individual atomics so the
/// per-access load costs two relaxed reads, not a lock.
#[derive(Debug, Clone, Copy)]
struct PolicyParams {
    policy: CachePolicy,
    protected_fraction: f64,
}

impl PolicyParams {
    /// Encode the fraction in parts-per-million for atomic storage.
    fn fraction_ppm(fraction: f64) -> u32 {
        (fraction * 1_000_000.0) as u32
    }
}

struct Shard {
    /// New and once-seen blocks; scans live and die here.
    probation: LruMap<ChunkKey, Slot>,
    /// Blocks re-referenced by point lookups.
    protected: LruMap<ChunkKey, Slot>,
    probation_bytes: u64,
    protected_bytes: u64,
}

impl Shard {
    fn new() -> Self {
        Self {
            probation: LruMap::new(),
            protected: LruMap::new(),
            probation_bytes: 0,
            protected_bytes: 0,
        }
    }

    fn used_bytes(&self) -> u64 {
        self.probation_bytes + self.protected_bytes
    }

    /// Demote protected-tail entries to probation until the protected
    /// segment respects its cap. Total bytes are unchanged.
    fn rebalance_protected(&mut self, protected_cap: u64, demotions: &mut u64) {
        while self.protected_bytes > protected_cap {
            let Some((k, (v, w))) = self.protected.pop_lru() else {
                break;
            };
            self.protected_bytes -= w;
            self.probation.insert(k, (v, w));
            self.probation_bytes += w;
            *demotions += 1;
        }
    }

    /// Evict one entry to relieve capacity pressure. Probation's tail goes
    /// first; if its sketch frequency strictly beats the protected tail's,
    /// it earned protection and displaces that tail instead of dying.
    /// Returns `false` when the shard is empty.
    fn evict_one(
        &mut self,
        params: &PolicyParams,
        protected_cap: u64,
        sketch: &FrequencySketch,
        c: &EvictCounters,
    ) -> bool {
        if let Some((vk, (vv, vw))) = self.probation.pop_lru() {
            self.probation_bytes -= vw;
            if params.policy == CachePolicy::ScanResistant {
                let vfreq = sketch.estimate(sketch_hash(vk));
                let tail_freq = self
                    .protected
                    .peek_lru()
                    .map(|(k, _)| sketch.estimate(sketch_hash(*k)));
                if let Some(tf) = tail_freq {
                    if vfreq > tf {
                        // Frequency wins: the probation victim displaces the
                        // protected tail.
                        let (_, (_, pw)) = self.protected.pop_lru().expect("tail exists");
                        self.protected_bytes -= pw;
                        self.protected.insert(vk, (vv, vw));
                        self.protected_bytes += vw;
                        let mut demos = 0;
                        self.rebalance_protected(protected_cap, &mut demos);
                        c.demotions.fetch_add(demos, Ordering::Relaxed);
                        c.promotions.fetch_add(1, Ordering::Relaxed);
                        c.evictions.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                }
            }
            c.evictions.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        if let Some((_, (_, pw))) = self.protected.pop_lru() {
            self.protected_bytes -= pw;
            c.evictions.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// Eviction-related counters passed into the shard helpers.
struct EvictCounters {
    evictions: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
}

fn sketch_hash(key: ChunkKey) -> u64 {
    (key.0 ^ (u64::from(key.1) << 32)).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Sharded scan-resistant cache over decoded blocks. All operations are
/// O(1) per shard.
pub struct DecodedBlockCache {
    shards: Vec<Mutex<Shard>>,
    /// One frequency sketch shared by every shard (striped-atomic, so no
    /// shard lock is needed to record or estimate). Replaced wholesale on
    /// [`Self::reconfigure`] — always acquired *after* a shard lock, never
    /// while holding the write half across shard work.
    sketch: RwLock<FrequencySketch>,
    /// Total capacity in (raw-block) bytes, split evenly across shards.
    capacity: AtomicU64,
    /// Replacement policy (0 = Lru, 1 = ScanResistant); atomic so the hot
    /// path never takes a lock for it.
    policy: AtomicU8,
    /// Protected-segment fraction in parts-per-million.
    protected_fraction_ppm: AtomicU32,
    /// Scan-insert bypass threshold (read per scan, so kept lock-free).
    scan_bypass_bytes: AtomicU64,
    hits: [AtomicU64; 3],
    misses: [AtomicU64; 3],
    insertions: AtomicU64,
    admission_rejected: AtomicU64,
    bypassed_inserts: AtomicU64,
    /// Cumulative bytes of blocks handed to `insert`/`insert_scan_bypassed`
    /// — each call follows one decode upstream, so this approximates total
    /// bytes parsed (the per-query trace reads its delta).
    decoded_bytes: AtomicU64,
    evict: EvictCounters,
}

impl std::fmt::Debug for DecodedBlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodedBlockCache")
            .field("capacity", &self.capacity.load(Ordering::Relaxed))
            .field("policy", &self.params().policy)
            .field("stats", &self.stats())
            .finish()
    }
}

impl DecodedBlockCache {
    /// Create a cache from its configuration. Out-of-range knobs are
    /// clamped into their documented domains (construction is infallible;
    /// use [`DecodedCacheConfig::validate`] /
    /// [`Self::reconfigure`] where an error is preferable).
    pub fn new(config: DecodedCacheConfig) -> Self {
        let config = config.clamped();
        let shards = config.shards.max(1);
        let counters = config.resolved_sketch_counters(config.capacity_bytes);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            sketch: RwLock::new(FrequencySketch::new(counters, config.sketch_sample_factor)),
            capacity: AtomicU64::new(config.capacity_bytes),
            policy: AtomicU8::new(config.policy as u8),
            protected_fraction_ppm: AtomicU32::new(PolicyParams::fraction_ppm(
                config.protected_fraction,
            )),
            scan_bypass_bytes: AtomicU64::new(config.scan_bypass_bytes),
            hits: Default::default(),
            misses: Default::default(),
            insertions: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            bypassed_inserts: AtomicU64::new(0),
            decoded_bytes: AtomicU64::new(0),
            evict: EvictCounters {
                evictions: AtomicU64::new(0),
                promotions: AtomicU64::new(0),
                demotions: AtomicU64::new(0),
            },
        }
    }

    /// Convenience constructor: `capacity` bytes over `shards` shards with
    /// default policy knobs.
    pub fn with_capacity(capacity: u64, shards: usize) -> Self {
        Self::new(DecodedCacheConfig {
            capacity_bytes: capacity,
            shards,
            ..DecodedCacheConfig::default()
        })
    }

    fn shard_of(&self, key: ChunkKey) -> &Mutex<Shard> {
        // Fibonacci-hash the (handle, block) pair so consecutive blocks of
        // one object spread across shards.
        let h = sketch_hash(key);
        &self.shards[(h >> 48) as usize % self.shards.len()]
    }

    fn per_shard_capacity(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed) / self.shards.len() as u64
    }

    fn params(&self) -> PolicyParams {
        PolicyParams {
            policy: if self.policy.load(Ordering::Relaxed) == CachePolicy::Lru as u8 {
                CachePolicy::Lru
            } else {
                CachePolicy::ScanResistant
            },
            protected_fraction: f64::from(self.protected_fraction_ppm.load(Ordering::Relaxed))
                / 1_000_000.0,
        }
    }

    /// Whether the cache is disabled (zero capacity).
    pub fn is_disabled(&self) -> bool {
        self.capacity.load(Ordering::Relaxed) == 0
    }

    /// The scan-insert bypass threshold (bytes one scan may stream before
    /// it stops inserting); 0 = never bypass.
    pub fn scan_bypass_bytes(&self) -> u64 {
        self.scan_bypass_bytes.load(Ordering::Relaxed)
    }

    /// Whether a key is resident (no recency effect, no statistics).
    pub fn contains(&self, key: ChunkKey) -> bool {
        if self.is_disabled() {
            return false;
        }
        let shard = self.shard_of(key).lock();
        shard.probation.contains(&key) || shard.protected.contains(&key)
    }

    /// Look up a decoded block, refreshing recency. A `PointLookup` hit in
    /// probation promotes the block into the protected segment; scan and
    /// maintenance hits refresh recency only. A disabled cache answers
    /// `None` without touching shard locks or counters.
    pub fn get(
        &self,
        key: ChunkKey,
        pattern: AccessPattern,
    ) -> Option<std::sync::Arc<dyn Any + Send + Sync>> {
        if self.is_disabled() {
            return None;
        }
        let found = {
            let mut shard = self.shard_of(key).lock();
            // Load the policy under the shard lock: reconfigure() folds
            // each shard's segments under the same lock, so a promotion can
            // never race a policy switch and strand an entry in protected.
            let params = self.params();
            let protected_cap =
                (self.per_shard_capacity() as f64 * params.protected_fraction) as u64;
            if params.policy == CachePolicy::ScanResistant {
                self.sketch.read().increment(sketch_hash(key));
            }
            if let Some((v, _)) = shard.protected.get(&key) {
                Some(v.clone())
            } else if shard.probation.contains(&key) {
                if params.policy == CachePolicy::ScanResistant
                    && pattern == AccessPattern::PointLookup
                {
                    // Second touch by a point lookup: promote.
                    let (v, w) = shard.probation.remove(&key).expect("present");
                    shard.probation_bytes -= w;
                    let out = v.clone();
                    shard.protected.insert(key, (v, w));
                    shard.protected_bytes += w;
                    self.evict.promotions.fetch_add(1, Ordering::Relaxed);
                    let mut demos = 0;
                    shard.rebalance_protected(protected_cap, &mut demos);
                    self.evict.demotions.fetch_add(demos, Ordering::Relaxed);
                    Some(out)
                } else {
                    shard.probation.get(&key).map(|(v, _)| v.clone())
                }
            } else {
                None
            }
        };
        match &found {
            Some(_) => self.hits[pattern.idx()].fetch_add(1, Ordering::Relaxed),
            None => self.misses[pattern.idx()].fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a decoded block with its accounting weight.
    ///
    /// Under [`CachePolicy::ScanResistant`]: `Maintenance` traffic is never
    /// admitted; new blocks enter probation, but when the shard is full a
    /// candidate whose sketch frequency is below the probation victim's is
    /// rejected instead of churning the cache.
    pub fn insert(
        &self,
        key: ChunkKey,
        value: std::sync::Arc<dyn Any + Send + Sync>,
        weight: u64,
        pattern: AccessPattern,
    ) {
        // The block was decoded upstream whether or not it is admitted (or
        // the cache is even enabled) — count it before any early return.
        self.decoded_bytes.fetch_add(weight, Ordering::Relaxed);
        if self.is_disabled() {
            return;
        }
        let cap = self.per_shard_capacity();
        if weight > cap {
            return; // would immediately evict everything; not cacheable
        }
        let mut shard = self.shard_of(key).lock();
        // Lock order everywhere: shard Mutex first, then the sketch read
        // lock (reconfigure takes the write half with no shard lock held).
        let sketch = self.sketch.read();
        // Policy loaded under the shard lock (see get()).
        let params = self.params();
        let protected_cap = (cap as f64 * params.protected_fraction) as u64;
        let scan_resistant = params.policy == CachePolicy::ScanResistant;
        // Armed on a fresh scan-resistant admission: (candidate key, its
        // sketch frequency at insert time). See the eviction loop below.
        let mut duel: Option<(ChunkKey, u64)> = None;

        // Replace in place when already resident (weight may change).
        if shard.protected.contains(&key) {
            let (_, old_w) = shard
                .protected
                .insert(key, (value, weight))
                .expect("present");
            shard.protected_bytes = shard.protected_bytes - old_w + weight;
            let mut demos = 0;
            shard.rebalance_protected(protected_cap, &mut demos);
            self.evict.demotions.fetch_add(demos, Ordering::Relaxed);
        } else if shard.probation.contains(&key) {
            let (_, old_w) = shard
                .probation
                .insert(key, (value, weight))
                .expect("present");
            shard.probation_bytes = shard.probation_bytes - old_w + weight;
        } else {
            if scan_resistant && pattern == AccessPattern::Maintenance {
                // One-pass background sweeps never pollute the cache.
                self.bypassed_inserts.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if scan_resistant {
                // No sketch increment here: every fetch path records its
                // access in get() before inserting on a miss, so counting the
                // insert too would double-bill miss-served blocks relative to
                // hit-served ones (TinyLFU records one increment per access).
                // Admission filter: only gate when the insert would force
                // evictions, and compare the candidate against **every**
                // probation victim that would have to die to make room — a
                // heavy candidate must beat (or tie; recency breaks ties,
                // preserving LRU semantics for equal-frequency flows) each
                // of them, not just the first, so admitting one big cold
                // block cannot silently evict a pile of warm small ones.
                let cfreq = sketch.estimate(sketch_hash(key));
                if shard.used_bytes() + weight > cap {
                    let mut to_free = (shard.used_bytes() + weight).saturating_sub(cap);
                    for (vk, (_, vw)) in shard.probation.iter_lru() {
                        if to_free == 0 {
                            break;
                        }
                        if sketch.estimate(sketch_hash(*vk)) > cfreq {
                            self.admission_rejected.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        to_free = to_free.saturating_sub(*vw);
                    }
                }
                // The walk above assumes each inspected victim frees its full
                // weight, but evict_one may displace a victim into protected
                // and free only the (smaller) protected tail instead, pulling
                // eviction past the inspected prefix. Arm a late duel so each
                // *actual* victim is still compared against the candidate.
                duel = Some((key, cfreq));
            }
            shard.probation.insert(key, (value, weight));
            shard.probation_bytes += weight;
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }

        while shard.used_bytes() > cap {
            if let Some((ck, cfreq)) = duel {
                if !shard.probation.contains(&ck) {
                    // The candidate left probation mid-loop — either evicted
                    // (nothing to back out) or displaced into protected by
                    // winning a frequency duel (it earned its place). Either
                    // way the duel is over and eviction proceeds normally.
                    duel = None;
                } else {
                    let hotter_victim = shard.probation.peek_lru().is_some_and(|(vk, _)| {
                        *vk != ck && sketch.estimate(sketch_hash(*vk)) > cfreq
                    });
                    if hotter_victim {
                        // A block hotter than the candidate would die next:
                        // back the admission out instead of evicting it.
                        let (_, w) = shard.probation.remove(&ck).expect("checked above");
                        shard.probation_bytes -= w;
                        // The entry never became resident: it counts as a
                        // rejected admission, not an insertion.
                        self.insertions.fetch_sub(1, Ordering::Relaxed);
                        self.admission_rejected.fetch_add(1, Ordering::Relaxed);
                        duel = None;
                        continue;
                    }
                }
            }
            if !shard.evict_one(&params, protected_cap, &sketch, &self.evict) {
                break;
            }
        }
    }

    /// Insert for the tail of a range scan that has exceeded its
    /// [`scan_bypass_bytes`](Self::scan_bypass_bytes) budget. Under the
    /// scan-resistant policy the block is not admitted (counted as a
    /// bypassed insert); under the plain-LRU fallback it inserts normally,
    /// matching that policy's lack of scan resistance.
    pub fn insert_scan_bypassed(
        &self,
        key: ChunkKey,
        value: std::sync::Arc<dyn Any + Send + Sync>,
        weight: u64,
    ) {
        if self.is_disabled() {
            self.decoded_bytes.fetch_add(weight, Ordering::Relaxed);
            return;
        }
        if self.params().policy == CachePolicy::ScanResistant {
            self.decoded_bytes.fetch_add(weight, Ordering::Relaxed);
            self.bypassed_inserts.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.insert(key, value, weight, AccessPattern::RangeScan);
    }

    /// Drop every cached block of one object (purge / delete).
    pub fn invalidate_object(&self, handle: u64) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut s = shard.lock();
            let gone = s.probation.drain_filter(|&(h, _), _| h == handle);
            s.probation_bytes -= gone.iter().map(|(_, (_, w))| w).sum::<u64>();
            dropped += gone.len();
            let gone = s.protected.drain_filter(|&(h, _), _| h == handle);
            s.protected_bytes -= gone.iter().map(|(_, (_, w))| w).sum::<u64>();
            dropped += gone.len();
        }
        dropped
    }

    /// Drop everything (simulated crash).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.probation.clear();
            s.protected.clear();
            s.probation_bytes = 0;
            s.protected_bytes = 0;
        }
    }

    /// Apply a new configuration to the live cache: capacity, policy and
    /// sketch knobs change; the shard count is fixed at construction, and a
    /// config asking for a *different* count is rejected with
    /// [`StorageError::Config`] — silently keeping the old count would let
    /// an operator believe a lock-granularity change took effect. Resident
    /// entries survive — switching to [`CachePolicy::Lru`] folds the
    /// protected segment back into the single LRU list.
    pub fn reconfigure(&self, config: &DecodedCacheConfig) -> crate::Result<()> {
        config.validate()?;
        if config.shards != self.shards.len() {
            return Err(StorageError::Config(format!(
                "decoded cache shard count is fixed at construction ({}); \
                 reconfigure cannot change it to {}",
                self.shards.len(),
                config.shards
            )));
        }
        self.capacity
            .store(config.capacity_bytes, Ordering::Relaxed);
        self.scan_bypass_bytes
            .store(config.scan_bypass_bytes, Ordering::Relaxed);
        self.policy.store(config.policy as u8, Ordering::Relaxed);
        self.protected_fraction_ppm.store(
            PolicyParams::fraction_ppm(config.protected_fraction),
            Ordering::Relaxed,
        );
        // Swap the shared sketch as a standalone step while holding *no*
        // shard lock (the hot paths take shard → sketch, so taking the
        // write half under a shard lock would invert the order).
        let counters = config.resolved_sketch_counters(config.capacity_bytes);
        *self.sketch.write() = FrequencySketch::new(counters, config.sketch_sample_factor);
        let protected_cap = (self.per_shard_capacity() as f64 * config.protected_fraction) as u64;
        for shard in &self.shards {
            let mut s = shard.lock();
            if config.policy == CachePolicy::Lru {
                // Fold protected into probation, oldest first, so the merged
                // list keeps protected entries ahead of nothing they had not
                // already outlived.
                while let Some((k, (v, w))) = s.protected.pop_lru() {
                    s.protected_bytes -= w;
                    s.probation.insert(k, (v, w));
                    s.probation_bytes += w;
                }
            } else {
                // Enforce the new protected cap now: a shrunk fraction must
                // not wait for the next promotion to take effect (scan-only
                // workloads never trigger one).
                let mut demos = 0;
                s.rebalance_protected(protected_cap, &mut demos);
                self.evict.demotions.fetch_add(demos, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> DecodedCacheStats {
        let (mut entries, mut probation, mut protected) = (0u64, 0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock();
            entries += (s.probation.len() + s.protected.len()) as u64;
            probation += s.probation_bytes;
            protected += s.protected_bytes;
        }
        let pat = |i: usize| PatternCounters {
            hits: self.hits[i].load(Ordering::Relaxed),
            misses: self.misses[i].load(Ordering::Relaxed),
        };
        let (point, scan, maintenance) = (pat(0), pat(1), pat(2));
        let (sketch_occupancy, sketch_halvings) = {
            let sketch = self.sketch.read();
            (sketch.occupancy(), sketch.halvings())
        };
        DecodedCacheStats {
            hits: point.hits + scan.hits + maintenance.hits,
            misses: point.misses + scan.misses + maintenance.misses,
            point,
            scan,
            maintenance,
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evict.evictions.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            promotions: self.evict.promotions.load(Ordering::Relaxed),
            demotions: self.evict.demotions.load(Ordering::Relaxed),
            bypassed_inserts: self.bypassed_inserts.load(Ordering::Relaxed),
            entries,
            used_bytes: probation + protected,
            probation_bytes: probation,
            protected_bytes: protected,
            sketch_occupancy,
            sketch_halvings,
            decoded_bytes: self.decoded_bytes.load(Ordering::Relaxed),
        }
    }

    /// Total hits across all access patterns — a cheap (lock-free) read for
    /// the per-query trace probes, unlike [`Self::stats`] which walks every
    /// shard.
    pub fn hits_total(&self) -> u64 {
        self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
    }

    /// Cumulative decoded bytes handed to the cache (see
    /// [`DecodedCacheStats::decoded_bytes`]); cheap, for trace probes.
    pub fn decoded_bytes(&self) -> u64 {
        self.decoded_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const PT: AccessPattern = AccessPattern::PointLookup;
    const SC: AccessPattern = AccessPattern::RangeScan;
    const MT: AccessPattern = AccessPattern::Maintenance;

    fn val(n: u32) -> Arc<dyn Any + Send + Sync> {
        Arc::new(n)
    }

    /// One-shard cache with deterministic behaviour; the oversized sketch
    /// makes count–min aliasing impossible at unit-test key counts.
    fn cache(capacity: u64, policy: CachePolicy) -> DecodedBlockCache {
        DecodedBlockCache::new(DecodedCacheConfig {
            capacity_bytes: capacity,
            shards: 1,
            policy,
            protected_fraction: 0.5,
            sketch_counters: 1 << 16,
            ..DecodedCacheConfig::default()
        })
    }

    #[test]
    fn get_insert_downcast_roundtrip() {
        let c = DecodedBlockCache::with_capacity(1 << 20, 4);
        c.insert((1, 0), val(42), 100, PT);
        let got = c.get((1, 0), PT).unwrap().downcast::<u32>().unwrap();
        assert_eq!(*got, 42);
        assert!(c.get((1, 1), PT).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.used_bytes), (1, 1, 1, 100));
        assert_eq!((s.point.hits, s.point.misses), (1, 1));
    }

    #[test]
    fn eviction_under_pressure_is_lru() {
        let c = cache(250, CachePolicy::ScanResistant);
        c.insert((1, 0), val(0), 100, PT);
        c.insert((1, 1), val(1), 100, PT);
        c.get((1, 0), PT); // (1,1) becomes LRU; (1,0) promotes
        c.insert((1, 2), val(2), 100, PT);
        assert!(c.get((1, 0), PT).is_some());
        assert!(c.get((1, 1), PT).is_none(), "LRU entry must be evicted");
        assert!(c.get((1, 2), PT).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.stats().used_bytes <= 250);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let c = cache(100, CachePolicy::ScanResistant);
        c.insert((1, 0), val(1), 200, PT);
        assert!(c.get((1, 0), PT).is_none());
        assert_eq!(c.stats().used_bytes, 0);
    }

    #[test]
    fn invalidate_object_drops_all_its_blocks() {
        let c = DecodedBlockCache::with_capacity(1 << 20, 8);
        for b in 0..32 {
            c.insert((7, b), val(b), 10, PT);
            c.insert((8, b), val(b), 10, PT);
        }
        // Promote a few of object 7's blocks so both segments are hit.
        for b in 0..8 {
            c.get((7, b), PT);
        }
        assert_eq!(c.invalidate_object(7), 32);
        assert!(c.get((7, 3), PT).is_none());
        assert!(c.get((8, 3), PT).is_some());
        assert_eq!(c.stats().used_bytes, 320);
        c.clear();
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn replacing_a_key_accounts_weight_once() {
        let c = cache(1000, CachePolicy::ScanResistant);
        c.insert((1, 0), val(1), 100, PT);
        c.insert((1, 0), val(2), 300, PT);
        assert_eq!(c.stats().used_bytes, 300);
        assert_eq!(*c.get((1, 0), PT).unwrap().downcast::<u32>().unwrap(), 2);
    }

    /// The headline property: a scan sweep evicts only probation; the
    /// point-lookup working set in the protected segment survives.
    #[test]
    fn scan_sweep_does_not_evict_protected_working_set() {
        let c = cache(1000, CachePolicy::ScanResistant); // protected cap 500
                                                         // Warm 4 point blocks (2 touches each → protected).
        for b in 0..4 {
            c.insert((1, b), val(b), 100, PT);
            c.get((1, b), PT);
        }
        assert_eq!(c.stats().protected_bytes, 400);
        // A "table scan" 10× the cache size flows through probation.
        for b in 0..100 {
            c.insert((2, b), val(b), 100, SC);
        }
        for b in 0..4 {
            assert!(
                c.get((1, b), PT).is_some(),
                "protected block (1,{b}) must survive the scan"
            );
        }
        assert_eq!(c.stats().protected_bytes, 400);
    }

    /// Under plain LRU the same scan washes the working set out — the
    /// behaviour the scan-resistant policy exists to fix.
    #[test]
    fn lru_policy_is_washed_out_by_scans() {
        let c = cache(1000, CachePolicy::Lru);
        for b in 0..4 {
            c.insert((1, b), val(b), 100, PT);
            c.get((1, b), PT);
        }
        for b in 0..100 {
            c.insert((2, b), val(b), 100, SC);
        }
        for b in 0..4 {
            assert!(c.get((1, b), PT).is_none(), "plain LRU must have evicted");
        }
    }

    #[test]
    fn scan_hits_do_not_promote() {
        let c = cache(1000, CachePolicy::ScanResistant);
        c.insert((1, 0), val(0), 100, SC);
        c.get((1, 0), SC);
        c.get((1, 0), SC);
        assert_eq!(c.stats().protected_bytes, 0, "scan touches stay probation");
        c.get((1, 0), PT);
        assert_eq!(c.stats().protected_bytes, 100, "point touch promotes");
    }

    #[test]
    fn maintenance_inserts_bypass() {
        let c = cache(1000, CachePolicy::ScanResistant);
        c.insert((1, 0), val(0), 100, MT);
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().bypassed_inserts, 1);
        // Under the Lru fallback maintenance inserts behave as before.
        let c = cache(1000, CachePolicy::Lru);
        c.insert((1, 0), val(0), 100, MT);
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn cold_candidate_is_rejected_against_frequent_victim() {
        let c = cache(200, CachePolicy::ScanResistant);
        c.insert((1, 0), val(0), 100, PT);
        c.insert((1, 1), val(1), 100, PT);
        // Bump (1,0)'s frequency with scan touches (no promotion), then
        // refresh (1,1) so (1,0) is the probation LRU victim — frequent but
        // not recent, exactly what the admission filter protects.
        for _ in 0..4 {
            c.get((1, 0), SC);
        }
        c.get((1, 1), SC);
        let before = c.stats().admission_rejected;
        c.insert((2, 0), val(9), 100, SC);
        assert_eq!(c.stats().admission_rejected, before + 1);
        assert!(c.get((2, 0), SC).is_none(), "cold block was not admitted");
        assert!(c.get((1, 0), SC).is_some());
    }

    /// The displacement rule: a block evicted from probation displaces the
    /// protected tail only when its estimated frequency strictly wins.
    #[test]
    fn frequent_probation_victim_displaces_protected_tail() {
        let c = cache(400, CachePolicy::ScanResistant); // protected cap 200
                                                        // (1,0) promoted once → protected, then left idle (freq 2).
        c.insert((1, 0), val(0), 100, PT);
        c.get((1, 0), PT);
        // (1,1) hammered by scans in probation (high freq, no promotion),
        // then two quiet blocks fill the shard; (1,1) ends up probation LRU.
        c.insert((1, 1), val(1), 100, SC);
        for _ in 0..10 {
            c.get((1, 1), SC);
        }
        c.insert((1, 2), val(2), 100, SC);
        c.insert((1, 3), val(3), 100, SC);
        // A similarly hot newcomer passes admission (≥ victim), forcing one
        // eviction: probation victim (1,1) beats the idle protected tail
        // (1,0) and takes its slot instead of dying.
        for _ in 0..11 {
            c.get((2, 0), SC); // misses still record frequency
        }
        c.insert((2, 0), val(9), 100, SC);
        assert!(c.get((1, 0), PT).is_none(), "idle protected tail displaced");
        assert!(
            c.get((1, 1), SC).is_some(),
            "hot victim got a second chance"
        );
        assert!(c.contains((2, 0)), "the newcomer was admitted");
        assert!(c.stats().used_bytes <= 400);
        let s = c.stats();
        assert!(s.promotions >= 1 && s.evictions >= 1);
    }

    #[test]
    fn reconfigure_switches_policy_and_capacity() {
        let c = cache(1000, CachePolicy::ScanResistant);
        for b in 0..4 {
            c.insert((1, b), val(b), 100, PT);
            c.get((1, b), PT); // promote
        }
        assert_eq!(c.stats().protected_bytes, 400);
        c.reconfigure(&DecodedCacheConfig {
            capacity_bytes: 500,
            shards: 1,
            policy: CachePolicy::Lru,
            ..DecodedCacheConfig::default()
        })
        .unwrap();
        let s = c.stats();
        assert_eq!(s.protected_bytes, 0, "protected folded into the LRU");
        assert_eq!(s.entries, 4, "entries survive reconfiguration");
        // Next insert enforces the shrunk capacity.
        c.insert((2, 0), val(9), 100, PT);
        assert!(c.stats().used_bytes <= 500);
        // Invalid configs are rejected without touching the cache.
        assert!(c
            .reconfigure(&DecodedCacheConfig {
                protected_fraction: 1.5,
                ..DecodedCacheConfig::default()
            })
            .is_err());
    }

    /// The shard count is fixed at construction: a reconfigure keeping it
    /// is accepted, one changing it is rejected before any knob changes.
    #[test]
    fn reconfigure_rejects_changed_shard_count() {
        let c = cache(1000, CachePolicy::ScanResistant); // 1 shard
        c.insert((1, 0), val(0), 100, PT);
        let err = c
            .reconfigure(&DecodedCacheConfig {
                capacity_bytes: 500,
                shards: 4,
                ..DecodedCacheConfig::default()
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::Config(_)), "{err}");
        assert_eq!(c.stats().entries, 1, "rejected reconfigure is a no-op");
        // Capacity untouched: an insert past the would-be new cap still fits.
        c.insert((1, 1), val(1), 800, PT);
        assert!(c.stats().used_bytes > 500, "capacity was not shrunk");
        // Matching shard count is accepted.
        c.reconfigure(&DecodedCacheConfig {
            capacity_bytes: 2000,
            shards: 1,
            ..DecodedCacheConfig::default()
        })
        .unwrap();
    }

    /// Shrinking `protected_fraction` must rebalance immediately: scan-only
    /// workloads never trigger a promotion, so a stale oversized protected
    /// segment would otherwise hold its bytes indefinitely.
    #[test]
    fn reconfigure_shrinks_protected_segment_immediately() {
        let c = cache(1000, CachePolicy::ScanResistant); // protected cap 500
        for b in 0..4 {
            c.insert((1, b), val(b), 100, PT);
            c.get((1, b), PT); // promote
        }
        assert_eq!(c.stats().protected_bytes, 400);
        c.reconfigure(&DecodedCacheConfig {
            capacity_bytes: 1000,
            shards: 1,
            policy: CachePolicy::ScanResistant,
            protected_fraction: 0.2, // new cap 200
            sketch_counters: 1 << 16,
            ..DecodedCacheConfig::default()
        })
        .unwrap();
        let s = c.stats();
        assert!(s.protected_bytes <= 200, "demoted to the new cap: {s:?}");
        assert_eq!(s.entries, 4, "demotion moves entries, not drops them");
        assert_eq!(s.used_bytes, 400);
        assert!(s.demotions >= 2);
    }

    #[test]
    fn config_validation() {
        assert!(DecodedCacheConfig::default().validate().is_ok());
        for bad in [
            DecodedCacheConfig {
                shards: 0,
                ..DecodedCacheConfig::default()
            },
            DecodedCacheConfig {
                protected_fraction: 0.0,
                ..DecodedCacheConfig::default()
            },
            DecodedCacheConfig {
                protected_fraction: 1.0,
                ..DecodedCacheConfig::default()
            },
            DecodedCacheConfig {
                sketch_sample_factor: 0,
                ..DecodedCacheConfig::default()
            },
            DecodedCacheConfig {
                sketch_counters: 1 << 27,
                ..DecodedCacheConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    /// Weighted admission: a heavy cold candidate must beat every victim
    /// its admission would evict, not just the first one.
    #[test]
    fn heavy_candidate_must_beat_every_victim_it_would_evict() {
        let c = cache(400, CachePolicy::ScanResistant);
        // Four warm small blocks; the *first* victim is cold but the ones
        // behind it are warm.
        c.insert((1, 0), val(0), 100, SC); // stays cold (freq 1)
        for b in 1..4 {
            c.insert((1, b), val(b), 100, SC);
            for _ in 0..4 {
                c.get((1, b), SC);
            }
        }
        // A 300-byte cold candidate ties the cold first victim but would
        // also have to evict two warm blocks — rejected.
        let before = c.stats().admission_rejected;
        c.insert((2, 0), val(9), 300, SC);
        assert_eq!(c.stats().admission_rejected, before + 1);
        assert!(!c.contains((2, 0)));
        assert!(c.contains((1, 1)) && c.contains((1, 2)) && c.contains((1, 3)));
    }

    /// Displacement-cascade guard: when an inspected victim displaces the
    /// protected tail instead of dying, eviction frees fewer bytes than the
    /// admission walk assumed and reaches victims the filter never compared.
    /// The late duel must then back the candidate out rather than evict a
    /// block hotter than it.
    #[test]
    fn admission_backs_out_when_displacement_reaches_hotter_victims() {
        let c = cache(400, CachePolicy::ScanResistant); // protected cap 200
                                                        // Idle protected tail P: small (40 B), freq 2.
        c.insert((1, 9), val(9), 40, PT);
        c.get((1, 9), PT);
        // Probation LRU order [A, B]: A warm (freq 3), B hot (freq 9).
        c.insert((1, 0), val(0), 100, SC);
        for _ in 0..2 {
            c.get((1, 0), SC);
        }
        c.insert((1, 1), val(1), 100, SC);
        for _ in 0..8 {
            c.get((1, 1), SC);
        }
        // Candidate ties A (freq 3) and needs 90 B freed, so the filter
        // inspects only A — but A displaces P (freeing just 40 B) and the
        // old loop would go on to disturb B (freq 9).
        for _ in 0..2 {
            c.get((2, 0), SC);
        }
        let before = c.stats().admission_rejected;
        c.insert((2, 0), val(7), 250, SC);
        assert_eq!(c.stats().admission_rejected, before + 1);
        assert!(!c.contains((2, 0)), "candidate backed out mid-eviction");
        assert!(c.contains((1, 1)), "hot block B must not be disturbed");
        assert!(c.contains((1, 0)), "A earned protection via displacement");
        assert!(c.stats().used_bytes <= 400);
    }

    /// If evict_one displaces the candidate itself into protected while the
    /// duel is armed, the back-out must become a no-op (the candidate earned
    /// its place) instead of decrementing `insertions` and counting a
    /// spurious `admission_rejected` for a resident entry.
    #[test]
    fn duel_disarms_when_candidate_is_displaced_into_protected() {
        let c = DecodedBlockCache::new(DecodedCacheConfig {
            capacity_bytes: 1000,
            shards: 1,
            policy: CachePolicy::ScanResistant,
            protected_fraction: 0.75,
            sketch_counters: 1 << 16,
            ..DecodedCacheConfig::default()
        });
        // Protected: idle tail e1 (40 B, freq 1) and hot e2 (400 B, freq 7).
        c.insert((1, 1), val(1), 40, PT);
        c.get((1, 1), PT);
        c.insert((1, 2), val(2), 400, PT);
        for _ in 0..7 {
            c.get((1, 2), PT);
        }
        // One cold probation block, then a hot heavy candidate: the filter
        // inspects only the cold block, the candidate displaces e1 (probation
        // drains to it alone), and rebalance demotes hot e2 into probation
        // while the duel is still armed.
        c.insert((2, 1), val(3), 100, SC);
        for _ in 0..3 {
            c.get((3, 0), SC);
        }
        let before = c.stats();
        c.insert((3, 0), val(4), 650, SC);
        let after = c.stats();
        assert_eq!(
            after.admission_rejected, before.admission_rejected,
            "no spurious rejection for an admitted candidate"
        );
        assert_eq!(after.insertions, before.insertions + 1);
        assert!(c.contains((1, 2)), "hot e2 survives via its own duel");
        assert!(!c.contains((3, 0)), "candidate lost to the hotter e2");
        assert!(after.used_bytes <= 1000);
    }

    /// The infallible constructor clamps out-of-range knobs instead of
    /// accepting them verbatim (validate()/reconfigure() reject the same
    /// configs with an error).
    #[test]
    fn new_clamps_out_of_range_config() {
        // An absurd sketch size must not allocate gigabytes; a nonsense
        // protected fraction must not disable (0) or overflow (≥ 1) the
        // protected cap. Behaviourally: promotion still works.
        let c = DecodedBlockCache::new(DecodedCacheConfig {
            capacity_bytes: 1000,
            shards: 0,
            protected_fraction: 7.5,
            sketch_sample_factor: 0,
            sketch_counters: usize::MAX,
            ..DecodedCacheConfig::default()
        });
        c.insert((1, 0), val(0), 100, PT);
        c.get((1, 0), PT);
        let s = c.stats();
        assert_eq!(
            (s.protected_bytes, s.used_bytes),
            (100, 100),
            "clamped fraction still allows promotion: {s:?}"
        );
    }

    #[test]
    fn disabled_cache_is_inert() {
        let c = DecodedBlockCache::with_capacity(0, 4);
        assert!(c.is_disabled());
        c.insert((1, 0), val(1), 10, PT);
        assert!(c.get((1, 0), PT).is_none());
        assert!(!c.contains((1, 0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }
}
