//! A sharded LRU cache of *decoded* data blocks.
//!
//! The tiered chunk caches hold raw bytes; every block access on top of
//! them still pays a parse (offset-trailer validation + `Bytes` slicing).
//! For index-structure-aware read paths that re-visit the same block many
//! times — binary-search probes, adjacent range-scan positions, batched
//! lookups with sorted keys — caching the *parsed* representation removes
//! that repeated work entirely (the MV-PBT observation that structure-aware
//! block caching, not raw-byte caching, is the decisive read-path lever).
//!
//! The cache is value-type-agnostic (`Arc<dyn Any + Send + Sync>`) because
//! the decoded block type lives upstream of this crate; `umzi-run` stores
//! its `DataBlock` here keyed by `(object handle, data block number)`.
//! Sharding keeps lock hold times negligible under the parallel multi-run
//! scan fan-out.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::cache::ChunkKey;
use crate::lru::LruMap;
use crate::stats::DecodedCacheStats;

/// A decoded block plus its accounting weight (the raw block size).
type Slot = (std::sync::Arc<dyn Any + Send + Sync>, u64);

#[derive(Default)]
struct Shard {
    map: LruMap<ChunkKey, Slot>,
    used_bytes: u64,
}

/// Sharded LRU over decoded blocks. All operations are O(1) per shard.
pub struct DecodedBlockCache {
    shards: Vec<Mutex<Shard>>,
    /// Total capacity in (raw-block) bytes, split evenly across shards.
    capacity: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for DecodedBlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodedBlockCache")
            .field("capacity", &self.capacity.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish()
    }
}

impl DecodedBlockCache {
    /// Create a cache with `capacity` bytes split over `shards` shards.
    pub fn new(capacity: u64, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity: AtomicU64::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: ChunkKey) -> &Mutex<Shard> {
        // Fibonacci-hash the (handle, block) pair so consecutive blocks of
        // one object spread across shards.
        let h = (key.0 ^ (u64::from(key.1) << 32)).wrapping_mul(0x9E3779B97F4A7C15);
        &self.shards[(h >> 48) as usize % self.shards.len()]
    }

    fn per_shard_capacity(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed) / self.shards.len() as u64
    }

    /// Whether the cache is disabled (zero capacity).
    pub fn is_disabled(&self) -> bool {
        self.capacity.load(Ordering::Relaxed) == 0
    }

    /// Look up a decoded block, refreshing recency. A disabled cache
    /// answers `None` without touching shard locks or counters.
    pub fn get(&self, key: ChunkKey) -> Option<std::sync::Arc<dyn Any + Send + Sync>> {
        if self.is_disabled() {
            return None;
        }
        let found = self
            .shard_of(key)
            .lock()
            .map
            .get(&key)
            .map(|(v, _)| v.clone());
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a decoded block with its accounting weight, evicting LRU
    /// entries of the same shard while over per-shard capacity.
    pub fn insert(&self, key: ChunkKey, value: std::sync::Arc<dyn Any + Send + Sync>, weight: u64) {
        if self.is_disabled() {
            return;
        }
        let cap = self.per_shard_capacity();
        if weight > cap {
            return; // would immediately evict everything; not cacheable
        }
        let mut evicted = 0u64;
        {
            let mut shard = self.shard_of(key).lock();
            if let Some((_, old_w)) = shard.map.insert(key, (value, weight)) {
                shard.used_bytes -= old_w;
            }
            shard.used_bytes += weight;
            while shard.used_bytes > cap {
                match shard.map.pop_lru() {
                    Some((_, (_, w))) => {
                        shard.used_bytes -= w;
                        evicted += 1;
                    }
                    None => break,
                }
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drop every cached block of one object (purge / delete).
    pub fn invalidate_object(&self, handle: u64) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut s = shard.lock();
            let gone = s.map.drain_filter(|&(h, _), _| h == handle);
            s.used_bytes -= gone.iter().map(|(_, (_, w))| w).sum::<u64>();
            dropped += gone.len();
        }
        dropped
    }

    /// Drop everything (simulated crash).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.used_bytes = 0;
        }
    }

    /// Re-target the total capacity; over-full shards shrink on their next
    /// insert.
    pub fn set_capacity(&self, bytes: u64) {
        self.capacity.store(bytes, Ordering::Relaxed);
    }

    /// Current statistics.
    pub fn stats(&self) -> DecodedCacheStats {
        let (mut entries, mut used) = (0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock();
            entries += s.map.len() as u64;
            used += s.used_bytes;
        }
        DecodedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            used_bytes: used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn val(n: u32) -> Arc<dyn Any + Send + Sync> {
        Arc::new(n)
    }

    #[test]
    fn get_insert_downcast_roundtrip() {
        let c = DecodedBlockCache::new(1 << 20, 4);
        c.insert((1, 0), val(42), 100);
        let got = c.get((1, 0)).unwrap().downcast::<u32>().unwrap();
        assert_eq!(*got, 42);
        assert!(c.get((1, 1)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.used_bytes), (1, 1, 1, 100));
    }

    #[test]
    fn eviction_under_pressure_is_lru() {
        let c = DecodedBlockCache::new(250, 1); // one shard: deterministic
        c.insert((1, 0), val(0), 100);
        c.insert((1, 1), val(1), 100);
        c.get((1, 0)); // (1,1) becomes LRU
        c.insert((1, 2), val(2), 100);
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((1, 1)).is_none(), "LRU entry must be evicted");
        assert!(c.get((1, 2)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.stats().used_bytes <= 250);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let c = DecodedBlockCache::new(100, 1);
        c.insert((1, 0), val(1), 200);
        assert!(c.get((1, 0)).is_none());
        assert_eq!(c.stats().used_bytes, 0);
    }

    #[test]
    fn invalidate_object_drops_all_its_blocks() {
        let c = DecodedBlockCache::new(1 << 20, 8);
        for b in 0..32 {
            c.insert((7, b), val(b), 10);
            c.insert((8, b), val(b), 10);
        }
        assert_eq!(c.invalidate_object(7), 32);
        assert!(c.get((7, 3)).is_none());
        assert!(c.get((8, 3)).is_some());
        assert_eq!(c.stats().used_bytes, 320);
        c.clear();
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn replacing_a_key_accounts_weight_once() {
        let c = DecodedBlockCache::new(1000, 1);
        c.insert((1, 0), val(1), 100);
        c.insert((1, 0), val(2), 300);
        assert_eq!(c.stats().used_bytes, 300);
        assert_eq!(*c.get((1, 0)).unwrap().downcast::<u32>().unwrap(), 2);
    }
}
