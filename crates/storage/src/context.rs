//! Query deadlines, cooperative cancellation, and priority classes.
//!
//! A [`QueryContext`] is created at the engine API (deadline + shared
//! [`CancelToken`] + [`Priority`]) and travels down through the query,
//! reconcile, run, and storage layers. Two propagation channels exist:
//!
//! 1. **Explicit**: upper layers pass `&QueryContext` through their own
//!    signatures where they already thread per-query state.
//! 2. **Ambient**: a thread-local stack installed via [`enter`] so deep
//!    leaf code (`with_retry` backoff loops, block-iterator refills,
//!    prefetch staging) can consult the active context without plumbing a
//!    parameter through every storage trait. Worker threads spawned for a
//!    partitioned scan re-install the parent's context with [`enter`]
//!    before doing any IO; maintenance daemons never install one, so
//!    background IO keeps its full retry budget.
//!
//! Checks are *cooperative checkpoints*: hot loops call
//! [`QueryContext::check`] (or [`check_current`]) at block boundaries and
//! retry-sleep decisions, which observes the cancellation token exactly
//! once per call. [`CancelToken::trip_after`] arms a deterministic
//! countdown over those observations so tests can fire cancellation at the
//! N-th checkpoint instead of relying on wall-clock races.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::StorageError;

/// Shared-storage operation classes, used to attribute retries and to give
/// the circuit breaker independent per-class state (a sick manifest prefix
/// must not trip the breaker for block fetches, and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Run/groomed-block data reads and run object creation.
    BlockFetch,
    /// Manifest log records (put/list/get/delete) and recovery listings.
    Manifest,
    /// Live-zone delta objects (shard WAL-ish state).
    Delta,
    /// Garbage-collection deletes of retired runs/blocks/deltas.
    Gc,
}

impl OpClass {
    /// Number of classes (array-index space).
    pub const COUNT: usize = 4;

    /// All classes in index order.
    pub const ALL: [OpClass; Self::COUNT] = [
        OpClass::BlockFetch,
        OpClass::Manifest,
        OpClass::Delta,
        OpClass::Gc,
    ];

    /// Stable dense index for per-class counter arrays.
    pub fn index(self) -> usize {
        match self {
            OpClass::BlockFetch => 0,
            OpClass::Manifest => 1,
            OpClass::Delta => 2,
            OpClass::Gc => 3,
        }
    }

    /// Metric-label spelling.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::BlockFetch => "block_fetch",
            OpClass::Manifest => "manifest",
            OpClass::Delta => "delta",
            OpClass::Gc => "gc",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    /// When positive, each observed checkpoint decrements this; the
    /// observation that drives it to zero trips the token. Zero or negative
    /// means the countdown is disarmed.
    countdown: AtomicI64,
    /// Total checkpoints observed (test introspection: "how many
    /// cancellation points does this query pass through?").
    observed: AtomicU64,
}

/// A shareable cancellation flag. Cloning is cheap (one `Arc`); all clones
/// observe the same flag, so the engine can hand one token to a query and
/// keep a clone to cancel it from another thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that trips itself at the `n`-th observed checkpoint
    /// (1-based). `trip_after(1)` cancels at the very first cooperative
    /// check; `trip_after(0)` behaves like an already-cancelled token.
    /// Deterministic: no timing involved.
    pub fn trip_after(n: u64) -> Self {
        let t = Self::new();
        if n == 0 {
            t.cancel();
        } else {
            t.inner
                .countdown
                .store(i64::try_from(n).unwrap_or(i64::MAX), Ordering::SeqCst);
        }
        t
    }

    /// Trip the token. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token has tripped. Pure observer — does not count as a
    /// checkpoint and never advances a [`trip_after`](Self::trip_after)
    /// countdown.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Checkpoints observed so far across all clones.
    pub fn checkpoints_observed(&self) -> u64 {
        self.inner.observed.load(Ordering::SeqCst)
    }

    /// Record one cooperative checkpoint and report whether the token is
    /// (now) cancelled. Drives the `trip_after` countdown.
    fn observe_checkpoint(&self) -> bool {
        self.inner.observed.fetch_add(1, Ordering::SeqCst);
        if self.inner.countdown.load(Ordering::SeqCst) > 0
            && self.inner.countdown.fetch_sub(1, Ordering::SeqCst) == 1
        {
            self.cancel();
        }
        self.is_cancelled()
    }
}

/// Scheduling class of a query, consumed by the read admission controller:
/// point lookups are never queued behind analytical scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Priority {
    /// Interactive/transactional traffic (point and small range lookups).
    #[default]
    Interactive,
    /// Large analytical scans — subject to concurrency limits and shedding.
    Analytical,
    /// Background/maintenance work.
    Background,
}

/// Per-query deadline + cancellation + priority bundle.
///
/// Cheap to clone (`Option<Instant>` + one `Arc`). The default context is
/// unbounded: no deadline, no cancellation, interactive priority — exactly
/// the pre-existing behavior, so legacy call paths lose nothing.
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    priority: Priority,
}

impl QueryContext {
    /// No deadline, no cancellation, interactive priority.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A context whose deadline is `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self::deadline_at(Instant::now() + budget)
    }

    /// A context with an absolute deadline.
    pub fn deadline_at(deadline: Instant) -> Self {
        QueryContext {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Set the priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The priority class.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Whether this context can never expire or be cancelled.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Remaining budget until the deadline (`None` = no deadline;
    /// `Some(ZERO)` = already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the deadline has passed.
    pub fn is_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the cancellation token has tripped (pure observer).
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Cooperative checkpoint: observe the cancellation token once, then
    /// the deadline. Returns the typed error naming the operation at which
    /// the query gave up. Cancellation wins over expiry when both hold.
    pub fn check(&self, op: &'static str) -> Result<(), StorageError> {
        if let Some(t) = &self.cancel {
            if t.observe_checkpoint() {
                return Err(StorageError::Cancelled { op });
            }
        }
        if self.is_expired() {
            return Err(StorageError::DeadlineExceeded { op });
        }
        Ok(())
    }
}

thread_local! {
    static AMBIENT: RefCell<Vec<QueryContext>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard that pops the ambient context installed by [`enter`].
#[derive(Debug)]
pub struct ContextGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        AMBIENT.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Install `ctx` as this thread's ambient query context until the returned
/// guard drops. Nests: an inner `enter` shadows the outer context.
pub fn enter(ctx: QueryContext) -> ContextGuard {
    AMBIENT.with(|s| s.borrow_mut().push(ctx));
    ContextGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// The ambient context installed on this thread, or an unbounded one.
/// Use this to capture the caller's context before handing work to a
/// worker thread (which then [`enter`]s the clone).
pub fn current() -> QueryContext {
    current_if_set().unwrap_or_default()
}

/// The ambient context, if one is installed on this thread.
pub fn current_if_set() -> Option<QueryContext> {
    AMBIENT.with(|s| s.borrow().last().cloned())
}

/// Cooperative checkpoint against the ambient context. Free (two
/// thread-local reads) when no context is installed — the hot-path cost on
/// every legacy call. `op` names the operation for the typed error.
pub fn check_current(op: &'static str) -> Result<(), StorageError> {
    AMBIENT.with(|s| match s.borrow().last() {
        Some(ctx) => ctx.check(op),
        None => Ok(()),
    })
}

/// Remaining deadline budget of the ambient context (`None` = unbounded).
pub fn current_remaining() -> Option<Duration> {
    AMBIENT.with(|s| s.borrow().last().and_then(QueryContext::remaining))
}

/// Whether the ambient context is already cancelled or expired. Pure
/// observer — records no checkpoint. The gate for advisory work (prefetch
/// refills) that should be skipped, not failed, when the query is done.
pub fn current_aborted() -> bool {
    AMBIENT.with(|s| {
        s.borrow()
            .last()
            .is_some_and(|c| c.is_cancelled() || c.is_expired())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_context_never_trips() {
        let ctx = QueryContext::unbounded();
        assert!(ctx.is_unbounded());
        for _ in 0..1000 {
            ctx.check("op").unwrap();
        }
        assert!(!ctx.is_expired());
        assert!(!ctx.is_cancelled());
    }

    #[test]
    fn deadline_expiry_is_typed() {
        let ctx = QueryContext::deadline_at(Instant::now() - Duration::from_millis(1));
        assert!(ctx.is_expired());
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
        match ctx.check("fetch") {
            Err(StorageError::DeadlineExceeded { op }) => assert_eq!(op, "fetch"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn cancel_token_shared_across_clones() {
        let t = CancelToken::new();
        let ctx = QueryContext::unbounded().with_cancel(t.clone());
        ctx.check("op").unwrap();
        t.cancel();
        match ctx.check("op") {
            Err(StorageError::Cancelled { op }) => assert_eq!(op, "op"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn trip_after_counts_checkpoints_deterministically() {
        let t = CancelToken::trip_after(3);
        let ctx = QueryContext::unbounded().with_cancel(t.clone());
        ctx.check("a").unwrap();
        ctx.check("b").unwrap();
        // Pure observers do not advance the countdown.
        assert!(!t.is_cancelled());
        assert!(ctx.check("c").is_err());
        assert_eq!(t.checkpoints_observed(), 3);

        let zero = CancelToken::trip_after(0);
        assert!(zero.is_cancelled());
    }

    #[test]
    fn ambient_stack_nests_and_restores() {
        assert!(current_if_set().is_none());
        check_current("noctx").unwrap();
        let outer = QueryContext::with_deadline(Duration::from_secs(60));
        {
            let _g = enter(outer.clone());
            assert!(current_if_set().is_some());
            assert!(current_remaining().is_some());
            {
                let cancelled = QueryContext::unbounded().with_cancel(CancelToken::trip_after(0));
                let _g2 = enter(cancelled);
                assert!(check_current("inner").is_err());
            }
            // Outer context restored.
            check_current("outer").unwrap();
        }
        assert!(current_if_set().is_none());
    }

    #[test]
    fn op_class_index_roundtrip() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.label().is_empty());
        }
    }
}
