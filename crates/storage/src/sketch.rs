//! A TinyLFU-style frequency sketch: a 4-bit count–min sketch with
//! periodic halving, shared by every cache shard.
//!
//! The sketch approximates "how often was this block touched recently?"
//! in O(1) space per counter. Four independent hash rows bound
//! over-estimation (count–min takes the minimum), 4-bit counters saturate
//! at 15, and once the number of recorded accesses reaches the *sample
//! size* every counter is halved — an exponential-decay aging scheme, so
//! the sketch tracks recent popularity rather than all-time popularity.
//! This is the admission filter's brain: the segmented LRU asks it whether
//! a cold candidate block is likely to out-earn the eviction victim.
//!
//! The table is striped into `AtomicU64` words (16 nibble counters per
//! word) mutated with CAS loops, so *one* sketch serves all shards
//! concurrently instead of each shard keeping a private, blinkered copy
//! under its lock: a block's popularity is judged against global traffic,
//! and the per-shard memory multiplier is gone. Counter updates and the
//! halving sweep are racy-by-design (a concurrent increment may land
//! before or after the sweep touches its word) — admission decisions
//! tolerate estimates that are off by one.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters per 64-bit word (16 nibbles).
const COUNTERS_PER_WORD: u64 = 16;
/// A saturated 4-bit counter.
const MAX_COUNT: u64 = 15;
/// Per-row seeds (odd constants from SplitMix64 / golden-ratio family).
const SEEDS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xD6E8_FEB8_6659_FD93,
];

/// 4-bit count–min sketch with reset-to-half aging, safe for concurrent
/// use from every cache shard.
#[derive(Debug)]
pub(crate) struct FrequencySketch {
    /// Each word packs 16 4-bit counters.
    table: Vec<AtomicU64>,
    /// `table.len() - 1`; the table length is a power of two.
    word_mask: u64,
    /// Accesses recorded since the last halving.
    additions: AtomicU64,
    /// Halve all counters once `additions` reaches this.
    sample_size: u64,
    /// Completed halving sweeps (observability: how often history decayed).
    halvings: AtomicU64,
}

impl FrequencySketch {
    /// A sketch with roughly `counters` counters (rounded up to a
    /// power-of-two word count) that halves after `sample_factor ×
    /// counters` recorded accesses.
    pub(crate) fn new(counters: usize, sample_factor: u32) -> Self {
        let words = (counters as u64)
            .div_ceil(COUNTERS_PER_WORD)
            .next_power_of_two()
            .max(1);
        let effective = words * COUNTERS_PER_WORD;
        Self {
            table: (0..words).map(|_| AtomicU64::new(0)).collect(),
            word_mask: words - 1,
            additions: AtomicU64::new(0),
            sample_size: (effective * u64::from(sample_factor.max(1))).max(16),
            halvings: AtomicU64::new(0),
        }
    }

    /// The four (word, nibble) cells one key hashes to.
    fn cells(&self, hash: u64) -> [(usize, u32); 4] {
        let mut out = [(0usize, 0u32); 4];
        for (i, seed) in SEEDS.iter().enumerate() {
            let h = (hash ^ seed).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            // Multiplicative mixing concentrates entropy in the high bits;
            // fold them down before masking the word index.
            let h = h ^ (h >> 33);
            let word = (h & self.word_mask) as usize;
            let nibble = ((h >> 44) & 0xF) as u32;
            out[i] = (word, nibble);
        }
        out
    }

    fn read(&self, word: usize, nibble: u32) -> u64 {
        (self.table[word].load(Ordering::Relaxed) >> (nibble * 4)) & MAX_COUNT
    }

    /// Record one access.
    pub(crate) fn increment(&self, hash: u64) {
        let mut added = false;
        for (word, nibble) in self.cells(hash) {
            // CAS loop: bump the nibble unless saturated. A lost race just
            // retries against the fresh word value.
            let slot = &self.table[word];
            let mut cur = slot.load(Ordering::Relaxed);
            loop {
                if (cur >> (nibble * 4)) & MAX_COUNT >= MAX_COUNT {
                    break;
                }
                match slot.compare_exchange_weak(
                    cur,
                    cur + (1u64 << (nibble * 4)),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        added = true;
                        break;
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
        if added {
            let adds = self.additions.fetch_add(1, Ordering::Relaxed) + 1;
            // Exactly one thread wins the CAS at the crossing and runs the
            // halving sweep; losers see the already-halved addition count.
            if adds >= self.sample_size
                && self
                    .additions
                    .compare_exchange(adds, adds / 2, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                self.halve();
            }
        }
    }

    /// Estimated access frequency (min over the four rows; ≤ 15).
    pub(crate) fn estimate(&self, hash: u64) -> u64 {
        self.cells(hash)
            .iter()
            .map(|&(w, n)| self.read(w, n))
            .min()
            .unwrap_or(0)
    }

    /// Halve every counter (aging): history decays exponentially, so a
    /// once-hot block stops outranking the current working set.
    fn halve(&self) {
        for word in &self.table {
            // Halve all 16 nibbles at once: shift, then clear the bit that
            // bled in from each nibble's upper neighbour. CAS so a racing
            // increment is not silently dropped wholesale.
            let mut cur = word.load(Ordering::Relaxed);
            loop {
                let halved = (cur >> 1) & 0x7777_7777_7777_7777;
                match word.compare_exchange_weak(cur, halved, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
        self.halvings.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed halving sweeps.
    pub(crate) fn halvings(&self) -> u64 {
        self.halvings.load(Ordering::Relaxed)
    }

    /// Number of non-zero counters (a full-table scan; observability only).
    pub(crate) fn occupancy(&self) -> u64 {
        self.table
            .iter()
            .map(|w| {
                let w = w.load(Ordering::Relaxed);
                (0..COUNTERS_PER_WORD)
                    .filter(|n| (w >> (n * 4)) & MAX_COUNT != 0)
                    .count() as u64
            })
            .sum()
    }

    /// Total counters in the table.
    #[cfg(test)]
    pub(crate) fn total_counters(&self) -> u64 {
        self.table.len() as u64 * COUNTERS_PER_WORD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_keys_outrank_cold_keys() {
        let s = FrequencySketch::new(1024, 8);
        for _ in 0..10 {
            s.increment(42);
        }
        s.increment(7);
        assert!(s.estimate(42) > s.estimate(7));
        assert_eq!(s.estimate(999), 0, "never-seen key estimates zero");
    }

    #[test]
    fn counters_saturate_at_fifteen() {
        let s = FrequencySketch::new(64, 1024);
        for _ in 0..1000 {
            s.increment(1);
        }
        assert!(s.estimate(1) <= 15);
    }

    #[test]
    fn halving_decays_history() {
        let s = FrequencySketch::new(64, 1);
        for _ in 0..10 {
            s.increment(5);
        }
        let before = s.estimate(5);
        // Flood with other keys until the sample size trips halving (the
        // small sample factor makes this fast).
        for k in 100..3000u64 {
            s.increment(k);
        }
        assert!(
            s.estimate(5) < before.max(1),
            "aging must shrink an idle key's estimate: {} -> {}",
            before,
            s.estimate(5)
        );
        assert!(s.halvings() >= 1, "the sweep was counted");
    }

    #[test]
    fn word_count_rounds_to_power_of_two() {
        let s = FrequencySketch::new(100, 8);
        assert!(s.table.len().is_power_of_two());
        let s = FrequencySketch::new(0, 8);
        assert_eq!(s.table.len(), 1, "degenerate sizing still works");
    }

    #[test]
    fn occupancy_counts_nonzero_counters() {
        let s = FrequencySketch::new(1024, 8);
        assert_eq!(s.occupancy(), 0);
        s.increment(1);
        // One access touches ≤ 4 distinct cells (rows may collide).
        let occ = s.occupancy();
        assert!((1..=4).contains(&occ), "occupancy {occ}");
        assert_eq!(s.total_counters() % COUNTERS_PER_WORD, 0);
    }

    #[test]
    fn concurrent_increments_keep_estimates_sane() {
        use std::sync::Arc;
        let s = Arc::new(FrequencySketch::new(4096, 64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        s.increment(i % 64 + t * 1000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Every hammered key reads a sane, saturation-bounded estimate.
        for k in 0..64u64 {
            assert!(s.estimate(k) <= 15);
        }
        assert!(s.occupancy() > 0);
    }
}
