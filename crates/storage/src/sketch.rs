//! A TinyLFU-style frequency sketch: a 4-bit count–min sketch with
//! periodic halving.
//!
//! The sketch approximates "how often was this block touched recently?"
//! in O(1) space per counter. Four independent hash rows bound
//! over-estimation (count–min takes the minimum), 4-bit counters saturate
//! at 15, and once the number of recorded accesses reaches the *sample
//! size* every counter is halved — an exponential-decay aging scheme, so
//! the sketch tracks recent popularity rather than all-time popularity.
//! This is the admission filter's brain: the segmented LRU asks it whether
//! a cold candidate block is likely to out-earn the eviction victim.
//!
//! Not thread-safe by design: each cache shard owns one sketch and
//! mutates it under the shard lock.

/// Counters per 64-bit word (16 nibbles).
const COUNTERS_PER_WORD: u64 = 16;
/// A saturated 4-bit counter.
const MAX_COUNT: u64 = 15;
/// Per-row seeds (odd constants from SplitMix64 / golden-ratio family).
const SEEDS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xD6E8_FEB8_6659_FD93,
];

/// 4-bit count–min sketch with reset-to-half aging.
#[derive(Debug)]
pub(crate) struct FrequencySketch {
    /// Each word packs 16 4-bit counters.
    table: Vec<u64>,
    /// `table.len() - 1`; the table length is a power of two.
    word_mask: u64,
    /// Accesses recorded since the last halving.
    additions: u64,
    /// Halve all counters once `additions` reaches this.
    sample_size: u64,
}

impl FrequencySketch {
    /// A sketch with roughly `counters` counters (rounded up to a
    /// power-of-two word count) that halves after `sample_factor ×
    /// counters` recorded accesses.
    pub(crate) fn new(counters: usize, sample_factor: u32) -> Self {
        let words = (counters as u64)
            .div_ceil(COUNTERS_PER_WORD)
            .next_power_of_two()
            .max(1);
        let effective = words * COUNTERS_PER_WORD;
        Self {
            table: vec![0u64; words as usize],
            word_mask: words - 1,
            additions: 0,
            sample_size: (effective * u64::from(sample_factor.max(1))).max(16),
        }
    }

    /// The four (word, nibble) cells one key hashes to.
    fn cells(&self, hash: u64) -> [(usize, u32); 4] {
        let mut out = [(0usize, 0u32); 4];
        for (i, seed) in SEEDS.iter().enumerate() {
            let h = (hash ^ seed).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            // Multiplicative mixing concentrates entropy in the high bits;
            // fold them down before masking the word index.
            let h = h ^ (h >> 33);
            let word = (h & self.word_mask) as usize;
            let nibble = ((h >> 44) & 0xF) as u32;
            out[i] = (word, nibble);
        }
        out
    }

    fn read(&self, word: usize, nibble: u32) -> u64 {
        (self.table[word] >> (nibble * 4)) & MAX_COUNT
    }

    /// Record one access.
    pub(crate) fn increment(&mut self, hash: u64) {
        let mut added = false;
        for (word, nibble) in self.cells(hash) {
            if self.read(word, nibble) < MAX_COUNT {
                self.table[word] += 1u64 << (nibble * 4);
                added = true;
            }
        }
        if added {
            self.additions += 1;
            if self.additions >= self.sample_size {
                self.halve();
            }
        }
    }

    /// Estimated access frequency (min over the four rows; ≤ 15).
    pub(crate) fn estimate(&self, hash: u64) -> u64 {
        self.cells(hash)
            .iter()
            .map(|&(w, n)| self.read(w, n))
            .min()
            .unwrap_or(0)
    }

    /// Halve every counter (aging): history decays exponentially, so a
    /// once-hot block stops outranking the current working set.
    fn halve(&mut self) {
        for word in &mut self.table {
            // Halve all 16 nibbles at once: shift, then clear the bit that
            // bled in from each nibble's upper neighbour.
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.additions /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_keys_outrank_cold_keys() {
        let mut s = FrequencySketch::new(1024, 8);
        for _ in 0..10 {
            s.increment(42);
        }
        s.increment(7);
        assert!(s.estimate(42) > s.estimate(7));
        assert_eq!(s.estimate(999), 0, "never-seen key estimates zero");
    }

    #[test]
    fn counters_saturate_at_fifteen() {
        let mut s = FrequencySketch::new(64, 1024);
        for _ in 0..1000 {
            s.increment(1);
        }
        assert!(s.estimate(1) <= 15);
    }

    #[test]
    fn halving_decays_history() {
        let mut s = FrequencySketch::new(64, 1);
        for _ in 0..10 {
            s.increment(5);
        }
        let before = s.estimate(5);
        // Flood with other keys until the sample size trips halving (the
        // small sample factor makes this fast).
        for k in 100..3000u64 {
            s.increment(k);
        }
        assert!(
            s.estimate(5) < before.max(1),
            "aging must shrink an idle key's estimate: {} -> {}",
            before,
            s.estimate(5)
        );
    }

    #[test]
    fn word_count_rounds_to_power_of_two() {
        let s = FrequencySketch::new(100, 8);
        assert!(s.table.len().is_power_of_two());
        let s = FrequencySketch::new(0, 8);
        assert_eq!(s.table.len(), 1, "degenerate sizing still works");
    }
}
