//! Operation statistics for the storage hierarchy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters backing one cache tier's statistics.
#[derive(Debug, Default)]
pub(crate) struct TierCounters {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub insertions: AtomicU64,
    pub evictions: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
}

impl TierCounters {
    pub fn snapshot(&self, used_bytes: u64, pinned_bytes: u64, entries: u64) -> TierStats {
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            used_bytes,
            pinned_bytes,
            entries,
        }
    }
}

/// Point-in-time statistics of a cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups served from this tier.
    pub hits: u64,
    /// Lookups that fell through to the next tier.
    pub misses: u64,
    /// Entries inserted (including promotions).
    pub insertions: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
    /// Bytes served from this tier.
    pub bytes_read: u64,
    /// Bytes written into this tier.
    pub bytes_written: u64,
    /// Current resident bytes.
    pub used_bytes: u64,
    /// Bytes held by pinned (non-evictable) entries.
    pub pinned_bytes: u64,
    /// Current resident entries.
    pub entries: u64,
}

impl TierStats {
    /// Hit ratio in `[0, 1]`; `None` when no lookups happened.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Atomic counters for shared storage.
#[derive(Debug, Default)]
pub(crate) struct SharedCounters {
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub deletes: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
}

impl SharedCounters {
    pub fn snapshot(&self, charged: Duration) -> SharedStats {
        SharedStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            charged_latency: charged,
        }
    }
}

/// Point-in-time statistics of the shared storage layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedStats {
    /// Read operations (whole-object or range).
    pub reads: u64,
    /// Object creations.
    pub writes: u64,
    /// Object deletions.
    pub deletes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Accumulated virtual latency charged by the latency model.
    pub charged_latency: Duration,
}

/// Hit/miss counters of one access pattern against the decoded cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the chunk tiers.
    pub misses: u64,
}

impl PatternCounters {
    /// Hit ratio in `[0, 1]`; `None` when no lookups happened.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Point-in-time statistics of the decoded-block cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodedCacheStats {
    /// Lookups served from the cache (no chunk read, no re-parse), all
    /// patterns combined.
    pub hits: u64,
    /// Lookups that fell through to the chunk tiers, all patterns combined.
    pub misses: u64,
    /// Point/batch-lookup traffic.
    pub point: PatternCounters,
    /// Range-scan traffic.
    pub scan: PatternCounters,
    /// Background-maintenance traffic (merge, groom, fence rebuilds).
    pub maintenance: PatternCounters,
    /// Blocks inserted.
    pub insertions: u64,
    /// Blocks evicted under capacity pressure.
    pub evictions: u64,
    /// Inserts rejected by the frequency-sketch admission filter (the
    /// candidate's estimate lost against the eviction victim's).
    pub admission_rejected: u64,
    /// Blocks promoted into the protected segment (point re-references and
    /// frequency-winning probation victims).
    pub promotions: u64,
    /// Blocks demoted from protected back to probation (segment cap).
    pub demotions: u64,
    /// Inserts that bypassed the cache entirely: maintenance traffic, plus
    /// the tail of any range scan past its `scan_bypass_bytes` budget.
    pub bypassed_inserts: u64,
    /// Currently resident blocks.
    pub entries: u64,
    /// Accounting weight (raw-block bytes) of resident blocks.
    pub used_bytes: u64,
    /// Bytes resident in the probation segment.
    pub probation_bytes: u64,
    /// Bytes resident in the protected segment.
    pub protected_bytes: u64,
    /// Non-zero counters in the shared frequency sketch (a full-table scan,
    /// computed at snapshot time).
    pub sketch_occupancy: u64,
    /// Completed halving sweeps of the shared frequency sketch — how often
    /// recorded history has decayed.
    pub sketch_halvings: u64,
    /// Cumulative raw-block bytes handed to the cache after a decode
    /// upstream (admitted or not) — approximates total bytes parsed.
    pub decoded_bytes: u64,
}

impl DecodedCacheStats {
    /// Hit ratio in `[0, 1]` over all patterns; `None` when no lookups
    /// happened.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Combined statistics across the full hierarchy.
#[derive(Debug, Clone, Copy, Default)]
pub struct StorageStats {
    /// Memory tier.
    pub mem: TierStats,
    /// SSD tier.
    pub ssd: TierStats,
    /// Shared storage.
    pub shared: SharedStats,
    /// Decoded-block cache.
    pub decoded: DecodedCacheStats,
    /// Total `read_chunk` calls (block reads through the tiers, whichever
    /// tier served them) — the per-operation cost metric the read-path
    /// benchmarks and tests track.
    pub chunk_reads: u64,
    /// Virtual latency charged by the SSD tier.
    pub ssd_charged_latency: Duration,
    /// Shared-storage operations re-attempted after a transient failure.
    pub retries: u64,
    /// Operations that kept failing transiently until the retry budget ran
    /// out (the error then propagated to the caller).
    pub retries_exhausted: u64,
    /// `retries`, broken down per op class (indexed by
    /// [`OpClass::index`](crate::OpClass::index): block fetch / manifest /
    /// delta / GC) so breaker behavior is attributable.
    pub retries_by_class: [u64; 4],
    /// `retries_exhausted`, broken down per op class.
    pub retries_exhausted_by_class: [u64; 4],
    /// Retry sleeps clamped by a query deadline: the remaining budget was
    /// shorter than the next backoff step, so the operation returned
    /// `DeadlineExceeded` instead of sleeping past the deadline.
    pub deadline_aborted_retries: u64,
    /// Operations abandoned at a cooperative cancellation checkpoint inside
    /// the retry loop.
    pub cancelled_retries: u64,
    /// GC delete attempts that exhausted retries; the object name is parked
    /// in the leaked-object registry for the janitor to re-attempt.
    pub gc_delete_failures: u64,
    /// Leaked objects currently awaiting janitor re-delete.
    pub gc_leaked_outstanding: u64,
    /// Leaked objects the janitor successfully re-deleted (or found already
    /// gone).
    pub gc_leaked_reclaimed: u64,
    /// Circuit-breaker state per op class (0 = closed, 1 = open,
    /// 2 = half-open).
    pub breaker_state: [u8; 4],
    /// Cumulative breaker state transitions per op class.
    pub breaker_transitions: [u64; 4],
    /// Operations rejected fast by an open breaker, per op class.
    pub breaker_rejections: [u64; 4],
    /// Chunks re-fetched from shared storage after a checksum mismatch, to
    /// distinguish in-transit bit flips from at-rest corruption.
    pub corruption_refetches: u64,
    /// Chunks fetched ahead of demand by the readahead pipeline (batched
    /// shared-storage reads staged into the cache tiers).
    pub blocks_prefetched: u64,
    /// `read_chunk` calls served by a chunk that prefetch staged (the
    /// readahead paid off).
    pub prefetch_hits: u64,
    /// Prefetched chunks that aged out of the prefetch tracking window
    /// without ever serving a read — wasted IO; the signal for shrinking
    /// the readahead depth.
    pub prefetch_wasted: u64,
}

impl StorageStats {
    /// Total virtual latency charged across tiers.
    pub fn total_charged_latency(&self) -> Duration {
        self.ssd_charged_latency + self.shared.charged_latency
    }
}

/// A cheap sample of the storage counters a per-query trace attributes by
/// delta: probe once before the operation, once after, and subtract.
/// Unlike [`StorageStats`] this reads four atomics and takes no locks, so
/// it is safe on the query hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceProbe {
    /// Total `read_chunk` calls (block reads through the tiers).
    pub chunk_reads: u64,
    /// Decoded-cache hits across all access patterns.
    pub cache_hits: u64,
    /// Cumulative decoded bytes handed to the decoded cache.
    pub decoded_bytes: u64,
    /// Shared-storage operations re-attempted after transient failures.
    pub retries: u64,
}

impl TraceProbe {
    /// Counter deltas since `earlier` (saturating: counters only grow, but
    /// a probe pair straddling a concurrent reset must not wrap).
    pub fn since(&self, earlier: &TraceProbe) -> TraceProbe {
        TraceProbe {
            chunk_reads: self.chunk_reads.saturating_sub(earlier.chunk_reads),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            decoded_bytes: self.decoded_bytes.saturating_sub(earlier.decoded_bytes),
            retries: self.retries.saturating_sub(earlier.retries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio() {
        let mut s = TierStats::default();
        assert_eq!(s.hit_ratio(), None);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.hit_ratio(), Some(0.75));
    }

    #[test]
    fn counters_snapshot() {
        let c = TierCounters::default();
        c.hits.fetch_add(5, Ordering::Relaxed);
        c.bytes_read.fetch_add(100, Ordering::Relaxed);
        let s = c.snapshot(10, 2, 1);
        assert_eq!(s.hits, 5);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.used_bytes, 10);
        assert_eq!(s.pinned_bytes, 2);
    }
}
