//! The composed storage hierarchy: memory ← SSD ← shared storage.
//!
//! Objects are immutable and read in fixed-size chunks. The read path walks
//! memory → SSD → shared, promoting chunks downward on miss (§7: purged runs
//! are *"transferred from shared storage to the SSD cache on a block-basis"*).
//! Objects come in two durabilities (§6.1):
//!
//! * [`Durability::Persisted`] — written to shared storage; local tiers are
//!   pure caches. The leading *header* chunks are pinned in the SSD tier so
//!   purging a run never evicts the metadata queries need to locate blocks.
//! * [`Durability::NonPersisted`] — never written to shared storage; all
//!   chunks are pinned in the SSD tier (the run's only home). A simulated
//!   crash loses them, which is exactly the recovery scenario §6.1 designs
//!   for via ancestor-run tracking.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use umzi_telemetry::Telemetry;

use crate::block_cache::{DecodedBlockCache, DecodedCacheConfig};
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::cache::CacheTier;
use crate::context::{self, OpClass};
use crate::error::StorageError;
use crate::latency::{LatencyMode, LatencyModel, TierLatency};
use crate::shared::SharedStorage;
use crate::stats::{StorageStats, TraceProbe};
use crate::Result;

/// Opaque handle to a registered object; cheap to copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectHandle(pub(crate) u64);

impl ObjectHandle {
    /// The raw handle value (diagnostics only).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Whether an object is backed by shared storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Durable in shared storage; local tiers are caches.
    Persisted,
    /// Lives only in the local SSD tier (non-persisted levels, §6.1).
    NonPersisted,
}

/// Bounded retry with decorrelated-jitter backoff for shared-storage IO.
///
/// Applied to every shared-storage read and write issued by
/// [`TieredStorage`] when the error is transient
/// ([`StorageError::is_transient`]). Each attempt's delay is drawn uniformly
/// from `[base_backoff, 3 × previous_delay]` and capped at `max_backoff`
/// (decorrelated jitter), so concurrent retriers spread out instead of
/// thundering in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// First-retry backoff and the jitter floor.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff delay.
    pub max_backoff: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryConfig {
    /// No retrying at all: transient errors propagate immediately.
    pub fn disabled() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Validate the knobs.
    pub fn validate(&self) -> crate::Result<()> {
        if self.base_backoff > self.max_backoff {
            return Err(StorageError::Config(format!(
                "retry base_backoff ({:?}) exceeds max_backoff ({:?})",
                self.base_backoff, self.max_backoff
            )));
        }
        Ok(())
    }
}

/// Readahead pipelining for sequential block IO.
///
/// A range scan's future block sequence is fully predictable from the fence
/// index, so instead of demand-fetching one chunk per stall, the run layer
/// asks the hierarchy to stage the next `depth` chunks in **one** batched
/// shared-storage read ([`crate::SharedStorage::get_ranges`]) while the
/// merge consumes the current block. Prefetch is advisory: a failed batch
/// is dropped (and retried synchronously by the demand path), never
/// surfaced to the iterator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// How many blocks ahead of the consumer a scan keeps staged. `0`
    /// disables prefetch entirely (the pre-existing synchronous path).
    pub depth: usize,
    /// Upper bound on the bytes one prefetch batch may put in flight; a
    /// batch is truncated (never split) to stay under it.
    pub max_inflight_bytes: u64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            depth: 0,
            max_inflight_bytes: 4 << 20,
        }
    }
}

impl PrefetchConfig {
    /// Validate the knobs.
    pub fn validate(&self) -> crate::Result<()> {
        if self.depth > 1024 {
            return Err(StorageError::Config(format!(
                "prefetch depth {} is absurd (cap is 1024)",
                self.depth
            )));
        }
        if self.depth > 0 && self.max_inflight_bytes == 0 {
            return Err(StorageError::Config(
                "prefetch max_inflight_bytes must be > 0 when depth > 0 \
                 (a zero budget silently disables every batch)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Configuration of the tiered hierarchy.
#[derive(Debug, Clone)]
pub struct TieredConfig {
    /// Chunk (block) size in bytes; the run format aligns its data blocks to
    /// this. Default 8 KiB.
    pub chunk_size: usize,
    /// Memory-tier capacity in bytes.
    pub mem_capacity: u64,
    /// SSD-tier capacity in bytes.
    pub ssd_capacity: u64,
    /// SSD access latency.
    pub ssd_latency: TierLatency,
    /// Shared-storage access latency.
    pub shared_latency: TierLatency,
    /// Whether latencies sleep or only account.
    pub latency_mode: LatencyMode,
    /// Decoded-block cache sizing and replacement policy. Parsed blocks are
    /// served without a chunk read or re-parse; a zero capacity disables
    /// the cache.
    pub decoded_cache: DecodedCacheConfig,
    /// Bounded retry with backoff for transient shared-storage failures.
    pub retry: RetryConfig,
    /// Readahead pipelining for sequential scans (disabled by default).
    pub prefetch: PrefetchConfig,
    /// Per-op-class circuit breaker over shared storage (disabled by
    /// default; see [`BreakerConfig`]).
    pub breaker: BreakerConfig,
}

impl Default for TieredConfig {
    fn default() -> Self {
        Self {
            chunk_size: 8 * 1024,
            mem_capacity: 256 * 1024 * 1024,
            ssd_capacity: 4 * 1024 * 1024 * 1024,
            ssd_latency: TierLatency::free(),
            shared_latency: TierLatency::free(),
            latency_mode: LatencyMode::Accounting,
            decoded_cache: DecodedCacheConfig::default(),
            retry: RetryConfig::default(),
            prefetch: PrefetchConfig::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

impl TieredConfig {
    /// A config with realistic (accounting-mode) tier latencies.
    pub fn with_default_latencies(mut self) -> Self {
        self.ssd_latency = TierLatency::micros(100, 1);
        self.shared_latency = TierLatency::micros(2_000, 20);
        self
    }
}

#[derive(Debug, Clone)]
struct ObjectMeta {
    name: Arc<str>,
    len: u64,
    durability: Durability,
    header_chunks: u32,
}

#[derive(Debug, Default)]
struct Registry {
    by_name: HashMap<Arc<str>, u64>,
    by_handle: HashMap<u64, ObjectMeta>,
    next_handle: u64,
}

/// The storage hierarchy used by every Umzi component.
pub struct TieredStorage {
    config: TieredConfig,
    shared: SharedStorage,
    mem: CacheTier,
    ssd: CacheTier,
    decoded: DecodedBlockCache,
    /// Total `read_chunk` calls, regardless of which tier served them.
    chunk_reads: std::sync::atomic::AtomicU64,
    registry: RwLock<Registry>,
    /// Retry policy for shared-storage IO; reconfigurable (index configs may
    /// override the hierarchy default).
    retry: RwLock<RetryConfig>,
    /// Jitter source for retry backoff. Seeded deterministically so tests
    /// replay the same delays.
    retry_rng: Mutex<StdRng>,
    retries: std::sync::atomic::AtomicU64,
    retries_exhausted: std::sync::atomic::AtomicU64,
    /// Per-op-class breakdown of `retries` / `retries_exhausted`, indexed by
    /// [`OpClass::index`].
    retries_by_class: [AtomicU64; OpClass::COUNT],
    retries_exhausted_by_class: [AtomicU64; OpClass::COUNT],
    /// Retry sleeps clamped by a query deadline (returned
    /// `DeadlineExceeded` instead of sleeping past the budget).
    deadline_aborted_retries: AtomicU64,
    /// Retry loops abandoned at a cancellation checkpoint.
    cancelled_retries: AtomicU64,
    /// Per-op-class circuit breaker over shared storage.
    breaker: CircuitBreaker,
    /// GC deletes that exhausted retries; names parked in `leaked_gc`.
    gc_delete_failures: AtomicU64,
    /// Parked deletes the janitor later completed (or found already gone).
    gc_leaked_reclaimed: AtomicU64,
    /// Object names whose GC delete failed — awaiting janitor re-attempt.
    leaked_gc: Mutex<BTreeSet<String>>,
    corruption_refetches: std::sync::atomic::AtomicU64,
    /// Readahead policy; reconfigurable like the retry policy.
    prefetch: RwLock<PrefetchConfig>,
    /// Chunks staged ahead of demand that no read has consumed yet. Bounded
    /// FIFO window: keys that age out unconsumed count as wasted readahead.
    prefetched: Mutex<PrefetchWindow>,
    /// Fast-path guard for `prefetched`: number of unconsumed tracked keys.
    /// `read_chunk` only takes the window lock when this is non-zero, so the
    /// prefetch-off hot path costs one relaxed load.
    prefetch_outstanding: std::sync::atomic::AtomicU64,
    blocks_prefetched: std::sync::atomic::AtomicU64,
    prefetch_hits: std::sync::atomic::AtomicU64,
    prefetch_wasted: std::sync::atomic::AtomicU64,
    /// Telemetry handle shared with every layer stacked on this hierarchy
    /// (the index and engine record their own operation classes into it).
    telemetry: Arc<Telemetry>,
}

/// Tracking window for outstanding prefetched chunks: a FIFO of keys plus a
/// membership set for O(1) consume-on-read. The deque may briefly hold keys
/// whose set entry was already consumed (lazy removal); trimming skips them.
#[derive(Debug, Default)]
struct PrefetchWindow {
    set: std::collections::HashSet<(u64, u32)>,
    order: std::collections::VecDeque<(u64, u32)>,
}

/// Keys the tracking window retains before the oldest unconsumed entry is
/// aged out and counted as wasted readahead. Sized to cover several deep
/// scans' worth of in-flight blocks; an approximation knob, not a cache.
const PREFETCH_WINDOW: usize = 4096;

impl std::fmt::Debug for TieredStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStorage")
            .field("chunk_size", &self.config.chunk_size)
            .field("stats", &self.stats())
            .finish()
    }
}

impl TieredStorage {
    /// Build a hierarchy over the given shared storage.
    pub fn new(shared: SharedStorage, config: TieredConfig) -> Self {
        let mem = CacheTier::new("mem", config.mem_capacity, LatencyModel::off());
        let ssd = CacheTier::new(
            "ssd",
            config.ssd_capacity,
            LatencyModel::new(config.ssd_latency, config.latency_mode),
        );
        let decoded = DecodedBlockCache::new(config.decoded_cache.clone());
        let retry = config.retry;
        let prefetch = config.prefetch;
        let breaker = CircuitBreaker::new(config.breaker);
        Self {
            config,
            shared,
            mem,
            ssd,
            decoded,
            chunk_reads: std::sync::atomic::AtomicU64::new(0),
            registry: RwLock::new(Registry::default()),
            retry: RwLock::new(retry),
            retry_rng: Mutex::new(StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15)),
            retries: std::sync::atomic::AtomicU64::new(0),
            retries_exhausted: std::sync::atomic::AtomicU64::new(0),
            retries_by_class: Default::default(),
            retries_exhausted_by_class: Default::default(),
            deadline_aborted_retries: AtomicU64::new(0),
            cancelled_retries: AtomicU64::new(0),
            breaker,
            gc_delete_failures: AtomicU64::new(0),
            gc_leaked_reclaimed: AtomicU64::new(0),
            leaked_gc: Mutex::new(BTreeSet::new()),
            corruption_refetches: std::sync::atomic::AtomicU64::new(0),
            prefetch: RwLock::new(prefetch),
            prefetched: Mutex::new(PrefetchWindow::default()),
            prefetch_outstanding: std::sync::atomic::AtomicU64::new(0),
            blocks_prefetched: std::sync::atomic::AtomicU64::new(0),
            prefetch_hits: std::sync::atomic::AtomicU64::new(0),
            prefetch_wasted: std::sync::atomic::AtomicU64::new(0),
            telemetry: Arc::new(Telemetry::new()),
        }
    }

    /// An all-in-memory hierarchy with zero latencies (tests, microbenches).
    pub fn in_memory() -> Self {
        Self::new(SharedStorage::in_memory(), TieredConfig::default())
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.config.chunk_size
    }

    /// The shared-storage layer (manifests, listing, recovery).
    pub fn shared(&self) -> &SharedStorage {
        &self.shared
    }

    /// The telemetry handle of this hierarchy. Every layer stacked on the
    /// storage records into this one handle, so the engine snapshot sees
    /// query, storage, and daemon metrics in a single registry.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Fault-injection statistics of the backing store, if it injects any.
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.shared.fault_stats()
    }

    /// Sample the counters a per-query trace attributes by delta. Four
    /// relaxed atomic loads — safe on the query hot path, unlike
    /// [`Self::stats`].
    pub fn trace_probe(&self) -> TraceProbe {
        TraceProbe {
            chunk_reads: self.chunk_reads.load(std::sync::atomic::Ordering::Relaxed),
            cache_hits: self.decoded.hits_total(),
            decoded_bytes: self.decoded.decoded_bytes(),
            retries: self.retries.load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// The active retry policy.
    pub fn retry_config(&self) -> RetryConfig {
        *self.retry.read()
    }

    /// Replace the retry policy (index configs may override the default).
    pub fn set_retry_config(&self, retry: RetryConfig) {
        *self.retry.write() = retry;
    }

    /// The active readahead policy.
    pub fn prefetch_config(&self) -> PrefetchConfig {
        *self.prefetch.read()
    }

    /// Replace the readahead policy (index configs may override the default).
    pub fn set_prefetch_config(&self, prefetch: PrefetchConfig) {
        *self.prefetch.write() = prefetch;
    }

    /// Stage chunks ahead of demand: chunks already resident in a local tier
    /// are skipped, the rest are read from shared storage in **one** batched
    /// [`SharedStorage::get_ranges`] call (telemetry-timed, under the retry
    /// policy) and inserted into the SSD + memory tiers exactly like a
    /// demand miss would. The batch is truncated at the policy's
    /// `max_inflight_bytes`. Returns the `(chunk_no, bytes)` pairs actually
    /// fetched so a caller may decode them on arrival.
    ///
    /// Prefetch is advisory: callers on the scan path swallow the error and
    /// fall back to the synchronous [`Self::read_chunk`] path, which retries
    /// independently — a failed batch never poisons an iterator.
    pub fn prefetch_chunks(
        &self,
        handle: ObjectHandle,
        chunk_nos: &[u32],
    ) -> Result<Vec<(u32, Bytes)>> {
        let meta = self.meta(handle)?;
        if meta.durability == Durability::NonPersisted {
            // Fully resident by definition; nothing to stage.
            return Ok(Vec::new());
        }
        let policy = *self.prefetch.read();
        let cs = self.config.chunk_size as u64;
        let mut wanted: Vec<u32> = Vec::new();
        let mut ranges: Vec<(u64, usize)> = Vec::new();
        let mut inflight = 0u64;
        for &c in chunk_nos {
            if self.mem.contains((handle.0, c)) || self.ssd.contains((handle.0, c)) {
                continue;
            }
            let offset = u64::from(c) * cs;
            if offset >= meta.len {
                // Past the end: the caller's block math is off, but a
                // readahead guess is not worth an error — just stop.
                break;
            }
            let len = cs.min(meta.len - offset) as usize;
            if !wanted.is_empty() && inflight + len as u64 > policy.max_inflight_bytes {
                break;
            }
            inflight += len as u64;
            wanted.push(c);
            ranges.push((offset, len));
        }
        if wanted.is_empty() {
            return Ok(Vec::new());
        }
        let t0 = self.telemetry.start();
        let fetched = self.with_retry_as(OpClass::BlockFetch, || {
            self.shared.get_ranges(&meta.name, &ranges)
        });
        self.telemetry
            .record_since(&self.telemetry.ops().prefetch_batch, t0);
        let fetched = fetched?;
        if self.telemetry.is_enabled() {
            self.telemetry
                .ops()
                .readahead_depth
                .record(wanted.len() as u64);
        }
        let mut out = Vec::with_capacity(wanted.len());
        for (&c, data) in wanted.iter().zip(fetched) {
            let key = (handle.0, c);
            let pinned = c < meta.header_chunks;
            self.ssd.insert(key, data.clone(), pinned);
            self.mem.insert(key, data.clone(), false);
            self.track_prefetched(key);
            out.push((c, data));
        }
        self.blocks_prefetched
            .fetch_add(out.len() as u64, std::sync::atomic::Ordering::Relaxed);
        Ok(out)
    }

    /// Record a freshly staged chunk in the tracking window, aging out the
    /// oldest unconsumed keys past the window bound as wasted readahead.
    fn track_prefetched(&self, key: (u64, u32)) {
        let mut w = self.prefetched.lock();
        if !w.set.insert(key) {
            return; // already tracked (re-staged before consumption)
        }
        w.order.push_back(key);
        self.prefetch_outstanding
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        while w.order.len() > PREFETCH_WINDOW {
            let old = w.order.pop_front().expect("len > bound implies non-empty");
            if w.set.remove(&old) {
                self.prefetch_outstanding
                    .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                self.prefetch_wasted
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    /// If `key` is an unconsumed prefetched chunk, count the hit and stop
    /// tracking it. Cheap when no prefetch is outstanding.
    fn note_prefetch_hit(&self, key: (u64, u32)) {
        if self
            .prefetch_outstanding
            .load(std::sync::atomic::Ordering::Relaxed)
            == 0
        {
            return;
        }
        let mut w = self.prefetched.lock();
        if w.set.remove(&key) {
            self.prefetch_outstanding
                .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            self.prefetch_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Mark a prefetched chunk as consumed by a read served *above* the
    /// chunk tiers (e.g. a decoded-cache hit on a block that prefetch both
    /// staged and decoded): the readahead paid off even though no
    /// `read_chunk` call ever reached the staged copy.
    pub fn note_prefetch_consumed(&self, handle: ObjectHandle, chunk_no: u32) {
        self.note_prefetch_hit((handle.0, chunk_no));
    }

    /// Run a shared-storage operation under the retry policy: transient
    /// failures are re-attempted with decorrelated-jitter backoff up to the
    /// budget; permanent failures propagate immediately.
    ///
    /// Public so callers that go to [`Self::shared`] directly (manifest IO,
    /// sidecar delta objects, recovery listings) stay under the same policy
    /// and counters as the chunk paths. Attributes to
    /// [`OpClass::BlockFetch`]; prefer [`Self::with_retry_as`] so retries
    /// and breaker state land in the right class.
    pub fn with_retry<T>(&self, op: impl Fn() -> Result<T>) -> Result<T> {
        self.with_retry_as(OpClass::BlockFetch, op)
    }

    /// [`Self::with_retry`] with explicit op-class attribution, plus the
    /// deadline/cancellation/breaker semantics of the read SLO machinery:
    ///
    /// * An **open circuit breaker** for `class` fails fast with
    ///   [`StorageError::Unavailable`] before touching shared storage.
    /// * The **ambient query context** ([`crate::context`]) is checked
    ///   before the first attempt and after every backoff sleep; a sleep
    ///   that would overrun the remaining deadline budget is never taken —
    ///   the op returns [`StorageError::DeadlineExceeded`] immediately, so
    ///   deadline overshoot is bounded by one attempt plus one backoff step.
    /// * Retry **exhaustion** (and hard `Unavailable` from the store)
    ///   counts as a breaker failure; any answered operation — success or
    ///   permanent error like `NotFound` — counts as breaker success.
    ///   Query aborts (deadline/cancel) are neutral: they say nothing
    ///   about store health.
    pub fn with_retry_as<T>(&self, class: OpClass, op: impl Fn() -> Result<T>) -> Result<T> {
        self.breaker.admit(class)?;
        if let Err(e) = context::check_current(class.label()) {
            self.breaker.record_neutral(class);
            return Err(e);
        }
        let retry = *self.retry.read();
        let mut prev = retry.base_backoff;
        let mut attempt = 0u32;
        loop {
            match op() {
                Err(e) if e.is_transient() && attempt < retry.max_retries => {
                    attempt += 1;
                    self.retries
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.retries_by_class[class.index()].fetch_add(1, Ordering::Relaxed);
                    // Decorrelated jitter: uniform in [base, 3 × previous],
                    // capped. Degenerates to the base when base is 0.
                    let base = retry.base_backoff.as_nanos() as u64;
                    let ceiling = (prev.as_nanos() as u64).saturating_mul(3).max(base + 1);
                    let jittered = self.retry_rng.lock().random_range(base..ceiling);
                    let delay = Duration::from_nanos(jittered).min(retry.max_backoff);
                    // Never sleep past the remaining deadline budget.
                    if let Some(remaining) = context::current_remaining() {
                        if delay >= remaining {
                            self.deadline_aborted_retries
                                .fetch_add(1, Ordering::Relaxed);
                            self.breaker.record_neutral(class);
                            return Err(StorageError::DeadlineExceeded { op: class.label() });
                        }
                    }
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    // Cancellation fired mid-backoff: abandon the loop here
                    // instead of issuing another attempt.
                    if let Err(e) = context::check_current(class.label()) {
                        if matches!(e, StorageError::Cancelled { .. }) {
                            self.cancelled_retries.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.deadline_aborted_retries
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        self.breaker.record_neutral(class);
                        return Err(e);
                    }
                    prev = delay.max(retry.base_backoff);
                }
                Err(e) if e.is_transient() => {
                    self.retries_exhausted
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.retries_exhausted_by_class[class.index()].fetch_add(1, Ordering::Relaxed);
                    self.breaker.record_failure(class);
                    return Err(e);
                }
                Err(e) => {
                    if matches!(e, StorageError::Unavailable { .. }) {
                        // The store itself is gone — breaker-relevant even
                        // without burning the retry budget.
                        self.breaker.record_failure(class);
                    } else if e.is_query_abort() {
                        self.breaker.record_neutral(class);
                    } else {
                        // The store answered (NotFound, AlreadyExists, …):
                        // healthy as far as the breaker is concerned.
                        self.breaker.record_success(class);
                    }
                    return Err(e);
                }
                Ok(v) => {
                    self.breaker.record_success(class);
                    return Ok(v);
                }
            }
        }
    }

    /// The per-op-class circuit breaker (state inspection / telemetry).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Record a GC delete whose retries exhausted: counts the failure and
    /// parks `name` in the leaked-object registry so the janitor's next
    /// pass can re-attempt it ([`Self::retry_leaked_deletes`]). Leaked
    /// runs/deltas are thereby observable and eventually reclaimed instead
    /// of silently orphaned on shared storage.
    pub fn note_gc_delete_failure(&self, name: &str) {
        self.gc_delete_failures.fetch_add(1, Ordering::Relaxed);
        self.leaked_gc.lock().insert(name.to_owned());
    }

    /// Object names currently parked for janitor re-delete.
    pub fn leaked_gc_objects(&self) -> Vec<String> {
        self.leaked_gc.lock().iter().cloned().collect()
    }

    /// Re-attempt up to `max` parked GC deletes (oldest names first, in
    /// lexicographic order). `NotFound` counts as reclaimed — someone else
    /// already deleted it. Returns `(reclaimed, still_outstanding)`.
    pub fn retry_leaked_deletes(&self, max: usize) -> (usize, usize) {
        let batch: Vec<String> = self.leaked_gc.lock().iter().take(max).cloned().collect();
        let mut reclaimed = 0usize;
        for name in &batch {
            match self.with_retry_as(OpClass::Gc, || self.shared.delete(name)) {
                Ok(()) | Err(StorageError::NotFound { .. }) => {
                    self.leaked_gc.lock().remove(name);
                    self.gc_leaked_reclaimed.fetch_add(1, Ordering::Relaxed);
                    reclaimed += 1;
                }
                // Still sick (or breaker open): stays parked for the next
                // janitor pass.
                Err(_) => {}
            }
        }
        (reclaimed, self.leaked_gc.lock().len())
    }

    /// Create an immutable object and register it.
    ///
    /// * `header_chunks` — number of leading chunks pinned in the SSD tier.
    /// * `write_through` — for persisted objects, whether to also populate
    ///   the SSD tier with all data chunks (§6.2's write-through policy for
    ///   new runs below the current cached level).
    pub fn create_object(
        &self,
        name: &str,
        data: Bytes,
        durability: Durability,
        header_chunks: u32,
        write_through: bool,
    ) -> Result<ObjectHandle> {
        if durability == Durability::Persisted {
            self.with_retry_as(OpClass::BlockFetch, || self.shared.put(name, data.clone()))?;
        } else if self.registry.read().by_name.contains_key(name) {
            return Err(StorageError::AlreadyExists {
                name: name.to_owned(),
            });
        }

        let handle = self.register(name, data.len() as u64, durability, header_chunks);
        let n_chunks = self.chunk_count_for_len(data.len() as u64);
        for c in 0..n_chunks {
            let chunk = self.slice_chunk(&data, c);
            let is_header = c < header_chunks;
            match durability {
                Durability::NonPersisted => {
                    // Only home of the data: pin everything in the SSD tier.
                    self.ssd.insert((handle.0, c), chunk, true);
                }
                Durability::Persisted => {
                    if is_header {
                        self.ssd.insert((handle.0, c), chunk, true);
                    } else if write_through {
                        self.ssd.insert((handle.0, c), chunk, false);
                    }
                }
            }
        }
        Ok(handle)
    }

    /// Open an existing persisted object (e.g. during recovery), pinning its
    /// header chunks into the SSD tier.
    pub fn open_object(&self, name: &str, header_chunks: u32) -> Result<ObjectHandle> {
        if let Some(&h) = self.registry.read().by_name.get(name) {
            return Ok(ObjectHandle(h));
        }
        let len = self.with_retry_as(OpClass::BlockFetch, || self.shared.len(name))?;
        let handle = self.register(name, len, Durability::Persisted, header_chunks);
        for c in 0..header_chunks.min(self.chunk_count_for_len(len)) {
            let chunk = self.fetch_from_shared(handle, c)?;
            self.ssd.insert((handle.0, c), chunk, true);
        }
        Ok(handle)
    }

    fn register(
        &self,
        name: &str,
        len: u64,
        durability: Durability,
        header_chunks: u32,
    ) -> ObjectHandle {
        let mut reg = self.registry.write();
        let h = reg.next_handle;
        reg.next_handle += 1;
        let name: Arc<str> = Arc::from(name);
        reg.by_name.insert(name.clone(), h);
        reg.by_handle.insert(
            h,
            ObjectMeta {
                name,
                len,
                durability,
                header_chunks,
            },
        );
        ObjectHandle(h)
    }

    fn meta(&self, handle: ObjectHandle) -> Result<ObjectMeta> {
        self.registry
            .read()
            .by_handle
            .get(&handle.0)
            .cloned()
            .ok_or(StorageError::StaleHandle { handle: handle.0 })
    }

    /// Object length in bytes.
    pub fn object_len(&self, handle: ObjectHandle) -> Result<u64> {
        Ok(self.meta(handle)?.len)
    }

    /// Object name.
    pub fn object_name(&self, handle: ObjectHandle) -> Result<Arc<str>> {
        Ok(self.meta(handle)?.name)
    }

    /// Object durability.
    pub fn object_durability(&self, handle: ObjectHandle) -> Result<Durability> {
        Ok(self.meta(handle)?.durability)
    }

    /// Number of chunks in an object.
    pub fn chunk_count(&self, handle: ObjectHandle) -> Result<u32> {
        Ok(self.chunk_count_for_len(self.meta(handle)?.len))
    }

    fn chunk_count_for_len(&self, len: u64) -> u32 {
        len.div_ceil(self.config.chunk_size as u64) as u32
    }

    fn slice_chunk(&self, data: &Bytes, chunk_no: u32) -> Bytes {
        let cs = self.config.chunk_size;
        let start = chunk_no as usize * cs;
        let end = (start + cs).min(data.len());
        data.slice(start..end)
    }

    fn fetch_from_shared(&self, handle: ObjectHandle, chunk_no: u32) -> Result<Bytes> {
        let meta = self.meta(handle)?;
        if meta.durability == Durability::NonPersisted {
            return Err(StorageError::LostObject {
                name: meta.name.to_string(),
            });
        }
        let cs = self.config.chunk_size as u64;
        let offset = u64::from(chunk_no) * cs;
        // A chunk past the object's end means the object is shorter than its
        // header claims (torn write that recovery did not catch) — surface a
        // typed error instead of underflowing.
        if offset >= meta.len {
            return Err(StorageError::RangeOutOfBounds {
                name: meta.name.to_string(),
                offset,
                len: cs as usize,
                size: meta.len,
            });
        }
        let len = cs.min(meta.len - offset) as usize;
        let t0 = self.telemetry.start();
        let out = self.with_retry_as(OpClass::BlockFetch, || {
            self.shared.get_range(&meta.name, offset, len)
        });
        self.telemetry
            .record_since(&self.telemetry.ops().block_fetch, t0);
        out
    }

    /// Read one chunk through the hierarchy (memory → SSD → shared),
    /// promoting on miss.
    pub fn read_chunk(&self, handle: ObjectHandle, chunk_no: u32) -> Result<Bytes> {
        self.chunk_reads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let key = (handle.0, chunk_no);
        if let Some(data) = self.mem.get(key) {
            self.note_prefetch_hit(key);
            return Ok(data);
        }
        if let Some(data) = self.ssd.get(key) {
            self.note_prefetch_hit(key);
            self.mem.insert(key, data.clone(), false);
            return Ok(data);
        }
        // Miss in both local tiers: go to shared storage (block-basis
        // transfer into the SSD cache, then memory).
        let data = self.fetch_from_shared(handle, chunk_no)?;
        let pinned = chunk_no < self.meta(handle)?.header_chunks;
        self.ssd.insert(key, data.clone(), pinned);
        self.mem.insert(key, data.clone(), false);
        Ok(data)
    }

    /// Drop one chunk from the local tiers and re-fetch it from shared
    /// storage, re-populating the tiers. Used by corruption containment: a
    /// checksum mismatch may be a bit flip in transit (the copy on shared
    /// storage is fine) rather than at-rest damage, so the reader evicts the
    /// poisoned copy and retries the fetch once before failing the query.
    pub fn reread_chunk_from_shared(&self, handle: ObjectHandle, chunk_no: u32) -> Result<Bytes> {
        self.corruption_refetches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let key = (handle.0, chunk_no);
        self.mem.remove(key);
        self.ssd.remove(key);
        let data = self.fetch_from_shared(handle, chunk_no)?;
        let pinned = chunk_no < self.meta(handle)?.header_chunks;
        self.ssd.insert(key, data.clone(), pinned);
        self.mem.insert(key, data.clone(), false);
        Ok(data)
    }

    /// Read an arbitrary byte range, assembled from chunks.
    pub fn read_range(&self, handle: ObjectHandle, offset: u64, len: usize) -> Result<Bytes> {
        let meta = self.meta(handle)?;
        if offset + len as u64 > meta.len {
            return Err(StorageError::RangeOutOfBounds {
                name: meta.name.to_string(),
                offset,
                len,
                size: meta.len,
            });
        }
        let cs = self.config.chunk_size as u64;
        let first = (offset / cs) as u32;
        let last = ((offset + len as u64 - 1) / cs) as u32;
        if first == last {
            let chunk = self.read_chunk(handle, first)?;
            let start = (offset - u64::from(first) * cs) as usize;
            return Ok(chunk.slice(start..start + len));
        }
        let mut out = Vec::with_capacity(len);
        for c in first..=last {
            let chunk = self.read_chunk(handle, c)?;
            let chunk_start = u64::from(c) * cs;
            let s = offset.max(chunk_start) - chunk_start;
            let e = (offset + len as u64).min(chunk_start + chunk.len() as u64) - chunk_start;
            out.extend_from_slice(&chunk[s as usize..e as usize]);
        }
        Ok(Bytes::from(out))
    }

    /// Drop an object's *data* chunks from the local tiers, keeping its
    /// header chunks (run purge, §6.2). Non-persisted objects cannot be
    /// purged — their data has no other home.
    pub fn purge_object(&self, handle: ObjectHandle) -> Result<usize> {
        let meta = self.meta(handle)?;
        if meta.durability == Durability::NonPersisted {
            return Err(StorageError::LostObject {
                name: meta.name.to_string(),
            });
        }
        // Decoded blocks are data blocks; a purge must make the next read
        // pay the hierarchy walk again (§6.2 semantics), so drop them too.
        self.decoded.invalidate_object(handle.0);
        self.mem.remove_object_chunks(handle.0, meta.header_chunks);
        Ok(self.ssd.remove_object_chunks(handle.0, meta.header_chunks))
    }

    /// Load all of an object's chunks into the SSD tier (cache warm-up /
    /// §6.2 "load" direction). Returns the number of chunks fetched from
    /// shared storage.
    pub fn load_object(&self, handle: ObjectHandle) -> Result<usize> {
        let n = self.chunk_count(handle)?;
        let meta = self.meta(handle)?;
        let mut fetched = 0;
        for c in 0..n {
            if !self.ssd.contains((handle.0, c)) {
                let data = self.fetch_from_shared(handle, c)?;
                self.ssd.insert((handle.0, c), data, c < meta.header_chunks);
                fetched += 1;
            }
        }
        Ok(fetched)
    }

    /// Whether every chunk of the object is resident in the SSD tier.
    pub fn is_fully_cached(&self, handle: ObjectHandle) -> Result<bool> {
        let n = self.chunk_count(handle)?;
        Ok((0..n).all(|c| self.ssd.contains((handle.0, c))))
    }

    /// Delete an object everywhere: local tiers, registry, and shared
    /// storage (if persisted).
    pub fn delete_object(&self, handle: ObjectHandle) -> Result<()> {
        let meta = self.meta(handle)?;
        self.decoded.invalidate_object(handle.0);
        self.mem.remove_object_chunks(handle.0, 0);
        self.ssd.remove_object_chunks(handle.0, 0);
        {
            let mut reg = self.registry.write();
            reg.by_handle.remove(&handle.0);
            reg.by_name.remove(&meta.name);
        }
        if meta.durability == Durability::Persisted {
            if let Err(e) = self.with_retry_as(OpClass::Gc, || self.shared.delete(&meta.name)) {
                // The registry entry is already gone, so nothing will retry
                // this name through the normal path — park it for the
                // janitor unless the query merely gave up.
                if !e.is_query_abort() && !matches!(e, StorageError::NotFound { .. }) {
                    self.note_gc_delete_failure(&meta.name);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Simulate a node crash: all local state (caches, registry) is lost;
    /// shared storage survives. Recovery re-opens objects from shared.
    pub fn simulate_crash(&self) {
        self.decoded.clear();
        self.mem.clear();
        self.ssd.clear();
        // Tracked prefetches died with the caches; a simulated crash is not
        // wasted readahead, so the window resets without counting.
        {
            let mut w = self.prefetched.lock();
            w.set.clear();
            w.order.clear();
            self.prefetch_outstanding
                .store(0, std::sync::atomic::Ordering::Relaxed);
        }
        let mut reg = self.registry.write();
        reg.by_name.clear();
        reg.by_handle.clear();
        // Handles are not reused even across the crash, so stale handles
        // held by survivors fail loudly instead of aliasing new objects.
    }

    /// Statistics across all tiers.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            mem: self.mem.stats(),
            ssd: self.ssd.stats(),
            shared: self.shared.stats(),
            decoded: self.decoded.stats(),
            chunk_reads: self.chunk_reads.load(std::sync::atomic::Ordering::Relaxed),
            ssd_charged_latency: self.ssd.latency().charged(),
            retries: self.retries.load(std::sync::atomic::Ordering::Relaxed),
            retries_exhausted: self
                .retries_exhausted
                .load(std::sync::atomic::Ordering::Relaxed),
            retries_by_class: std::array::from_fn(|i| {
                self.retries_by_class[i].load(Ordering::Relaxed)
            }),
            retries_exhausted_by_class: std::array::from_fn(|i| {
                self.retries_exhausted_by_class[i].load(Ordering::Relaxed)
            }),
            deadline_aborted_retries: self.deadline_aborted_retries.load(Ordering::Relaxed),
            cancelled_retries: self.cancelled_retries.load(Ordering::Relaxed),
            gc_delete_failures: self.gc_delete_failures.load(Ordering::Relaxed),
            gc_leaked_outstanding: self.leaked_gc.lock().len() as u64,
            gc_leaked_reclaimed: self.gc_leaked_reclaimed.load(Ordering::Relaxed),
            breaker_state: self.breaker.states(),
            breaker_transitions: self.breaker.transitions(),
            breaker_rejections: self.breaker.rejections(),
            corruption_refetches: self
                .corruption_refetches
                .load(std::sync::atomic::Ordering::Relaxed),
            blocks_prefetched: self
                .blocks_prefetched
                .load(std::sync::atomic::Ordering::Relaxed),
            prefetch_hits: self
                .prefetch_hits
                .load(std::sync::atomic::Ordering::Relaxed),
            prefetch_wasted: self
                .prefetch_wasted
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// The decoded-block cache (parsed data blocks keyed by
    /// `(object handle, data block number)`).
    pub fn decoded_cache(&self) -> &DecodedBlockCache {
        &self.decoded
    }

    /// Direct access to the memory tier (tests / cache manager).
    pub fn mem_tier(&self) -> &CacheTier {
        &self.mem
    }

    /// Direct access to the SSD tier (tests / cache manager).
    pub fn ssd_tier(&self) -> &CacheTier {
        &self.ssd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    fn small_config() -> TieredConfig {
        TieredConfig {
            chunk_size: 64,
            mem_capacity: 10_000,
            ssd_capacity: 100_000,
            ..TieredConfig::default()
        }
    }

    #[test]
    fn create_and_read_chunks() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let data = payload(200); // 4 chunks of 64 (last = 8 bytes)
        let h = ts
            .create_object("runs/r1", data.clone(), Durability::Persisted, 1, false)
            .unwrap();
        assert_eq!(ts.chunk_count(h).unwrap(), 4);
        assert_eq!(ts.read_chunk(h, 0).unwrap(), data.slice(0..64));
        assert_eq!(ts.read_chunk(h, 3).unwrap(), data.slice(192..200));
        assert_eq!(ts.read_range(h, 60, 10).unwrap(), data.slice(60..70));
        assert_eq!(ts.read_range(h, 0, 200).unwrap(), data);
    }

    #[test]
    fn read_path_promotes_through_tiers() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let h = ts
            .create_object("r", payload(128), Durability::Persisted, 0, false)
            .unwrap();
        // Nothing cached: first read goes to shared.
        let before = ts.stats().shared.reads;
        ts.read_chunk(h, 1).unwrap();
        assert_eq!(ts.stats().shared.reads, before + 1);
        // Second read is a memory hit.
        ts.read_chunk(h, 1).unwrap();
        assert_eq!(ts.stats().shared.reads, before + 1);
        assert!(ts.stats().mem.hits >= 1);
    }

    #[test]
    fn write_through_populates_ssd() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let h = ts
            .create_object("r", payload(256), Durability::Persisted, 1, true)
            .unwrap();
        assert!(ts.is_fully_cached(h).unwrap());
        // Reads never touch shared.
        for c in 0..4 {
            ts.read_chunk(h, c).unwrap();
        }
        assert_eq!(ts.stats().shared.reads, 0);
    }

    #[test]
    fn purge_then_read_refetches_from_shared() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let h = ts
            .create_object("r", payload(256), Durability::Persisted, 1, true)
            .unwrap();
        let dropped = ts.purge_object(h).unwrap();
        assert_eq!(dropped, 3, "3 data chunks dropped, header kept");
        assert!(
            ts.ssd_tier().contains((h.raw(), 0)),
            "header survives purge"
        );
        assert!(!ts.is_fully_cached(h).unwrap());

        let before = ts.stats().shared.reads;
        ts.read_chunk(h, 2).unwrap();
        assert_eq!(ts.stats().shared.reads, before + 1);
        // Promoted back on block basis.
        assert!(ts.ssd_tier().contains((h.raw(), 2)));
    }

    #[test]
    fn load_warms_the_ssd_cache() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let h = ts
            .create_object("r", payload(256), Durability::Persisted, 1, false)
            .unwrap();
        assert!(!ts.is_fully_cached(h).unwrap());
        let fetched = ts.load_object(h).unwrap();
        assert_eq!(fetched, 3, "header was already pinned");
        assert!(ts.is_fully_cached(h).unwrap());
    }

    #[test]
    fn non_persisted_objects_never_touch_shared() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let h = ts
            .create_object("np", payload(128), Durability::NonPersisted, 1, false)
            .unwrap();
        assert_eq!(ts.stats().shared.writes, 0);
        assert_eq!(ts.read_chunk(h, 1).unwrap().len(), 64);
        assert!(
            ts.purge_object(h).is_err(),
            "purging a non-persisted run loses data"
        );
        // Crash loses it entirely.
        ts.simulate_crash();
        assert!(matches!(
            ts.read_chunk(h, 0),
            Err(StorageError::StaleHandle { .. })
        ));
    }

    #[test]
    fn crash_then_reopen_persisted_object() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let data = payload(256);
        ts.create_object("r", data.clone(), Durability::Persisted, 1, true)
            .unwrap();
        ts.simulate_crash();
        let h = ts.open_object("r", 1).unwrap();
        assert_eq!(ts.read_range(h, 0, 256).unwrap(), data);
        // Header re-pinned on open.
        assert!(ts.ssd_tier().contains((h.raw(), 0)));
    }

    #[test]
    fn delete_removes_everywhere() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let h = ts
            .create_object("r", payload(128), Durability::Persisted, 1, true)
            .unwrap();
        ts.delete_object(h).unwrap();
        assert!(!ts.shared().exists("r"));
        assert!(matches!(
            ts.read_chunk(h, 0),
            Err(StorageError::StaleHandle { .. })
        ));
        // Name can be reused after deletion.
        ts.create_object("r", payload(64), Durability::Persisted, 0, false)
            .unwrap();
    }

    #[test]
    fn duplicate_create_rejected_for_both_durabilities() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        ts.create_object("p", payload(10), Durability::Persisted, 0, false)
            .unwrap();
        assert!(ts
            .create_object("p", payload(10), Durability::Persisted, 0, false)
            .is_err());
        ts.create_object("n", payload(10), Durability::NonPersisted, 0, false)
            .unwrap();
        assert!(ts
            .create_object("n", payload(10), Durability::NonPersisted, 0, false)
            .is_err());
    }

    #[test]
    fn transient_faults_are_retried_and_counted() {
        use crate::fault::{FaultEvent, FaultInjectingStore, FaultOp, FaultPlan};
        // Every first attempt of the first two puts fails transiently.
        let plan = FaultPlan::none()
            .with_event(FaultEvent::TransientAt {
                op: FaultOp::Put,
                nth: 1,
            })
            .with_event(FaultEvent::TransientAt {
                op: FaultOp::GetRange,
                nth: 1,
            });
        let store = Arc::new(FaultInjectingStore::new(
            Arc::new(crate::object_store::InMemoryObjectStore::new()),
            plan,
        ));
        let mut cfg = small_config();
        cfg.retry.base_backoff = Duration::ZERO;
        let ts = TieredStorage::new(SharedStorage::new(store, LatencyModel::off()), cfg);
        let h = ts
            .create_object("r", payload(128), Durability::Persisted, 0, false)
            .unwrap();
        assert_eq!(ts.read_chunk(h, 0).unwrap(), payload(128).slice(0..64));
        let s = ts.stats();
        assert_eq!(s.retries, 2, "one retry per faulted op");
        assert_eq!(s.retries_exhausted, 0);
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        use crate::fault::{FaultInjectingStore, FaultPlan};
        let store = Arc::new(FaultInjectingStore::new(
            Arc::new(crate::object_store::InMemoryObjectStore::new()),
            FaultPlan::transient_only(1, 1.0),
        ));
        let mut cfg = small_config();
        cfg.retry.max_retries = 2;
        cfg.retry.base_backoff = Duration::ZERO;
        let ts = TieredStorage::new(SharedStorage::new(store, LatencyModel::off()), cfg);
        let err = ts
            .create_object("r", payload(64), Durability::Persisted, 0, false)
            .unwrap_err();
        assert!(err.is_transient());
        let s = ts.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.retries_exhausted, 1);
    }

    #[test]
    fn reread_chunk_replaces_cached_copy() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let data = payload(128);
        let h = ts
            .create_object("r", data.clone(), Durability::Persisted, 0, true)
            .unwrap();
        ts.read_chunk(h, 1).unwrap();
        let before = ts.stats().shared.reads;
        let fresh = ts.reread_chunk_from_shared(h, 1).unwrap();
        assert_eq!(fresh, data.slice(64..128));
        assert_eq!(ts.stats().shared.reads, before + 1, "went back to shared");
        assert_eq!(ts.stats().corruption_refetches, 1);
    }

    #[test]
    fn open_is_idempotent() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let h1 = ts
            .create_object("r", payload(64), Durability::Persisted, 0, false)
            .unwrap();
        let h2 = ts.open_object("r", 0).unwrap();
        assert_eq!(h1, h2);
    }

    #[test]
    fn prefetch_stages_cold_chunks_and_counts_hits() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let data = payload(256); // 4 chunks
        let h = ts
            .create_object("r", data.clone(), Durability::Persisted, 0, false)
            .unwrap();
        // One batched read stages chunks 1..=3.
        let reads_before = ts.stats().shared.reads;
        let staged = ts.prefetch_chunks(h, &[1, 2, 3]).unwrap();
        assert_eq!(
            staged.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(staged[0].1, data.slice(64..128));
        assert_eq!(ts.stats().shared.reads, reads_before + 3);
        // Consuming the staged chunks never goes back to shared and is
        // attributed to the readahead.
        for c in 1..4 {
            assert_eq!(ts.read_chunk(h, c).unwrap(), ts.slice_chunk(&data, c));
        }
        let s = ts.stats();
        assert_eq!(s.shared.reads, reads_before + 3);
        assert_eq!(s.blocks_prefetched, 3);
        assert_eq!(s.prefetch_hits, 3);
        assert_eq!(s.prefetch_wasted, 0);
        // Re-prefetching resident chunks is a no-op batch.
        assert!(ts.prefetch_chunks(h, &[1, 2, 3]).unwrap().is_empty());
        assert_eq!(ts.stats().shared.reads, reads_before + 3);
    }

    #[test]
    fn prefetch_respects_inflight_budget_and_object_end() {
        let mut cfg = small_config();
        cfg.prefetch = PrefetchConfig {
            depth: 8,
            max_inflight_bytes: 128, // two 64-byte chunks per batch
        };
        let ts = TieredStorage::new(SharedStorage::in_memory(), cfg);
        let h = ts
            .create_object("r", payload(256), Durability::Persisted, 0, false)
            .unwrap();
        let staged = ts.prefetch_chunks(h, &[0, 1, 2, 3]).unwrap();
        assert_eq!(
            staged.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![0, 1],
            "batch truncated at max_inflight_bytes"
        );
        // Chunk numbers past the object end stop the batch, not the caller.
        let staged = ts.prefetch_chunks(h, &[2, 9]).unwrap();
        assert_eq!(staged.iter().map(|(c, _)| *c).collect::<Vec<_>>(), vec![2]);
        // Non-persisted objects are fully resident: nothing to stage.
        let np = ts
            .create_object("np", payload(64), Durability::NonPersisted, 0, false)
            .unwrap();
        assert!(ts.prefetch_chunks(np, &[0]).unwrap().is_empty());
    }

    #[test]
    fn prefetch_failure_leaves_demand_path_healthy() {
        use crate::fault::{FaultInjectingStore, FaultPlan};
        // Every get_range attempt fails transiently; retries exhaust.
        let store = Arc::new(FaultInjectingStore::new(
            Arc::new(crate::object_store::InMemoryObjectStore::new()),
            FaultPlan::transient_only(u64::MAX, 1.0),
        ));
        let mut cfg = small_config();
        cfg.retry.max_retries = 1;
        cfg.retry.base_backoff = Duration::ZERO;
        let ts = TieredStorage::new(SharedStorage::new(store.clone(), LatencyModel::off()), cfg);
        let data = payload(128);
        store.set_armed(false);
        let h = ts
            .create_object("r", data.clone(), Durability::Persisted, 0, false)
            .unwrap();
        store.set_armed(true);
        assert!(ts.prefetch_chunks(h, &[0, 1]).is_err());
        let s = ts.stats();
        assert_eq!(s.blocks_prefetched, 0, "failed batch stages nothing");
        // Demand path still works once the faults stop.
        store.set_armed(false);
        assert_eq!(ts.read_chunk(h, 0).unwrap(), data.slice(0..64));
        assert_eq!(ts.stats().prefetch_hits, 0);
    }

    #[test]
    fn unconsumed_prefetches_age_out_as_wasted() {
        let ts = TieredStorage::new(SharedStorage::in_memory(), small_config());
        let h = ts
            .create_object("r", payload(128), Durability::Persisted, 0, false)
            .unwrap();
        ts.prefetch_chunks(h, &[0, 1]).unwrap();
        // Roll the FIFO window over with distinct synthetic keys: the two
        // real staged chunks (oldest, never read) age out as wasted.
        for i in 0..PREFETCH_WINDOW as u32 {
            ts.track_prefetched((u64::MAX, i));
        }
        let s = ts.stats();
        assert_eq!(s.prefetch_wasted, 2);
        assert_eq!(s.prefetch_hits, 0);
        // An aged-out chunk read later is just a normal cache hit.
        ts.read_chunk(h, 0).unwrap();
        assert_eq!(ts.stats().prefetch_hits, 0);
    }

    #[test]
    fn retry_sleep_never_overruns_deadline() {
        use crate::context::{self, QueryContext};
        use crate::fault::{FaultInjectingStore, FaultPlan};
        let store = Arc::new(FaultInjectingStore::new(
            Arc::new(crate::object_store::InMemoryObjectStore::new()),
            FaultPlan::transient_only(u64::MAX, 1.0),
        ));
        let mut cfg = small_config();
        cfg.retry.max_retries = 100;
        cfg.retry.base_backoff = Duration::from_millis(20);
        cfg.retry.max_backoff = Duration::from_millis(40);
        let ts = TieredStorage::new(SharedStorage::new(store, LatencyModel::off()), cfg);
        let _g = context::enter(QueryContext::with_deadline(Duration::from_millis(5)));
        let t0 = std::time::Instant::now();
        let err = ts
            .create_object("r", payload(64), Durability::Persisted, 0, false)
            .unwrap_err();
        assert!(
            matches!(err, StorageError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
        // The first 20ms+ backoff exceeded the 5ms budget, so the loop
        // returned instead of sleeping — not even one full backoff elapsed.
        assert!(
            t0.elapsed() < Duration::from_millis(20),
            "slept past budget"
        );
        let s = ts.stats();
        assert_eq!(s.deadline_aborted_retries, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(
            s.retries_by_class[crate::OpClass::BlockFetch.index()],
            1,
            "attributed to block_fetch"
        );
    }

    #[test]
    fn cancelled_context_aborts_before_first_attempt() {
        use crate::context::{self, CancelToken, QueryContext};
        let ts = TieredStorage::in_memory();
        let _g = context::enter(QueryContext::unbounded().with_cancel(CancelToken::trip_after(0)));
        let writes_before = ts.stats().shared.writes;
        let err = ts
            .create_object("r", payload(64), Durability::Persisted, 0, false)
            .unwrap_err();
        assert!(matches!(err, StorageError::Cancelled { .. }), "got {err:?}");
        assert_eq!(ts.stats().shared.writes, writes_before, "never issued");
    }

    #[test]
    fn gc_delete_failure_parks_object_and_janitor_reclaims() {
        use crate::fault::{FaultInjectingStore, FaultPlan};
        let store = Arc::new(FaultInjectingStore::new(
            Arc::new(crate::object_store::InMemoryObjectStore::new()),
            FaultPlan::transient_only(u64::MAX, 1.0),
        ));
        let mut cfg = small_config();
        cfg.retry.max_retries = 1;
        cfg.retry.base_backoff = Duration::ZERO;
        let ts = TieredStorage::new(SharedStorage::new(store.clone(), LatencyModel::off()), cfg);
        store.set_armed(false);
        let h = ts
            .create_object("runs/leaky", payload(64), Durability::Persisted, 0, false)
            .unwrap();
        store.set_armed(true);
        assert!(ts.delete_object(h).is_err());
        let s = ts.stats();
        assert_eq!(s.gc_delete_failures, 1);
        assert_eq!(s.gc_leaked_outstanding, 1);
        assert_eq!(
            s.retries_exhausted_by_class[crate::OpClass::Gc.index()],
            1,
            "exhaustion attributed to the gc class"
        );
        assert_eq!(ts.leaked_gc_objects(), vec!["runs/leaky".to_string()]);
        // Store heals: the janitor pass reclaims the parked name.
        store.set_armed(false);
        assert_eq!(ts.retry_leaked_deletes(16), (1, 0));
        assert!(!ts.shared().exists("runs/leaky"));
        let s = ts.stats();
        assert_eq!(s.gc_leaked_outstanding, 0);
        assert_eq!(s.gc_leaked_reclaimed, 1);
    }

    #[test]
    fn breaker_fails_fast_then_recovers_via_probe() {
        use crate::breaker::BreakerState;
        use crate::fault::{FaultInjectingStore, FaultPlan};
        let store = Arc::new(FaultInjectingStore::new(
            Arc::new(crate::object_store::InMemoryObjectStore::new()),
            FaultPlan::transient_only(u64::MAX, 1.0),
        ));
        let mut cfg = small_config();
        cfg.retry.max_retries = 0;
        cfg.retry.base_backoff = Duration::ZERO;
        // The cooldown must comfortably outlast the trip → fail-fast
        // assertion gap (a few statements), or a scheduler stall lets the
        // "open" read through as an early half-open probe.
        cfg.breaker = crate::BreakerConfig {
            failure_threshold: 2,
            window: Duration::from_secs(10),
            cooldown: Duration::from_millis(150),
            half_open_probes: 1,
        };
        let ts = TieredStorage::new(SharedStorage::new(store.clone(), LatencyModel::off()), cfg);
        store.set_armed(false);
        let h = ts
            .create_object("r", payload(128), Durability::Persisted, 0, false)
            .unwrap();
        ts.purge_object(h).unwrap();
        store.set_armed(true);
        // Two exhaustions trip the block-fetch breaker.
        assert!(ts.read_chunk(h, 1).unwrap_err().is_transient());
        assert!(ts.read_chunk(h, 1).unwrap_err().is_transient());
        assert_eq!(
            ts.breaker().state(crate::OpClass::BlockFetch),
            BreakerState::Open
        );
        // Open: fails fast without touching the store, even once healthy.
        store.set_armed(false);
        let reads_before = ts.stats().shared.reads;
        let err = ts.read_chunk(h, 1).unwrap_err();
        assert!(matches!(err, StorageError::Unavailable { .. }), "{err:?}");
        assert_eq!(ts.stats().shared.reads, reads_before, "no store traffic");
        assert!(ts.stats().breaker_rejections[crate::OpClass::BlockFetch.index()] >= 1);
        // Cooldown elapses; the half-open probe succeeds and closes it.
        std::thread::sleep(Duration::from_millis(200));
        ts.read_chunk(h, 1).unwrap();
        assert_eq!(
            ts.breaker().state(crate::OpClass::BlockFetch),
            BreakerState::Closed
        );
        assert!(ts.stats().breaker_transitions[crate::OpClass::BlockFetch.index()] >= 3);
    }
}
