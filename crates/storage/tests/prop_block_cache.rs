//! Property tests for the decoded-block cache.
//!
//! * Under [`CachePolicy::Lru`] the cache must behave exactly like the
//!   oracle model — a weight-accounted LRU list — across arbitrary op
//!   sequences (the always-admit fallback is the pre-scan-resistance
//!   semantics, so any divergence is a regression).
//! * Under [`CachePolicy::ScanResistant`] admission and promotion may
//!   reorder and reject, but structural invariants must hold: capacity is
//!   never exceeded, byte accounting matches residency, and a hit always
//!   returns the most recently inserted value for its key.

use std::any::Any;
use std::sync::Arc;

use proptest::prelude::*;
use umzi_storage::{AccessPattern, CachePolicy, DecodedBlockCache, DecodedCacheConfig};

const CAPACITY: u64 = 500;

fn one_shard(policy: CachePolicy) -> DecodedBlockCache {
    DecodedBlockCache::new(DecodedCacheConfig {
        capacity_bytes: CAPACITY,
        shards: 1,
        policy,
        protected_fraction: 0.5,
        scan_bypass_bytes: 0,
        sketch_counters: 1 << 14,
        ..DecodedCacheConfig::default()
    })
}

/// The oracle: an MRU-front list with byte accounting, replicating the
/// plain-LRU semantics (replace refreshes recency; evict from the tail
/// while over capacity; oversized entries are not cached).
#[derive(Default)]
struct OracleLru {
    entries: Vec<((u64, u32), u64)>, // MRU first
}

impl OracleLru {
    fn used(&self) -> u64 {
        self.entries.iter().map(|(_, w)| w).sum()
    }

    fn insert(&mut self, key: (u64, u32), weight: u64) {
        if weight > CAPACITY {
            return;
        }
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, weight));
        while self.used() > CAPACITY {
            self.entries.pop();
        }
    }

    fn get(&mut self, key: (u64, u32)) -> bool {
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(i) => {
                let e = self.entries.remove(i);
                self.entries.insert(0, e);
                true
            }
            None => false,
        }
    }
}

fn value_of(n: u32) -> Arc<dyn Any + Send + Sync> {
    Arc::new(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lru policy ≡ oracle: membership, recency-driven eviction order and
    /// byte accounting all match after every operation.
    #[test]
    fn lru_policy_matches_oracle(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u32..12, 20u64..260), 1..120),
    ) {
        let cache = one_shard(CachePolicy::Lru);
        let mut oracle = OracleLru::default();
        for (i, (is_insert, key, weight)) in ops.into_iter().enumerate() {
            let key = (9, key);
            if is_insert {
                cache.insert(key, value_of(i as u32), weight, AccessPattern::PointLookup);
                oracle.insert(key, weight);
            } else {
                let got = cache.get(key, AccessPattern::PointLookup).is_some();
                let want = oracle.get(key);
                prop_assert_eq!(got, want, "get({:?}) diverged at op {}", key, i);
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.used_bytes, oracle.used(), "bytes diverged at op {}", i);
            prop_assert_eq!(stats.entries as usize, oracle.entries.len());
            for b in 0..12u32 {
                prop_assert_eq!(
                    cache.contains((9, b)),
                    oracle.entries.iter().any(|(k, _)| *k == (9, b)),
                    "membership of {:?} diverged at op {}", (9, b), i
                );
            }
        }
    }

    /// Scan-resistant invariants: capacity never exceeded, accounting
    /// consistent, hits return the latest value, and the two segments sum
    /// to the total.
    #[test]
    fn scan_resistant_structural_invariants(
        ops in proptest::collection::vec(
            (0u8..6, 0u32..24, 20u64..260), 1..200),
    ) {
        let cache = one_shard(CachePolicy::ScanResistant);
        let mut latest: std::collections::HashMap<(u64, u32), u32> = Default::default();
        for (i, (op, key, weight)) in ops.into_iter().enumerate() {
            let key = (3, key);
            let pattern = match op % 3 {
                0 => AccessPattern::PointLookup,
                1 => AccessPattern::RangeScan,
                _ => AccessPattern::Maintenance,
            };
            if op < 3 {
                cache.insert(key, value_of(i as u32), weight, pattern);
                // The insert may be rejected/bypassed; only a *resident* key
                // is guaranteed to carry the new value.
                if cache.contains(key) {
                    latest.insert(key, i as u32);
                } else {
                    latest.remove(&key);
                }
            } else if let Some(v) = cache.get(key, pattern) {
                let got = *v.downcast::<u32>().expect("u32 payload");
                prop_assert_eq!(Some(&got), latest.get(&key),
                    "hit on {:?} returned a stale value at op {}", key, i);
            }
            let s = cache.stats();
            prop_assert!(s.used_bytes <= CAPACITY, "over capacity at op {}: {:?}", i, s);
            prop_assert_eq!(s.used_bytes, s.probation_bytes + s.protected_bytes);
            // Eviction may drop any entry; prune the shadow map accordingly.
            latest.retain(|k, _| cache.contains(*k));
        }
    }
}
