//! Property tests for the tiered storage: chunked reads must be exactly
//! equivalent to slicing the original payload, across cache states.

use bytes::Bytes;
use proptest::prelude::*;
use umzi_storage::{Durability, SharedStorage, TieredConfig, TieredStorage};

fn small_tiers(chunk_size: usize) -> TieredStorage {
    TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            chunk_size,
            mem_capacity: 4096,
            ssd_capacity: 1 << 20,
            ..TieredConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn read_range_equals_slice(
        payload in proptest::collection::vec(any::<u8>(), 1..2000),
        chunk_pow in 4u32..9, // 16..256-byte chunks
        ranges in proptest::collection::vec((0usize..2000, 0usize..300), 1..8),
        write_through in any::<bool>(),
        purge in any::<bool>(),
    ) {
        let ts = small_tiers(1 << chunk_pow);
        let data = Bytes::from(payload.clone());
        let h = ts
            .create_object("obj", data, Durability::Persisted, 1, write_through)
            .unwrap();
        if purge {
            ts.purge_object(h).unwrap();
        }
        for (start, len) in ranges {
            let start = start.min(payload.len().saturating_sub(1));
            let len = len.min(payload.len() - start);
            if len == 0 {
                continue;
            }
            let got = ts.read_range(h, start as u64, len).unwrap();
            prop_assert_eq!(&got[..], &payload[start..start + len]);
        }
        // Whole-object read too.
        let all = ts.read_range(h, 0, payload.len()).unwrap();
        prop_assert_eq!(&all[..], &payload[..]);
    }

    #[test]
    fn chunked_reads_after_crash_and_reopen(
        payload in proptest::collection::vec(any::<u8>(), 1..1000),
        chunk_pow in 4u32..8,
    ) {
        let ts = small_tiers(1 << chunk_pow);
        ts.create_object("obj", Bytes::from(payload.clone()), Durability::Persisted, 1, true)
            .unwrap();
        ts.simulate_crash();
        let h = ts.open_object("obj", 1).unwrap();
        let n = ts.chunk_count(h).unwrap();
        let mut reassembled = Vec::new();
        for c in 0..n {
            reassembled.extend_from_slice(&ts.read_chunk(h, c).unwrap());
        }
        prop_assert_eq!(reassembled, payload);
    }

    #[test]
    fn non_persisted_objects_roundtrip_locally(
        payload in proptest::collection::vec(any::<u8>(), 1..1000),
    ) {
        let ts = small_tiers(64);
        let h = ts
            .create_object("np", Bytes::from(payload.clone()), Durability::NonPersisted, 0, false)
            .unwrap();
        let got = ts.read_range(h, 0, payload.len()).unwrap();
        prop_assert_eq!(&got[..], &payload[..]);
        prop_assert_eq!(ts.stats().shared.writes, 0);
    }
}
