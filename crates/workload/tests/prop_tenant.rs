//! Property tests for the multi-tenant SLO workload generator.
//!
//! * **Replayability**: the same `(config, seed)` yields the identical op
//!   stream — the contract every SLO benchmark and CI comparison rests on.
//! * **Skew**: the zipf exponent actually concentrates popularity — the
//!   top 1% of keys receive at least the share a configured floor demands.
//! * **Mix fidelity**: each tenant's observed op-class frequencies converge
//!   to its configured ratios within tolerance.
//! * **Burst schedule**: arrival ticks are deterministic, the clock is
//!   monotone, bursts deliver their multiplier, and quiet phases contain
//!   genuinely idle (zero-arrival) ticks.

use proptest::prelude::*;
use umzi_workload::{BurstModel, OpClass, OpMix, TenantMix, TenantMixConfig, TenantProfile};

fn config_of(n_tenants: usize, zipf: f64, base_rate: f64) -> TenantMixConfig {
    TenantMixConfig {
        tenants: (0..n_tenants)
            .map(|i| TenantProfile {
                weight: 1.0 + i as f64,
                zipf_exponent: zipf,
                key_space: 10_000,
                batch_size: 8,
                scan_span: 64,
                ingest_batch: 16,
                ..TenantProfile::default()
            })
            .collect(),
        burst: BurstModel {
            base_ops_per_tick: base_rate,
            burst_period: 32,
            burst_len: 4,
            burst_multiplier: 8.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed ⇒ identical stream; different seed ⇒ a different one.
    #[test]
    fn same_seed_same_stream(
        seed in 0u64..1_000_000,
        n_tenants in 1usize..5,
    ) {
        let cfg = config_of(n_tenants, 0.9, 0.7);
        let mut a = TenantMix::new(cfg.clone(), seed).unwrap();
        let mut b = TenantMix::new(cfg.clone(), seed).unwrap();
        let stream_a: Vec<_> = (0..300).map(|_| a.next_op()).collect();
        let stream_b: Vec<_> = (0..300).map(|_| b.next_op()).collect();
        prop_assert_eq!(&stream_a, &stream_b);

        let mut c = TenantMix::new(cfg, seed.wrapping_add(1)).unwrap();
        let stream_c: Vec<_> = (0..300).map(|_| c.next_op()).collect();
        prop_assert_ne!(&stream_a, &stream_c);
    }

    /// A zipf exponent near 1 concentrates at least `min_share` of all key
    /// draws on the top-1% keys (uniform would put ~1% there).
    #[test]
    fn zipf_exponent_skews_key_popularity(seed in 0u64..1_000_000) {
        let mut m = TenantMix::new(config_of(1, 0.99, 2.0), seed).unwrap();
        let key_space = 10_000u64;
        let top = key_space / 100;
        let (mut total, mut head) = (0u64, 0u64);
        for _ in 0..1500 {
            let op = m.next_op();
            let mut count = |k: u64| {
                total += 1;
                if k < top {
                    head += 1;
                }
            };
            match op.kind {
                umzi_workload::TenantOpKind::Point { key } => count(key),
                umzi_workload::TenantOpKind::Batch { keys }
                | umzi_workload::TenantOpKind::Ingest { keys } => {
                    keys.into_iter().for_each(&mut count)
                }
                umzi_workload::TenantOpKind::RangeScan { start, .. } => count(start),
            }
        }
        let min_share = 0.10; // ≥10% on the top 1% — 10x the uniform share
        prop_assert!(
            head as f64 >= min_share * total as f64,
            "top-1% keys got {head}/{total} draws"
        );
    }

    /// Observed per-tenant class frequencies match the configured ratios
    /// within tolerance, for arbitrary (valid) mixes.
    #[test]
    fn per_tenant_mix_matches_requested_ratios(
        seed in 0u64..1_000_000,
        w_point in 1u32..10,
        w_batch in 0u32..10,
        w_scan in 0u32..10,
        w_ingest in 1u32..10,
    ) {
        let mix = OpMix {
            point: f64::from(w_point),
            batch: f64::from(w_batch),
            range_scan: f64::from(w_scan),
            ingest: f64::from(w_ingest),
        };
        let mut cfg = config_of(2, 0.5, 2.0);
        for t in &mut cfg.tenants {
            t.mix = mix;
        }
        let mut m = TenantMix::new(cfg, seed).unwrap();
        const OPS: usize = 4000;
        let mut counts = [[0usize; 4]; 2];
        for _ in 0..OPS {
            let op = m.next_op();
            let class = OpClass::ALL.iter().position(|c| *c == op.class()).unwrap();
            counts[op.tenant][class] += 1;
        }
        let want = mix.fractions();
        for (tenant, per_class) in counts.iter().enumerate() {
            let n: usize = per_class.iter().sum();
            prop_assert!(n > 300, "tenant {tenant} starved: {n} ops");
            for (ci, &c) in per_class.iter().enumerate() {
                let got = c as f64 / n as f64;
                prop_assert!(
                    (got - want[ci]).abs() < 0.08,
                    "tenant {} class {} got {:.3} want {:.3}",
                    tenant, OpClass::ALL[ci].label(), got, want[ci]
                );
            }
        }
    }

    /// The burst schedule is deterministic, monotone, and has real idle
    /// gaps: with a fractional off-burst rate some ticks see no arrivals,
    /// while burst windows see multiplied arrivals.
    #[test]
    fn burst_schedule_is_deterministic_and_leaves_idle_gaps(seed in 0u64..1_000_000) {
        let cfg = config_of(2, 0.9, 0.4); // off-burst < 1 op/tick ⇒ gaps
        let mut a = TenantMix::new(cfg.clone(), seed).unwrap();
        let mut b = TenantMix::new(cfg.clone(), seed).unwrap();
        let ticks_a: Vec<u64> = (0..600).map(|_| a.next_op().tick).collect();
        let ticks_b: Vec<u64> = (0..600).map(|_| b.next_op().tick).collect();
        prop_assert_eq!(&ticks_a, &ticks_b, "arrival schedule must replay");
        prop_assert!(ticks_a.windows(2).all(|w| w[0] <= w[1]), "monotone clock");

        // Per-tick arrival counts over the covered window.
        let last = *ticks_a.last().unwrap();
        let mut per_tick = vec![0u64; last as usize + 1];
        for &t in &ticks_a {
            per_tick[t as usize] += 1;
        }
        // Only full cycles: the tail cycle may be cut mid-burst.
        let full = (per_tick.len() / 32) * 32;
        prop_assert!(full >= 64, "stream covers at least two burst cycles");
        let (mut burst_ops, mut quiet_ops, mut quiet_idle, mut quiet_ticks) = (0u64, 0u64, 0u64, 0u64);
        for (t, &n) in per_tick[..full].iter().enumerate() {
            if cfg.burst.in_burst(t as u64) {
                burst_ops += n;
            } else {
                quiet_ops += n;
                quiet_ticks += 1;
                if n == 0 {
                    quiet_idle += 1;
                }
            }
        }
        prop_assert!(quiet_idle > 0, "fractional off-burst rate must leave idle ticks");
        // Burst windows are 1/7 of the quiet ticks but the multiplier is 8x:
        // mean burst-tick arrivals must clearly exceed mean quiet-tick ones.
        let burst_ticks = full as u64 - quiet_ticks;
        prop_assert!(
            burst_ops * quiet_ticks > 2 * quiet_ops * burst_ticks,
            "bursts deliver the multiplier: {burst_ops}/{burst_ticks} vs {quiet_ops}/{quiet_ticks}"
        );
    }
}
