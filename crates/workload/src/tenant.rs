//! Multi-tenant SLO workload: zipf-skewed tenants, per-tenant operation
//! mixes and a bursty open-loop arrival schedule.
//!
//! [`MixedWorkload`](crate::MixedWorkload) replays one closed-loop HTAP
//! stream; tail-latency work needs more texture than that. [`TenantMix`]
//! models N tenants sharing one engine, each with
//!
//! * a **popularity skew**: keys are drawn zipf-distributed over the
//!   tenant's key space (YCSB-style bounded zipfian, exponent 0 = uniform),
//! * an **operation mix**: point lookups, batched lookups, range scans and
//!   ingest batches in configurable ratios,
//! * a **share of the arrival process**: tenants are weighted, and
//! * a common **burst schedule**: arrivals come open-loop on a virtual tick
//!   clock with periodic bursts — quiet ticks (possibly zero arrivals)
//!   followed by multiplied bursts, which is what actually stresses
//!   backpressure and maintenance fairness.
//!
//! Everything is seeded and tick-based: the generator never reads the wall
//! clock, so the same `(config, seed)` always yields the identical op
//! stream — replayable in benchmarks, CI and property tests. Keys are
//! tenant-relative; the driver namespaces them (e.g. into a tenant column)
//! when it maps ops onto a concrete table.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The operation classes a tenant issues (the latency-histogram axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-key point lookup.
    Point,
    /// Batched point lookups.
    Batch,
    /// Bounded range scan.
    RangeScan,
    /// Ingest (upsert) batch.
    Ingest,
}

impl OpClass {
    /// All classes, in reporting order.
    pub const ALL: [OpClass; 4] = [
        OpClass::Point,
        OpClass::Batch,
        OpClass::RangeScan,
        OpClass::Ingest,
    ];

    /// Stable label for reports and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Point => "point",
            OpClass::Batch => "batch",
            OpClass::RangeScan => "range_scan",
            OpClass::Ingest => "ingest",
        }
    }
}

/// Per-class ratios of one tenant's traffic. Ratios are relative weights —
/// they need not sum to 1, only be non-negative with a positive total.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Point-lookup weight.
    pub point: f64,
    /// Batched-lookup weight.
    pub batch: f64,
    /// Range-scan weight.
    pub range_scan: f64,
    /// Ingest weight.
    pub ingest: f64,
}

impl OpMix {
    /// The weights in [`OpClass::ALL`] order.
    pub fn weights(&self) -> [f64; 4] {
        [self.point, self.batch, self.range_scan, self.ingest]
    }

    /// The mix normalized to fractions summing to 1.
    pub fn fractions(&self) -> [f64; 4] {
        let w = self.weights();
        let total: f64 = w.iter().sum();
        w.map(|x| x / total)
    }

    fn validate(&self) -> Result<(), String> {
        let w = self.weights();
        if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err("op-mix weights must be finite and non-negative".into());
        }
        if w.iter().sum::<f64>() <= 0.0 {
            return Err("op mix must have a positive total weight".into());
        }
        Ok(())
    }
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix {
            point: 0.55,
            batch: 0.15,
            range_scan: 0.10,
            ingest: 0.20,
        }
    }
}

/// One tenant's traffic profile.
#[derive(Debug, Clone)]
pub struct TenantProfile {
    /// Share of the arrival process relative to other tenants.
    pub weight: f64,
    /// Operation-class ratios.
    pub mix: OpMix,
    /// Zipf exponent of key popularity: 0 = uniform, values toward 1 make
    /// the head keys hot (clamped to `[0, 0.999]` — the bounded-zipfian
    /// sampler's stable range).
    pub zipf_exponent: f64,
    /// Tenant-relative key space (keys are in `[0, key_space)`).
    pub key_space: u64,
    /// Keys per batched lookup.
    pub batch_size: usize,
    /// Keys covered by one range scan.
    pub scan_span: u64,
    /// Rows per ingest batch.
    pub ingest_batch: usize,
}

impl Default for TenantProfile {
    fn default() -> Self {
        TenantProfile {
            weight: 1.0,
            mix: OpMix::default(),
            zipf_exponent: 0.9,
            key_space: 100_000,
            batch_size: 64,
            scan_span: 256,
            ingest_batch: 200,
        }
    }
}

/// The shared open-loop arrival schedule: a virtual tick clock with
/// periodic multiplicative bursts. Fractional rates carry credit across
/// ticks, so quiet phases can contain genuinely idle (zero-arrival) ticks.
#[derive(Debug, Clone, Copy)]
pub struct BurstModel {
    /// Mean arrivals per tick outside bursts (may be fractional).
    pub base_ops_per_tick: f64,
    /// Burst cycle length in ticks.
    pub burst_period: u64,
    /// Leading ticks of each cycle that burst.
    pub burst_len: u64,
    /// Arrival-rate multiplier during a burst.
    pub burst_multiplier: f64,
}

impl Default for BurstModel {
    fn default() -> Self {
        BurstModel {
            base_ops_per_tick: 0.5,
            burst_period: 64,
            burst_len: 8,
            burst_multiplier: 8.0,
        }
    }
}

impl BurstModel {
    /// Whether `tick` falls inside a burst window.
    pub fn in_burst(&self, tick: u64) -> bool {
        tick % self.burst_period < self.burst_len
    }

    /// The arrival rate at `tick`.
    pub fn rate(&self, tick: u64) -> f64 {
        if self.in_burst(tick) {
            self.base_ops_per_tick * self.burst_multiplier
        } else {
            self.base_ops_per_tick
        }
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.base_ops_per_tick.is_finite() && self.base_ops_per_tick > 0.0) {
            return Err("base_ops_per_tick must be positive".into());
        }
        if self.burst_period == 0 || self.burst_len > self.burst_period {
            return Err("burst_len must fit inside a positive burst_period".into());
        }
        if !(self.burst_multiplier.is_finite() && self.burst_multiplier >= 1.0) {
            return Err("burst_multiplier must be >= 1".into());
        }
        Ok(())
    }
}

/// Full tuning for [`TenantMix`].
#[derive(Debug, Clone)]
pub struct TenantMixConfig {
    /// The tenants sharing the arrival process.
    pub tenants: Vec<TenantProfile>,
    /// The shared burst schedule.
    pub burst: BurstModel,
}

impl Default for TenantMixConfig {
    fn default() -> Self {
        TenantMixConfig {
            tenants: vec![TenantProfile::default(); 4],
            burst: BurstModel::default(),
        }
    }
}

impl TenantMixConfig {
    /// Validate the configuration (checked by [`TenantMix::new`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("at least one tenant".into());
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if !(t.weight.is_finite() && t.weight > 0.0) {
                return Err(format!("tenant {i}: weight must be positive"));
            }
            t.mix.validate().map_err(|e| format!("tenant {i}: {e}"))?;
            if t.key_space == 0 {
                return Err(format!("tenant {i}: empty key space"));
            }
            if t.batch_size == 0 || t.ingest_batch == 0 || t.scan_span == 0 {
                return Err(format!("tenant {i}: batch/scan sizes must be positive"));
            }
            if !(0.0..=8.0).contains(&t.zipf_exponent) {
                return Err(format!("tenant {i}: zipf exponent out of range"));
            }
        }
        self.burst.validate()
    }
}

/// What one arrival does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantOpKind {
    /// Look up one key.
    Point {
        /// Tenant-relative key.
        key: u64,
    },
    /// Look up a batch of keys.
    Batch {
        /// Tenant-relative keys.
        keys: Vec<u64>,
    },
    /// Scan `[start, start + span)`.
    RangeScan {
        /// Tenant-relative start key.
        start: u64,
        /// Keys covered.
        span: u64,
    },
    /// Upsert a batch of keys.
    Ingest {
        /// Tenant-relative keys.
        keys: Vec<u64>,
    },
}

/// One arrival of the multi-tenant stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantOp {
    /// Which tenant issued it.
    pub tenant: usize,
    /// Virtual arrival tick (monotonically non-decreasing across the
    /// stream).
    pub tick: u64,
    /// The operation.
    pub kind: TenantOpKind,
}

impl TenantOp {
    /// The operation's class.
    pub fn class(&self) -> OpClass {
        match self.kind {
            TenantOpKind::Point { .. } => OpClass::Point,
            TenantOpKind::Batch { .. } => OpClass::Batch,
            TenantOpKind::RangeScan { .. } => OpClass::RangeScan,
            TenantOpKind::Ingest { .. } => OpClass::Ingest,
        }
    }
}

/// Bounded zipfian sampler over `[0, n)` (the YCSB construction: one O(n)
/// zeta precomputation, then O(1) per sample). Exponent 0 degenerates to
/// uniform. Rank 0 is the most popular key.
#[derive(Debug, Clone)]
struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    fn new(n: u64, exponent: f64) -> Zipfian {
        let theta = exponent.clamp(0.0, 0.999);
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2.min(n)).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        if self.theta == 0.0 || self.n <= 1 {
            return rng.random_range(0..self.n);
        }
        let u: f64 = rng.random_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Deterministic multi-tenant op-stream generator. See the module docs.
#[derive(Debug, Clone)]
pub struct TenantMix {
    config: TenantMixConfig,
    rng: StdRng,
    zipf: Vec<Zipfian>,
    /// Cumulative tenant weights for arrival attribution.
    cum_weight: Vec<f64>,
    tick: u64,
    /// Fractional arrival credit carried across ticks.
    credit: f64,
    /// Arrivals still owed at the current tick.
    pending: u64,
}

impl TenantMix {
    /// Build a generator; fails on an invalid configuration.
    pub fn new(config: TenantMixConfig, seed: u64) -> Result<TenantMix, String> {
        config.validate()?;
        let zipf = config
            .tenants
            .iter()
            .map(|t| Zipfian::new(t.key_space, t.zipf_exponent))
            .collect();
        let mut acc = 0.0;
        let cum_weight = config
            .tenants
            .iter()
            .map(|t| {
                acc += t.weight;
                acc
            })
            .collect();
        Ok(TenantMix {
            config,
            rng: StdRng::seed_from_u64(seed ^ 0x74656e616e74), // "tenant"
            zipf,
            cum_weight,
            tick: 0,
            credit: 0.0,
            pending: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TenantMixConfig {
        &self.config
    }

    /// The current virtual tick (arrival time of the next op).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Next arrival. Advances the virtual clock over idle ticks as needed;
    /// the stream is infinite.
    pub fn next_op(&mut self) -> TenantOp {
        while self.pending == 0 {
            self.credit += self.config.burst.rate(self.tick);
            let due = self.credit.floor();
            self.credit -= due;
            self.pending = due as u64;
            if self.pending == 0 {
                self.tick += 1; // idle tick: credit below one whole arrival
            }
        }
        self.pending -= 1;
        let tick = self.tick;
        if self.pending == 0 {
            self.tick += 1;
        }

        let tenant = self.pick_tenant();
        let kind = self.pick_op(tenant);
        TenantOp { tenant, tick, kind }
    }

    fn pick_tenant(&mut self) -> usize {
        let total = *self.cum_weight.last().expect("validated non-empty");
        let x: f64 = self.rng.random_range(0.0..total);
        self.cum_weight
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.cum_weight.len() - 1)
    }

    fn pick_op(&mut self, tenant: usize) -> TenantOpKind {
        let profile = self.config.tenants[tenant].clone();
        let w = profile.mix.weights();
        let total: f64 = w.iter().sum();
        let mut x: f64 = self.rng.random_range(0.0..total);
        let mut class = OpClass::Ingest;
        for (i, c) in OpClass::ALL.iter().enumerate() {
            if x < w[i] {
                class = *c;
                break;
            }
            x -= w[i];
        }
        match class {
            OpClass::Point => TenantOpKind::Point {
                key: self.sample_key(tenant),
            },
            OpClass::Batch => TenantOpKind::Batch {
                keys: (0..profile.batch_size)
                    .map(|_| self.sample_key(tenant))
                    .collect(),
            },
            OpClass::RangeScan => {
                let span = profile.scan_span.min(profile.key_space);
                let start = self.sample_key(tenant).min(profile.key_space - span);
                TenantOpKind::RangeScan { start, span }
            }
            OpClass::Ingest => TenantOpKind::Ingest {
                keys: (0..profile.ingest_batch)
                    .map(|_| self.sample_key(tenant))
                    .collect(),
            },
        }
    }

    /// One zipf-popular key of the tenant's space (rank 0 = hottest).
    fn sample_key(&mut self, tenant: usize) -> u64 {
        self.zipf[tenant].sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_configs() {
        let ok = TenantMixConfig::default();
        assert!(ok.validate().is_ok());

        let mut bad = TenantMixConfig::default();
        bad.tenants.clear();
        assert!(bad.validate().is_err());

        let mut bad = TenantMixConfig::default();
        bad.tenants[0].weight = 0.0;
        assert!(bad.validate().is_err());

        let mut bad = TenantMixConfig::default();
        bad.tenants[1].mix = OpMix {
            point: 0.0,
            batch: 0.0,
            range_scan: 0.0,
            ingest: 0.0,
        };
        assert!(bad.validate().is_err());

        let mut bad = TenantMixConfig::default();
        bad.burst.burst_len = bad.burst.burst_period + 1;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn stream_advances_ticks_and_attributes_tenants() {
        let mut m = TenantMix::new(TenantMixConfig::default(), 9).unwrap();
        let n_tenants = m.config().tenants.len();
        let mut seen = vec![0usize; n_tenants];
        let mut last_tick = 0;
        for _ in 0..2000 {
            let op = m.next_op();
            assert!(op.tenant < n_tenants);
            assert!(op.tick >= last_tick, "ticks are monotone");
            last_tick = op.tick;
            seen[op.tenant] += 1;
        }
        assert!(
            seen.iter().all(|&c| c > 0),
            "equal weights reach every tenant: {seen:?}"
        );
        assert!(last_tick > 100, "open-loop clock advanced: {last_tick}");
    }

    #[test]
    fn zipfian_is_bounded_and_head_heavy() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0u64;
        const N: u64 = 20_000;
        for _ in 0..N {
            let k = z.sample(&mut rng);
            assert!(k < 10_000);
            if k < 100 {
                head += 1;
            }
        }
        // Under uniform the top-100 keys would see ~1% of draws; zipf 0.99
        // concentrates far more there.
        assert!(head > N / 10, "top-1% keys drew only {head}/{N} samples");
    }
}
