//! The paper's index definitions (§8.1):
//!
//! * **I1**: one equality column, one sort column, one included column;
//! * **I2**: two equality columns, one included column;
//! * **I3**: one equality column, one included column.
//!
//! Each column is an 8-byte `long`.

use std::sync::Arc;

use umzi_encoding::{ColumnType, Datum, IndexDef};

/// One of the paper's three index shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexPreset {
    /// One equality + one sort + one included column (the default, §8.1).
    I1,
    /// Two equality columns + one included column.
    I2,
    /// One equality column + one included column.
    I3,
}

impl IndexPreset {
    /// All presets, in paper order.
    pub const ALL: [IndexPreset; 3] = [IndexPreset::I1, IndexPreset::I2, IndexPreset::I3];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            IndexPreset::I1 => "I1",
            IndexPreset::I2 => "I2",
            IndexPreset::I3 => "I3",
        }
    }

    /// Build the index definition.
    pub fn def(self) -> Arc<IndexDef> {
        let b = IndexDef::builder(self.label());
        let b = match self {
            IndexPreset::I1 => b
                .equality("eq0", ColumnType::Int64)
                .sort("sort0", ColumnType::Int64),
            IndexPreset::I2 => b
                .equality("eq0", ColumnType::Int64)
                .equality("eq1", ColumnType::Int64),
            IndexPreset::I3 => b.equality("eq0", ColumnType::Int64),
        };
        Arc::new(
            b.included("inc0", ColumnType::Int64)
                .build()
                .expect("presets are valid"),
        )
    }

    /// Split a scalar key `k` into this preset's (equality, sort) groups.
    ///
    /// A single `u64` key space keeps generators index-shape-agnostic:
    /// * I1: equality = high 32 bits, sort = low 32 bits;
    /// * I2: two equality columns from the same split;
    /// * I3: the whole key as the single equality column.
    pub fn split_key(self, k: u64) -> (Vec<Datum>, Vec<Datum>) {
        let hi = (k >> 32) as i64;
        let lo = (k & 0xFFFF_FFFF) as i64;
        match self {
            IndexPreset::I1 => (vec![Datum::Int64(hi)], vec![Datum::Int64(lo)]),
            IndexPreset::I2 => (vec![Datum::Int64(hi), Datum::Int64(lo)], vec![]),
            IndexPreset::I3 => (vec![Datum::Int64(k as i64)], vec![]),
        }
    }

    /// The included-column payload for key `k`.
    pub fn included_of(self, k: u64) -> Vec<Datum> {
        vec![Datum::Int64((k ^ 0x5DEE_CE66) as i64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let i1 = IndexPreset::I1.def();
        assert_eq!(
            (
                i1.equality_columns().len(),
                i1.sort_columns().len(),
                i1.included_columns().len()
            ),
            (1, 1, 1)
        );
        let i2 = IndexPreset::I2.def();
        assert_eq!(
            (
                i2.equality_columns().len(),
                i2.sort_columns().len(),
                i2.included_columns().len()
            ),
            (2, 0, 1)
        );
        let i3 = IndexPreset::I3.def();
        assert_eq!(
            (
                i3.equality_columns().len(),
                i3.sort_columns().len(),
                i3.included_columns().len()
            ),
            (1, 0, 1)
        );
    }

    #[test]
    fn split_key_is_deterministic_and_injective_per_preset() {
        for preset in IndexPreset::ALL {
            let mut seen = std::collections::HashSet::new();
            for k in [0u64, 1, 42, 1 << 33, u64::MAX] {
                let (eq, sort) = preset.split_key(k);
                assert_eq!(preset.split_key(k), (eq.clone(), sort.clone()));
                assert!(
                    seen.insert(format!("{eq:?}|{sort:?}")),
                    "{preset:?} collided at {k}"
                );
            }
        }
    }
}
