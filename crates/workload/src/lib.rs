//! Synthetic workloads matching the Umzi paper's experiment setup (§8.1,
//! §8.4).
//!
//! * [`IndexPreset`] — the paper's three index definitions I1/I2/I3, each
//!   over 8-byte `long` columns.
//! * [`KeyGen`] — sequential keys (time-correlated) and random keys
//!   (uniform, no temporal correlation), for both ingestion and query
//!   batches.
//! * [`IotUpdateModel`] — §8.4's realistic IoT update mix: per groom cycle,
//!   the new batch updates `p%` of the previous cycle, `0.1·p%` of the last
//!   50 cycles and `0.01·p%` of the last 100 cycles.
//! * [`MixedWorkload`] — one deterministic stream interleaving IoT ingest
//!   batches with device scans and batched lookups, for benchmarks that
//!   exercise the background maintenance daemon under HTAP load.
//! * [`TenantMix`] — N weighted tenants with zipf-skewed key popularity,
//!   per-tenant operation mixes and a bursty open-loop arrival schedule on
//!   a virtual tick clock, for tail-latency (SLO) harnesses.

pub mod iot;
pub mod keys;
pub mod mixed;
pub mod presets;
pub mod tenant;

pub use iot::{IotUpdateModel, UpdateMix};
pub use keys::{KeyDist, KeyGen};
pub use mixed::{MixedConfig, MixedOp, MixedWorkload};
pub use presets::IndexPreset;
pub use tenant::{
    BurstModel, OpClass, OpMix, TenantMix, TenantMixConfig, TenantOp, TenantOpKind, TenantProfile,
};
