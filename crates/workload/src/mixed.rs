//! A mixed ingest + scan HTAP stream.
//!
//! The §8.4 experiments run a writer and readers on separate threads; this
//! generator instead interleaves operations into **one deterministic
//! stream**, which is what a throughput benchmark or a stress harness wants
//! to replay: ingest batches follow the IoT update model
//! ([`crate::IotUpdateModel`]), and between them the configured fractions of
//! device range-scans and batched point lookups are drawn over the keys
//! created so far.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::iot::IotUpdateModel;

/// One operation of the mixed stream.
#[derive(Debug, Clone, PartialEq)]
pub enum MixedOp {
    /// Upsert these `(key, is_update)` pairs as one batch.
    IngestBatch(Vec<(u64, bool)>),
    /// Range-scan every message of one device (OLAP-ish read).
    ScanDevice(u64),
    /// Batched point lookups over these keys (OLTP-ish read).
    LookupBatch(Vec<u64>),
}

/// Tuning for [`MixedWorkload`].
#[derive(Debug, Clone, Copy)]
pub struct MixedConfig {
    /// IoT update fraction `p` (§8.4; default 0.10).
    pub p_update: f64,
    /// Rows per ingest batch.
    pub ingest_batch: usize,
    /// Keys per lookup batch.
    pub lookup_batch: usize,
    /// Device-scan operations emitted per ingest batch (may be fractional;
    /// the remainder is carried over).
    pub scans_per_ingest: f64,
    /// Lookup batches emitted per ingest batch (may be fractional).
    pub lookups_per_ingest: f64,
    /// Number of devices keys map onto (`device = key % devices`).
    pub devices: u64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        Self {
            p_update: 0.10,
            ingest_batch: 1000,
            lookup_batch: 256,
            scans_per_ingest: 1.0,
            lookups_per_ingest: 1.0,
            devices: 1000,
        }
    }
}

/// Deterministic generator of a mixed ingest + scan stream.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    config: MixedConfig,
    model: IotUpdateModel,
    rng: StdRng,
    /// Fractional read credit carried between ingest batches.
    scan_credit: f64,
    lookup_credit: f64,
    /// Reads queued behind the current credit.
    queued: Vec<MixedOp>,
}

impl MixedWorkload {
    /// Create a stream with the given tuning and seed.
    pub fn new(config: MixedConfig, seed: u64) -> MixedWorkload {
        MixedWorkload {
            model: IotUpdateModel::new(config.p_update, config.ingest_batch, seed),
            rng: StdRng::seed_from_u64(seed ^ 0x6d69786564), // "mixed"
            config,
            scan_credit: 0.0,
            lookup_credit: 0.0,
            queued: Vec::new(),
        }
    }

    /// Total distinct keys created so far.
    pub fn keys_created(&self) -> u64 {
        self.model.keys_created()
    }

    /// The device a key belongs to.
    pub fn device_of(&self, key: u64) -> u64 {
        key % self.config.devices
    }

    /// Next operation of the stream: queued reads first, otherwise the next
    /// ingest batch, which accrues read credit against the keys that
    /// already existed (so a sequential replay always finds the keys it
    /// reads, modulo grooming lag).
    pub fn next_op(&mut self) -> MixedOp {
        if let Some(op) = self.queued.pop() {
            return op;
        }
        let domain = self.model.keys_created();
        let batch = self.model.next_cycle();
        self.scan_credit += self.config.scans_per_ingest;
        self.lookup_credit += self.config.lookups_per_ingest;
        if domain > 0 {
            while self.scan_credit >= 1.0 {
                self.scan_credit -= 1.0;
                let key = self.rng.random_range(0..domain);
                self.queued.push(MixedOp::ScanDevice(self.device_of(key)));
            }
            while self.lookup_credit >= 1.0 {
                self.lookup_credit -= 1.0;
                let keys = (0..self.config.lookup_batch)
                    .map(|_| self.rng.random_range(0..domain))
                    .collect();
                self.queued.push(MixedOp::LookupBatch(keys));
            }
        }
        MixedOp::IngestBatch(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_ingest_then_mixes_reads() {
        let mut w = MixedWorkload::new(MixedConfig::default(), 7);
        let first = w.next_op();
        assert!(matches!(first, MixedOp::IngestBatch(_)), "no keys yet");
        assert!(w.keys_created() > 0);
        let mut scans = 0;
        let mut lookups = 0;
        let mut ingests = 0;
        for _ in 0..30 {
            match w.next_op() {
                MixedOp::ScanDevice(_) => scans += 1,
                MixedOp::LookupBatch(keys) => {
                    assert_eq!(keys.len(), 256);
                    assert!(keys.iter().all(|&k| k < w.keys_created()));
                    lookups += 1;
                }
                MixedOp::IngestBatch(batch) => {
                    assert_eq!(batch.len(), 1000);
                    ingests += 1;
                }
            }
        }
        assert!(scans > 0 && lookups > 0 && ingests > 3);
        // Defaults: roughly one scan + one lookup per ingest.
        assert!(
            (scans as i64 - ingests as i64).abs() <= 2,
            "{scans} vs {ingests}"
        );
        assert!((lookups as i64 - ingests as i64).abs() <= 2);
    }

    #[test]
    fn fractional_read_rates_accumulate() {
        let mut w = MixedWorkload::new(
            MixedConfig {
                scans_per_ingest: 0.25,
                lookups_per_ingest: 0.0,
                ..MixedConfig::default()
            },
            7,
        );
        let mut scans = 0;
        let mut ingests = 0;
        for _ in 0..41 {
            match w.next_op() {
                MixedOp::ScanDevice(_) => scans += 1,
                MixedOp::IngestBatch(_) => ingests += 1,
                MixedOp::LookupBatch(_) => panic!("lookups disabled"),
            }
        }
        assert!(ingests >= 32, "ingests dominate: {ingests}");
        assert!((7..=9).contains(&scans), "≈ ingests/4 scans, got {scans}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = MixedWorkload::new(MixedConfig::default(), 11);
        let mut b = MixedWorkload::new(MixedConfig::default(), 11);
        for _ in 0..50 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
