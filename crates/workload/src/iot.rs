//! The §8.4 IoT update model.
//!
//! *"The ingested data for the latest groom cycle updates p% of data from
//! the last groom cycle, and 0.1×p% of data from the last 50 cycles, and
//! 0.01×p% of data in the last 100 cycles. By default, we set p% = 10%."*

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three update strata of §8.4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateMix {
    /// Fraction of the batch updating keys from the previous cycle.
    pub last_cycle: f64,
    /// Fraction updating keys from the last 50 cycles.
    pub last_50: f64,
    /// Fraction updating keys from the last 100 cycles.
    pub last_100: f64,
}

impl UpdateMix {
    /// The paper's parametrization for a given `p` (fraction, e.g. `0.10`).
    pub fn for_p(p: f64) -> Self {
        Self {
            last_cycle: p,
            last_50: 0.1 * p,
            last_100: 0.01 * p,
        }
    }
}

/// Generates per-cycle ingestion batches with the paper's update strata;
/// keys are dense u64s, new keys continuing where the previous cycle ended.
#[derive(Debug, Clone)]
pub struct IotUpdateModel {
    mix: UpdateMix,
    records_per_cycle: usize,
    next_new_key: u64,
    cycle: u64,
    rng: StdRng,
    /// First key of each past cycle (index = cycle number).
    cycle_starts: Vec<u64>,
}

impl IotUpdateModel {
    /// Create the model. `p` is the update fraction (0.0–1.0).
    pub fn new(p: f64, records_per_cycle: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p out of range");
        Self {
            mix: UpdateMix::for_p(p),
            records_per_cycle,
            next_new_key: 0,
            cycle: 0,
            rng: StdRng::seed_from_u64(seed),
            cycle_starts: Vec::new(),
        }
    }

    /// The configured mix.
    pub fn mix(&self) -> UpdateMix {
        self.mix
    }

    /// Total distinct keys created so far.
    pub fn keys_created(&self) -> u64 {
        self.next_new_key
    }

    /// Cycles generated so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    fn sample_from_cycles_back(&mut self, back: u64) -> Option<u64> {
        if self.cycle == 0 {
            return None;
        }
        let first_cycle = self.cycle.saturating_sub(back);
        let lo = self.cycle_starts[first_cycle as usize];
        let hi = self.next_new_key;
        (lo < hi).then(|| self.rng.random_range(lo..hi))
    }

    /// Generate the next cycle's keys: mostly fresh inserts plus the three
    /// update strata. Returns `(key, is_update)` pairs.
    pub fn next_cycle(&mut self) -> Vec<(u64, bool)> {
        let n = self.records_per_cycle;
        let n_last = (n as f64 * self.mix.last_cycle) as usize;
        let n_50 = (n as f64 * self.mix.last_50) as usize;
        let n_100 = (n as f64 * self.mix.last_100) as usize;

        let mut out = Vec::with_capacity(n);
        for stratum in [(n_last, 1u64), (n_50, 50), (n_100, 100)] {
            for _ in 0..stratum.0 {
                if let Some(k) = self.sample_from_cycles_back(stratum.1) {
                    out.push((k, true));
                }
            }
        }
        self.cycle_starts.push(self.next_new_key);
        while out.len() < n {
            out.push((self.next_new_key, false));
            self.next_new_key += 1;
        }
        self.cycle += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cycle_is_all_inserts() {
        let mut m = IotUpdateModel::new(0.10, 1000, 1);
        let batch = m.next_cycle();
        assert_eq!(batch.len(), 1000);
        assert!(batch.iter().all(|(_, upd)| !upd));
        assert_eq!(m.keys_created(), 1000);
    }

    #[test]
    fn update_fraction_close_to_p() {
        let mut m = IotUpdateModel::new(0.10, 10_000, 1);
        for _ in 0..10 {
            m.next_cycle();
        }
        let batch = m.next_cycle();
        let updates = batch.iter().filter(|(_, u)| *u).count();
        // p + 0.1p + 0.01p = 11.1% of 10_000 = 1110.
        assert!((1000..=1300).contains(&updates), "updates = {updates}");
        // Updated keys must already exist.
        let max_existing = m.keys_created();
        for (k, upd) in batch {
            if upd {
                assert!(k < max_existing);
            }
        }
    }

    #[test]
    fn p_zero_is_read_only_inserts() {
        let mut m = IotUpdateModel::new(0.0, 100, 1);
        for _ in 0..5 {
            assert!(m.next_cycle().iter().all(|(_, u)| !u));
        }
    }

    #[test]
    fn p_one_updates_everything_after_warmup() {
        let mut m = IotUpdateModel::new(1.0, 100, 1);
        m.next_cycle();
        let batch = m.next_cycle();
        let updates = batch.iter().filter(|(_, u)| *u).count();
        assert!(
            updates >= 100,
            "p=100%: the whole batch is updates, got {updates}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = IotUpdateModel::new(0.2, 500, 9);
        let mut b = IotUpdateModel::new(0.2, 500, 9);
        for _ in 0..5 {
            assert_eq!(a.next_cycle(), b.next_cycle());
        }
    }
}
