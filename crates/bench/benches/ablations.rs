//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **reconcile**: set vs priority-queue reconciliation (§7.1.2) across
//!   scan-range sizes — the set approach wins small ranges, the PQ approach
//!   holds bounded memory for large ones;
//! * **offset_bits**: offset-array width vs pure binary search (§4.2) —
//!   wider arrays narrow the initial search range;
//! * **merge_policy**: K/T sweep (§5.3) — leveling-like (K=1) vs
//!   tiering-like (large K) total merge work;
//! * **batch_sort**: batched sorted lookups (§7.2) vs one-by-one point
//!   lookups.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::sync::Arc;
use umzi_bench::{bench_index, ingest_runs, lookup_batch, point_groups, scan_range};
use umzi_core::{MergePolicy, ReconcileStrategy, UmziConfig, UmziIndex};
use umzi_storage::TieredStorage;
use umzi_workload::{IndexPreset, KeyDist, KeyGen};

fn abl_reconcile(c: &mut Criterion) {
    let mut g = c.benchmark_group("abl_reconcile");
    g.sample_size(10);
    let idx = bench_index(IndexPreset::I1, "abl-rec");
    let total = ingest_runs(
        &idx,
        IndexPreset::I1,
        KeyDist::Sequential,
        20,
        20_000,
        true,
        7,
    );
    for (name, strategy) in [
        ("set", ReconcileStrategy::Set),
        ("pq", ReconcileStrategy::PriorityQueue),
    ] {
        for range in [10u64, 1_000, 100_000] {
            let mut starts = KeyGen::new(KeyDist::Random, total.saturating_sub(range).max(1), 99);
            g.bench_with_input(BenchmarkId::new(name, range), &range, |b, &range| {
                b.iter(|| {
                    let start = starts.batch(1)[0];
                    scan_range(&idx, start, range, u64::MAX, strategy)
                })
            });
        }
    }
    g.finish();
}

fn abl_offset_bits(c: &mut Criterion) {
    let mut g = c.benchmark_group("abl_offset_bits");
    g.sample_size(15);
    for bits in [0u8, 4, 8, 12] {
        let storage = Arc::new(TieredStorage::in_memory());
        let mut config = UmziConfig::two_zone(format!("abl-ob-{bits}"));
        config.offset_bits = bits;
        config.merge = MergePolicy {
            k: usize::MAX / 2,
            t: 4,
        };
        let idx = UmziIndex::create(storage, IndexPreset::I1.def(), config).expect("create");
        let total = ingest_runs(
            &idx,
            IndexPreset::I1,
            KeyDist::Sequential,
            10,
            20_000,
            false,
            7,
        );
        let mut qgen = KeyGen::new(KeyDist::Random, total, 99);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                let keys = qgen.query_batch(1000, total);
                lookup_batch(&idx, IndexPreset::I1, &keys, u64::MAX)
            })
        });
    }
    g.finish();
}

fn abl_merge_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("abl_merge_policy");
    g.sample_size(10);
    for (k, t) in [(1usize, 4u64), (4, 4), (8, 4), (4, 2), (4, 8)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("K{k}_T{t}")),
            &(k, t),
            |b, &(k, t)| {
                b.iter_batched(
                    || {
                        let storage = Arc::new(TieredStorage::in_memory());
                        let mut config =
                            UmziConfig::two_zone(format!("abl-mp-{k}-{t}-{:p}", &storage));
                        config.merge = MergePolicy { k, t };
                        UmziIndex::create(storage, IndexPreset::I1.def(), config).expect("create")
                    },
                    |idx| {
                        // Total maintenance work for 16 grooms of 5000 keys.
                        let mut gen = KeyGen::new(KeyDist::Sequential, 80_000, 7);
                        for r in 0..16u64 {
                            let keys = gen.batch(5_000);
                            let entries =
                                umzi_bench::point_entries(&idx, IndexPreset::I1, &keys, r * 5_000);
                            idx.build_groomed_run(entries, r + 1, r + 1).expect("build");
                            idx.drain_merges().expect("merge");
                        }
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    g.finish();
}

fn abl_batch_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("abl_batch_vs_individual");
    g.sample_size(15);
    let idx = bench_index(IndexPreset::I1, "abl-bs");
    let total = ingest_runs(
        &idx,
        IndexPreset::I1,
        KeyDist::Sequential,
        20,
        20_000,
        false,
        7,
    );
    let mut qgen = KeyGen::new(KeyDist::Random, total, 99);

    g.bench_function("batched_sorted", |b| {
        b.iter(|| {
            let keys = qgen.query_batch(1000, total);
            lookup_batch(&idx, IndexPreset::I1, &keys, u64::MAX)
        })
    });
    g.bench_function("individual_lookups", |b| {
        b.iter(|| {
            let keys = qgen.query_batch(1000, total);
            for k in keys {
                let (eq, sort) = point_groups(IndexPreset::I1, k);
                std::hint::black_box(idx.point_lookup(&eq, &sort, u64::MAX).expect("lookup"));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    abl_reconcile,
    abl_offset_bits,
    abl_merge_policy,
    abl_batch_sort
);
criterion_main!(benches);
