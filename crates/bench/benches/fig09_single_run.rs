//! Criterion micro-bench for Figure 9: batched lookups against a single
//! run, varying run size, query distribution and index definition. Shape to
//! verify: run size has limited impact (offset array + binary search); I2 is
//! slower than I1/I3 (two equality columns make the offset array's
//! narrowing less effective, §8.3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use umzi_bench::{bench_index, ingest_runs, lookup_batch};
use umzi_workload::{IndexPreset, KeyDist, KeyGen};

fn bench_single_run(c: &mut Criterion) {
    let batch = 1000usize;
    for qdist in [KeyDist::Sequential, KeyDist::Random] {
        let mut g = c.benchmark_group(format!("fig09_single_run_{}", qdist.label()));
        g.sample_size(20);
        for preset in IndexPreset::ALL {
            for size in [10_000u64, 100_000, 1_000_000] {
                let idx = bench_index(
                    preset,
                    &format!("b9-{}-{}-{size}", qdist.label(), preset.label()),
                );
                ingest_runs(&idx, preset, KeyDist::Sequential, 1, size, false, 7);
                let mut qgen = KeyGen::new(qdist, size, 99);
                g.throughput(Throughput::Elements(batch as u64));
                g.bench_with_input(BenchmarkId::new(preset.label(), size), &size, |b, &size| {
                    b.iter(|| {
                        let keys = qgen.query_batch(batch, size);
                        lookup_batch(&idx, preset, &keys, u64::MAX)
                    })
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, bench_single_run);
criterion_main!(benches);
