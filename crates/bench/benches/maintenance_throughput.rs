//! Maintenance-daemon throughput benchmark: replay one deterministic mixed
//! ingest + scan stream ([`umzi_workload::MixedWorkload`]) against the
//! engine in two configurations —
//!
//! * **daemon**: background maintenance on (worker pool, backpressure,
//!   janitor) — grooming/merging/evolving happens off the caller's thread;
//! * **inline**: no background maintenance — the whole pipeline is drained
//!   synchronously on the ingest thread at the same cadence.
//!
//! Emits `BENCH_maintenance.json` (override with `UMZI_BENCH_MAINT_OUT`)
//! with rows/sec and ops/sec per mode plus the daemon's per-job counters
//! and backpressure stats, so PRs can track the maintenance trajectory.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use umzi_core::{JobKind, MaintenanceConfig, MaintenanceStats, ReconcileStrategy};
use umzi_encoding::Datum;
use umzi_run::SortBound;
use umzi_storage::TieredStorage;
use umzi_wildfire::{iot_table, EngineConfig, Freshness, ShardConfig, WildfireEngine};
use umzi_workload::{MixedConfig, MixedOp, MixedWorkload};

const CYCLES: usize = 120;

fn key_row(k: u64) -> Vec<Datum> {
    vec![
        Datum::Int64((k % 1000) as i64),
        Datum::Int64((k / 1000) as i64),
        Datum::Int64(20190326 + (k % 7) as i64),
        Datum::Int64(k as i64),
    ]
}

fn key_probe(k: u64) -> (Vec<Datum>, Vec<Datum>) {
    (
        vec![Datum::Int64((k % 1000) as i64)],
        vec![Datum::Int64((k / 1000) as i64)],
    )
}

struct Outcome {
    mode: &'static str,
    rows: u64,
    scans: u64,
    lookups: u64,
    secs: f64,
    stats: Option<MaintenanceStats>,
}

impl Outcome {
    fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.secs.max(1e-9)
    }
}

fn engine(maintenance: Option<MaintenanceConfig>) -> Arc<WildfireEngine> {
    let mut shard = ShardConfig::default();
    shard.umzi.merge = umzi_core::MergePolicy { k: 4, t: 4 };
    WildfireEngine::create(
        Arc::new(TieredStorage::in_memory()),
        Arc::new(iot_table()),
        EngineConfig {
            n_shards: 1,
            shard,
            groom_interval: Duration::from_millis(20),
            post_groom_interval: Duration::from_millis(200),
            groom_trigger_rows: 1000,
            maintenance,
            ..EngineConfig::default()
        },
    )
    .expect("create engine")
}

/// Replay the stream; `inline_every` synchronously quiesces the pipeline
/// every N ingest batches (the pre-daemon behavior), `None` leaves all
/// maintenance to the background daemon.
fn replay(e: &Arc<WildfireEngine>, inline_every: Option<usize>, seed: u64) -> (u64, u64, u64) {
    let mut stream = MixedWorkload::new(
        MixedConfig {
            ingest_batch: 1000,
            lookup_batch: 128,
            scans_per_ingest: 0.5,
            lookups_per_ingest: 0.5,
            ..MixedConfig::default()
        },
        seed,
    );
    let (mut rows, mut scans, mut lookups, mut ingests) = (0u64, 0u64, 0u64, 0usize);
    while ingests < CYCLES {
        match stream.next_op() {
            MixedOp::IngestBatch(batch) => {
                let batch_rows: Vec<Vec<Datum>> = batch.iter().map(|&(k, _)| key_row(k)).collect();
                rows += batch_rows.len() as u64;
                e.upsert_many(batch_rows).expect("upsert");
                ingests += 1;
                if let Some(every) = inline_every {
                    if ingests % every == 0 {
                        e.quiesce().expect("inline quiesce");
                    }
                }
            }
            MixedOp::ScanDevice(d) => {
                scans += 1;
                std::hint::black_box(
                    e.scan_index(
                        vec![Datum::Int64(d as i64)],
                        SortBound::Unbounded,
                        SortBound::Unbounded,
                        Freshness::Latest,
                        ReconcileStrategy::PriorityQueue,
                    )
                    .expect("scan"),
                );
            }
            MixedOp::LookupBatch(keys) => {
                lookups += 1;
                let probes: Vec<_> = keys.iter().map(|&k| key_probe(k)).collect();
                let shard = &e.shards()[0];
                std::hint::black_box(
                    shard
                        .index()
                        .batch_lookup(&probes, shard.read_ts())
                        .expect("batch lookup"),
                );
            }
        }
    }
    (rows, scans, lookups)
}

fn run_daemon_mode() -> Outcome {
    let e = engine(Some(MaintenanceConfig {
        workers: 2,
        l0_high_watermark: 16,
        l0_low_watermark: 6,
        throttle: None,
        janitor_interval: Duration::from_millis(50),
        adaptive_cache: false,
        ..MaintenanceConfig::default()
    }));
    let daemons = e.start_daemons();
    let t0 = Instant::now();
    let (rows, scans, lookups) = replay(&e, None, 42);
    let secs = t0.elapsed().as_secs_f64();
    // Let the background catch up before reading the counters, so the
    // report reflects the full maintenance cost that ingest did NOT pay.
    if let Some(d) = daemons.daemon() {
        for shard in 0..e.shards().len() {
            d.enqueue(umzi_core::Job::Groom { shard });
            d.enqueue(umzi_core::Job::Evolve { shard });
        }
        d.wait_idle(Duration::from_secs(30));
    }
    let stats = e.maintenance_stats();
    daemons.shutdown();
    e.quiesce().expect("final drain");
    Outcome {
        mode: "daemon",
        rows,
        scans,
        lookups,
        secs,
        stats,
    }
}

fn run_inline_mode() -> Outcome {
    let e = engine(None);
    let t0 = Instant::now();
    let (rows, scans, lookups) = replay(&e, Some(4), 42);
    e.quiesce().expect("final drain");
    let secs = t0.elapsed().as_secs_f64();
    Outcome {
        mode: "inline",
        rows,
        scans,
        lookups,
        secs,
        stats: None,
    }
}

fn main() {
    let daemon = run_daemon_mode();
    let inline = run_inline_mode();

    eprintln!("\n== maintenance_throughput ==");
    for o in [&daemon, &inline] {
        eprintln!(
            "{:<8} {:>9} rows  {:>5} scans  {:>5} lookup-batches  {:>8.2}s  {:>12.0} rows/sec",
            o.mode,
            o.rows,
            o.scans,
            o.lookups,
            o.secs,
            o.rows_per_sec()
        );
    }
    if let Some(s) = &daemon.stats {
        for (kind, k) in &s.per_kind {
            eprintln!(
                "  {:<18} runs={:<6} idle={:<6} items={:<9} bytes={}",
                kind.label(),
                k.runs,
                k.no_work,
                k.items_moved,
                k.bytes_moved
            );
        }
        eprintln!(
            "  queue: peak={} dedup={} enqueued={}  backpressure: stalls={} stall_ms={}",
            s.peak_queue_depth,
            s.dedup_hits,
            s.enqueued,
            s.backpressure.stalls,
            s.backpressure.stall_nanos / 1_000_000
        );
    }
    let speedup = daemon.rows_per_sec() / inline.rows_per_sec().max(1e-9);
    eprintln!("ingest speedup daemon/inline: {speedup:.2}x");

    let mut json = String::from("{\n  \"bench\": \"maintenance_throughput\",\n  \"results\": [\n");
    let entries: Vec<String> = [&daemon, &inline]
        .iter()
        .map(|o| {
            format!(
                "    {{\"mode\": \"{}\", \"rows\": {}, \"scans\": {}, \"lookup_batches\": {}, \"secs\": {:.3}, \"ingest_rows_per_sec\": {:.1}}}",
                o.mode, o.rows, o.scans, o.lookups, o.secs, o.rows_per_sec()
            )
        })
        .collect();
    let _ = writeln!(json, "{}", entries.join(",\n"));
    let _ = writeln!(json, "  ],");
    if let Some(s) = &daemon.stats {
        let jobs: Vec<String> = JobKind::ALL
            .iter()
            .map(|k| {
                let ks = s.kind(*k);
                format!(
                    "    {{\"kind\": \"{}\", \"runs\": {}, \"no_work\": {}, \"items_moved\": {}, \"bytes_moved\": {}}}",
                    k.label(),
                    ks.runs,
                    ks.no_work,
                    ks.items_moved,
                    ks.bytes_moved
                )
            })
            .collect();
        let _ = writeln!(json, "  \"daemon_jobs\": [\n{}\n  ],", jobs.join(",\n"));
        let _ = writeln!(
            json,
            "  \"backpressure\": {{\"stalls\": {}, \"stall_nanos\": {}}},",
            s.backpressure.stalls, s.backpressure.stall_nanos
        );
        let _ = writeln!(
            json,
            "  \"queue\": {{\"peak_depth\": {}, \"dedup_hits\": {}, \"enqueued\": {}}},",
            s.peak_queue_depth, s.dedup_hits, s.enqueued
        );
    }
    let _ = writeln!(
        json,
        "  \"ingest_speedup_daemon_over_inline\": {speedup:.2}"
    );
    json.push_str("}\n");

    let out_path = std::env::var("UMZI_BENCH_MAINT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_maintenance.json").to_string()
    });
    std::fs::write(&out_path, json).expect("write BENCH_maintenance.json");
    eprintln!("wrote {out_path}");
}
