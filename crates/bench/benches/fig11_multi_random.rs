//! Criterion micro-bench for Figure 11: multi-run lookups and scans with
//! *randomly* ingested keys. Shape to verify (§8.3.3): random ingestion
//! defeats the synopsis, so sequential query batches lose their advantage
//! and converge to random-query cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use umzi_bench::{bench_index, ingest_runs, lookup_batch, scan_range};
use umzi_core::ReconcileStrategy;
use umzi_workload::{IndexPreset, KeyDist, KeyGen};

const PER_RUN: u64 = 20_000;

fn bench_run_count_random_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11b_run_count_random_ingest");
    g.sample_size(15);
    for n_runs in [1usize, 10, 20, 40] {
        let idx = bench_index(IndexPreset::I1, &format!("b11b-{n_runs}"));
        let total = ingest_runs(
            &idx,
            IndexPreset::I1,
            KeyDist::Random,
            n_runs,
            PER_RUN,
            false,
            7,
        );
        for qdist in [KeyDist::Sequential, KeyDist::Random] {
            let mut qgen = KeyGen::new(qdist, total, 99);
            g.bench_with_input(BenchmarkId::new(qdist.label(), n_runs), &n_runs, |b, _| {
                b.iter(|| {
                    let keys = qgen.query_batch(1000, total);
                    lookup_batch(&idx, IndexPreset::I1, &keys, u64::MAX)
                })
            });
        }
    }
    g.finish();
}

fn bench_scan_range_random_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11c_scan_range_random_ingest");
    g.sample_size(10);
    let idx = bench_index(IndexPreset::I1, "b11c");
    let total = ingest_runs(&idx, IndexPreset::I1, KeyDist::Random, 20, PER_RUN, true, 7);
    for range in [1u64, 100, 10_000, 100_000] {
        let mut starts = KeyGen::new(KeyDist::Random, total.saturating_sub(range).max(1), 99);
        g.bench_with_input(BenchmarkId::from_parameter(range), &range, |b, &range| {
            b.iter(|| {
                let start = starts.batch(1)[0];
                scan_range(
                    &idx,
                    start,
                    range,
                    u64::MAX,
                    ReconcileStrategy::PriorityQueue,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_run_count_random_ingest,
    bench_scan_range_random_ingest
);
criterion_main!(benches);
