//! Criterion micro-bench for Figure 10: multi-run lookups and scans with
//! *sequentially* ingested keys. Shapes to verify (§8.3.2): sequential query
//! batches beat random ones (synopsis pruning); run count barely affects
//! sequential queries but scales random-query cost ~linearly; scan time
//! grows linearly in range size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use umzi_bench::{bench_index, ingest_runs, lookup_batch, scan_range};
use umzi_core::ReconcileStrategy;
use umzi_workload::{IndexPreset, KeyDist, KeyGen};

const PER_RUN: u64 = 20_000;

fn bench_batch_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10a_batch_size_seq_ingest");
    g.sample_size(15);
    let idx = bench_index(IndexPreset::I1, "b10a");
    let total = ingest_runs(
        &idx,
        IndexPreset::I1,
        KeyDist::Sequential,
        20,
        PER_RUN,
        false,
        7,
    );
    for qdist in [KeyDist::Sequential, KeyDist::Random] {
        for batch in [1usize, 10, 100, 1000] {
            let mut qgen = KeyGen::new(qdist, total, 99);
            g.throughput(Throughput::Elements(batch as u64));
            g.bench_with_input(
                BenchmarkId::new(qdist.label(), batch),
                &batch,
                |b, &batch| {
                    b.iter(|| {
                        let keys = qgen.query_batch(batch, total);
                        lookup_batch(&idx, IndexPreset::I1, &keys, u64::MAX)
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_run_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10b_run_count_seq_ingest");
    g.sample_size(15);
    for n_runs in [1usize, 10, 20, 40] {
        let idx = bench_index(IndexPreset::I1, &format!("b10b-{n_runs}"));
        let total = ingest_runs(
            &idx,
            IndexPreset::I1,
            KeyDist::Sequential,
            n_runs,
            PER_RUN,
            false,
            7,
        );
        for qdist in [KeyDist::Sequential, KeyDist::Random] {
            let mut qgen = KeyGen::new(qdist, total, 99);
            g.bench_with_input(BenchmarkId::new(qdist.label(), n_runs), &n_runs, |b, _| {
                b.iter(|| {
                    let keys = qgen.query_batch(1000, total);
                    lookup_batch(&idx, IndexPreset::I1, &keys, u64::MAX)
                })
            });
        }
    }
    g.finish();
}

fn bench_scan_range(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10c_scan_range_seq_ingest");
    g.sample_size(10);
    let idx = bench_index(IndexPreset::I1, "b10c");
    let total = ingest_runs(
        &idx,
        IndexPreset::I1,
        KeyDist::Sequential,
        20,
        PER_RUN,
        true,
        7,
    );
    for range in [1u64, 100, 10_000, 100_000] {
        let mut starts = KeyGen::new(KeyDist::Random, total.saturating_sub(range).max(1), 99);
        g.throughput(Throughput::Elements(range));
        g.bench_with_input(BenchmarkId::from_parameter(range), &range, |b, &range| {
            b.iter(|| {
                let start = starts.batch(1)[0];
                scan_range(
                    &idx,
                    start,
                    range,
                    u64::MAX,
                    ReconcileStrategy::PriorityQueue,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batch_size, bench_run_count, bench_scan_range);
criterion_main!(benches);
