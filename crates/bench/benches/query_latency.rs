//! Read-path query micro-benchmark: point lookup, range scan and batch
//! lookup at three run-count settings, a before/after comparison of the
//! run-search hot path (pre-change: per-entry binary search with no
//! decoded-block cache; post-change: fence index + decoded-block cache),
//! and a `parallel_reconcile` group comparing the sequential k-way merge
//! against the partitioned parallel merge (1 vs N threads at a fixed run
//! count) on a large scan over sleep-mode SSD latency.
//!
//! Emits `BENCH_query.json` (override the path with `UMZI_BENCH_QUERY_OUT`)
//! with ops/sec and blocks-read-per-op so successive PRs can track the
//! read-path trajectory.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use umzi_bench::{bench_index, ingest_runs, point_groups, scan_groups, POINT_SPAN};
use umzi_core::{MergePolicy, RangeQuery, ReconcileStrategy, UmziConfig, UmziIndex};
use umzi_encoding::Datum;
use umzi_run::{RunSearcher, SortBound};
use umzi_storage::{
    CachePolicy, DecodedCacheConfig, InMemoryObjectStore, LatencyMode, LatencyModel,
    PrefetchConfig, SharedStorage, TierLatency, TieredConfig, TieredStorage,
};
use umzi_workload::IndexPreset;

const PER_RUN: u64 = 20_000;
const RUN_COUNTS: [usize; 3] = [1, 8, 32];
/// Runs in the parallel-reconcile comparison (fixed; only the thread count
/// varies between the two legs).
const PAR_RUNS: usize = 6;
/// Partition count of the parallel leg.
const PAR_THREADS: usize = 4;

struct Measurement {
    workload: &'static str,
    runs: usize,
    ops: u64,
    secs: f64,
    blocks_per_op: f64,
}

impl Measurement {
    fn ops_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.ops as f64 / self.secs
        } else {
            f64::INFINITY
        }
    }
}

/// Time `ops` executions of `f` against `idx`, reading the storage block
/// counter around the loop.
fn measure(
    workload: &'static str,
    runs: usize,
    idx: &UmziIndex,
    ops: u64,
    mut f: impl FnMut(u64),
) -> Measurement {
    f(0); // warm-up op, uncounted
    let blocks_before = idx.storage().stats().chunk_reads;
    let t0 = Instant::now();
    for i in 0..ops {
        f(i);
    }
    let secs = t0.elapsed().as_secs_f64();
    let blocks = idx.storage().stats().chunk_reads - blocks_before;
    Measurement {
        workload,
        runs,
        ops,
        secs,
        blocks_per_op: blocks as f64 / ops as f64,
    }
}

/// An index whose storage matches the pre-change world: no decoded-block
/// cache, so every block touch is a chunk read.
fn index_without_decoded_cache(name: &str) -> Arc<UmziIndex> {
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            mem_capacity: 8 << 30,
            ssd_capacity: 64 << 30,
            decoded_cache: DecodedCacheConfig {
                capacity_bytes: 0,
                ..DecodedCacheConfig::default()
            },
            ..TieredConfig::default()
        },
    ));
    let mut config = UmziConfig::two_zone(name);
    config.merge = MergePolicy {
        k: usize::MAX / 2,
        t: 4,
    };
    UmziIndex::create(storage, IndexPreset::I1.def(), config).expect("create index")
}

/// An index over storage that behaves like a cold SSD: sleep-mode latency
/// per chunk read, a memory tier too small to hold the scan working set,
/// and no decoded-block cache — the regime where a large scan is dominated
/// by block waits and the partitioned merge can overlap them.
fn index_with_scan_partitions(name: &str, partitions: usize) -> Arc<UmziIndex> {
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            mem_capacity: 128 << 10,
            ssd_capacity: 64 << 30,
            ssd_latency: TierLatency::micros(100, 0),
            latency_mode: LatencyMode::Sleep,
            decoded_cache: DecodedCacheConfig {
                capacity_bytes: 0,
                ..DecodedCacheConfig::default()
            },
            ..TieredConfig::default()
        },
    ));
    let mut config = UmziConfig::two_zone(name);
    config.merge = MergePolicy {
        k: usize::MAX / 2,
        t: 4,
    };
    config.scan.max_scan_partitions = partitions;
    config.scan.parallel_row_threshold = 1;
    UmziIndex::create(storage, IndexPreset::I1.def(), config).expect("create index")
}

/// An index whose reads come off a slow *shared* tier: sleep-mode latency
/// per shared GET (charged once per batched multi-range fetch), no decoded
/// cache — the cold-scan regime where pipelined readahead amortises the
/// per-request wait across a whole batch of blocks.
fn index_with_prefetch(name: &str, depth: usize) -> Arc<UmziIndex> {
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::new(
            Arc::new(InMemoryObjectStore::new()),
            LatencyModel::new(TierLatency::micros(200, 0), LatencyMode::Sleep),
        ),
        TieredConfig {
            mem_capacity: 8 << 30,
            ssd_capacity: 64 << 30,
            decoded_cache: DecodedCacheConfig {
                capacity_bytes: 0,
                ..DecodedCacheConfig::default()
            },
            ..TieredConfig::default()
        },
    ));
    storage.set_prefetch_config(PrefetchConfig {
        depth,
        ..PrefetchConfig::default()
    });
    let mut config = UmziConfig::two_zone(name);
    config.merge = MergePolicy {
        k: usize::MAX / 2,
        t: 4,
    };
    UmziIndex::create(storage, IndexPreset::I1.def(), config).expect("create index")
}

/// An index whose decoded cache is the decisive tier: a memory tier too
/// small to matter, sleep-mode SSD latency per chunk read, and a decoded
/// cache ~6× smaller than the dataset — the regime where the replacement
/// policy decides how many block waits a mixed workload pays.
fn index_with_cache_policy(name: &str, policy: CachePolicy) -> Arc<UmziIndex> {
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            mem_capacity: 64 << 10,
            ssd_capacity: 64 << 30,
            ssd_latency: TierLatency::micros(100, 0),
            latency_mode: LatencyMode::Sleep,
            decoded_cache: DecodedCacheConfig {
                capacity_bytes: 512 << 10,
                shards: 4,
                policy,
                ..DecodedCacheConfig::default()
            },
            ..TieredConfig::default()
        },
    ));
    let mut config = UmziConfig::two_zone(name);
    config.merge = MergePolicy {
        k: usize::MAX / 2,
        t: 4,
    };
    UmziIndex::create(storage, IndexPreset::I1.def(), config).expect("create index")
}

fn json_entry(m: &Measurement) -> String {
    format!(
        "    {{\"workload\": \"{}\", \"runs\": {}, \"ops\": {}, \"ops_per_sec\": {:.1}, \"blocks_read_per_op\": {:.3}}}",
        m.workload,
        m.runs,
        m.ops,
        m.ops_per_sec(),
        m.blocks_per_op
    )
}

fn main() {
    let mut results: Vec<Measurement> = Vec::new();
    let mut rng_state = 0x9E3779B97F4A7C15u64;
    let mut next = |bound: u64| {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state % bound.max(1)
    };

    for &rc in &RUN_COUNTS {
        let idx = bench_index(IndexPreset::I1, &format!("qlat-{rc}"));
        let domain = ingest_runs(
            &idx,
            IndexPreset::I1,
            umzi_workload::KeyDist::Random,
            rc,
            PER_RUN,
            false,
            7,
        );

        // Point lookups: single random key per op.
        let keys: Vec<u64> = (0..4096).map(|_| next(domain)).collect();
        results.push(measure("point_lookup", rc, &idx, 2000, |i| {
            let (eq, sort) = point_groups(IndexPreset::I1, keys[(i as usize) % keys.len()]);
            std::hint::black_box(idx.point_lookup(&eq, &sort, u64::MAX).expect("lookup"));
        }));

        // Range scans: all versions of one device (≤ POINT_SPAN keys).
        results.push(measure("range_scan_device", rc, &idx, 400, |i| {
            let d = (keys[(i as usize) % keys.len()] / POINT_SPAN) as i64;
            let query = RangeQuery {
                equality: vec![Datum::Int64(d)],
                lower: SortBound::Unbounded,
                upper: SortBound::Unbounded,
                query_ts: u64::MAX,
            };
            std::hint::black_box(
                idx.range_scan(&query, ReconcileStrategy::PriorityQueue)
                    .expect("scan"),
            );
        }));

        // Batch lookups: 256 random keys per op.
        let batches: Vec<Vec<(Vec<Datum>, Vec<Datum>)>> = (0..16)
            .map(|_| {
                (0..256)
                    .map(|_| point_groups(IndexPreset::I1, next(domain)))
                    .collect()
            })
            .collect();
        results.push(measure("batch_lookup_256", rc, &idx, 64, |i| {
            let batch = &batches[(i as usize) % batches.len()];
            std::hint::black_box(idx.batch_lookup(batch, u64::MAX).expect("batch"));
        }));
    }

    // Parallel reconcile: the same large multi-run scan, merged
    // sequentially (1 thread) vs partitioned across PAR_THREADS threads.
    // Sequential reconcile_pq stays the oracle — the outputs are asserted
    // identical before timing.
    type FlatRows = Vec<(Vec<u8>, Vec<u8>, u64)>;
    let mut par_results = Vec::new();
    {
        let whole_range = RangeQuery {
            equality: vec![Datum::Int64(0)],
            lower: SortBound::Unbounded,
            upper: SortBound::Unbounded,
            query_ts: u64::MAX,
        };
        let mut oracle: Option<FlatRows> = None;
        for (label, partitions) in [
            ("parallel_reconcile_1t", 1usize),
            ("parallel_reconcile_4t", PAR_THREADS),
        ] {
            let idx = index_with_scan_partitions(&format!("qlat-{label}"), partitions);
            ingest_runs(
                &idx,
                IndexPreset::I1,
                umzi_workload::KeyDist::Random,
                PAR_RUNS,
                PER_RUN,
                true,
                11,
            );
            let rows: FlatRows = idx
                .range_scan(&whole_range, ReconcileStrategy::PriorityQueue)
                .expect("scan")
                .iter()
                .map(|o| (o.key.to_vec(), o.value.to_vec(), o.begin_ts))
                .collect();
            match oracle {
                None => oracle = Some(rows),
                Some(ref want) => {
                    assert_eq!(want, &rows, "parallel merge diverged from the oracle")
                }
            }
            par_results.push(measure(label, PAR_RUNS, &idx, 8, |_| {
                std::hint::black_box(
                    idx.range_scan(&whole_range, ReconcileStrategy::PriorityQueue)
                        .expect("scan"),
                );
            }));
        }
    }

    // Pipelined-prefetch A/B: the same cold multi-run scan off a slow
    // shared tier, readahead off (depth 0, the synchronous block-at-a-time
    // path) vs on. Every op purges the runs back to shared storage first,
    // so each scan pays the full cold-read path; the depth-0 leg sleeps
    // once per block, the pipelined leg once per batch.
    const PF_RUNS: usize = 4;
    const PF_DEPTH: usize = 8;
    let mut prefetch_results = Vec::new();
    {
        let whole_range = RangeQuery {
            equality: vec![Datum::Int64(0)],
            lower: SortBound::Unbounded,
            upper: SortBound::Unbounded,
            query_ts: u64::MAX,
        };
        let mut oracle: Option<FlatRows> = None;
        for (label, depth) in [
            ("prefetch_cold_scan_depth0", 0usize),
            ("prefetch_cold_scan_pipelined", PF_DEPTH),
        ] {
            let idx = index_with_prefetch(&format!("qlat-{label}"), depth);
            ingest_runs(
                &idx,
                IndexPreset::I1,
                umzi_workload::KeyDist::Random,
                PF_RUNS,
                PER_RUN,
                true,
                17,
            );
            let handles: Vec<_> = idx.zones()[0]
                .list
                .snapshot()
                .iter()
                .map(|r| r.handle())
                .collect();
            let rows: FlatRows = idx
                .range_scan(&whole_range, ReconcileStrategy::PriorityQueue)
                .expect("scan")
                .iter()
                .map(|o| (o.key.to_vec(), o.value.to_vec(), o.begin_ts))
                .collect();
            match oracle {
                None => oracle = Some(rows),
                Some(ref want) => {
                    assert_eq!(want, &rows, "pipelined scan diverged from depth 0")
                }
            }
            prefetch_results.push(measure(label, PF_RUNS, &idx, 8, |_| {
                for h in &handles {
                    idx.storage().purge_object(*h).expect("purge");
                }
                std::hint::black_box(
                    idx.range_scan(&whole_range, ReconcileStrategy::PriorityQueue)
                        .expect("scan"),
                );
            }));
        }
    }

    // Cache-policy A/B: the same mixed HTAP workload — point lookups on a
    // hot working set, periodically interrupted by a full-table scan over a
    // dataset ~6× the decoded cache — under plain LRU vs the scan-resistant
    // policy. The scan-resistant cache keeps the point working set in its
    // protected segment, so post-scan lookups keep hitting.
    const CACHE_RUNS: usize = 3;
    const HOT_KEYS: usize = 16;
    let mut cache_results = Vec::new();
    let mut cache_hit_rates = Vec::new();
    for (label, policy) in [
        ("cache_policy_mixed_lru", CachePolicy::Lru),
        (
            "cache_policy_mixed_scan_resistant",
            CachePolicy::ScanResistant,
        ),
    ] {
        let idx = index_with_cache_policy(&format!("qlat-{label}"), policy);
        let domain = ingest_runs(
            &idx,
            IndexPreset::I1,
            umzi_workload::KeyDist::Sequential,
            CACHE_RUNS,
            PER_RUN,
            true,
            13,
        );
        let hot: Vec<(Vec<Datum>, Vec<Datum>)> = (0..HOT_KEYS)
            .map(|j| scan_groups(j as u64 * (domain / HOT_KEYS as u64)))
            .collect();
        let whole_range = RangeQuery {
            equality: vec![Datum::Int64(0)],
            lower: SortBound::Unbounded,
            upper: SortBound::Unbounded,
            query_ts: u64::MAX,
        };
        // Warm the working set into the cache (two passes promote it into
        // the protected segment under the scan-resistant policy).
        for _ in 0..3 {
            for (eq, sort) in &hot {
                idx.point_lookup(eq, sort, u64::MAX).expect("warm");
            }
        }
        // Hit rate at *lookup granularity*: a point lookup counts as a hit
        // only when the decoded cache serves it entirely (zero chunk
        // reads) — per-access counters would let a washed cache re-warm
        // itself within one lookup and look healthier than it is.
        let (cached_lookups, total_lookups) =
            (std::cell::Cell::new(0u64), std::cell::Cell::new(0u64));
        cache_results.push(measure(label, CACHE_RUNS, &idx, 512, |i| {
            if i % 16 == 15 {
                std::hint::black_box(
                    idx.range_scan(&whole_range, ReconcileStrategy::PriorityQueue)
                        .expect("scan"),
                );
            } else {
                let (eq, sort) = &hot[(i as usize) % hot.len()];
                let reads_before = idx.storage().stats().chunk_reads;
                std::hint::black_box(idx.point_lookup(eq, sort, u64::MAX).expect("lookup"));
                total_lookups.set(total_lookups.get() + 1);
                if idx.storage().stats().chunk_reads == reads_before {
                    cached_lookups.set(cached_lookups.get() + 1);
                }
            }
        }));
        cache_hit_rates.push((
            label,
            cached_lookups.get() as f64 / total_lookups.get().max(1) as f64,
        ));
    }

    // Telemetry overhead A/B: the same warm point-lookup loop on one index
    // with the instrumentation master switch on vs off. The switch is the
    // only variable (same index, same caches, same keys); the off/on
    // ops/sec ratio is the overhead the histogram-wrapper path costs and
    // must stay within a few percent of 1.0.
    let mut telemetry_results = Vec::new();
    let telemetry_speedup;
    {
        let idx = bench_index(IndexPreset::I1, "qlat-telemetry");
        let domain = ingest_runs(
            &idx,
            IndexPreset::I1,
            umzi_workload::KeyDist::Random,
            8,
            PER_RUN,
            false,
            7,
        );
        let keys: Vec<u64> = (0..4096).map(|_| next(domain)).collect();
        let tel = Arc::clone(idx.storage().telemetry());
        // Warm every block the key set touches so neither leg pays cold
        // misses the other doesn't.
        for k in &keys {
            let (eq, sort) = point_groups(IndexPreset::I1, *k);
            idx.point_lookup(&eq, &sort, u64::MAX).expect("warm");
        }
        let leg = |label: &'static str, enabled: bool| {
            tel.set_enabled(enabled);
            measure(label, 8, &idx, 20_000, |i| {
                let (eq, sort) = point_groups(IndexPreset::I1, keys[(i as usize) % keys.len()]);
                std::hint::black_box(idx.point_lookup(&eq, &sort, u64::MAX).expect("lookup"));
            })
        };
        // Alternate the legs over several rounds and keep each leg's best
        // round: a single on-then-off pass attributes any slow drift over
        // the run (frequency scaling, allocator state) to whichever leg
        // happens to go last, which can swamp the few-percent effect being
        // measured. Best-of-alternating compares each leg at its fastest.
        let mut on: Option<Measurement> = None;
        let mut off: Option<Measurement> = None;
        for _ in 0..3 {
            let m = leg("telemetry_overhead_on", true);
            if on
                .as_ref()
                .is_none_or(|b| m.ops_per_sec() > b.ops_per_sec())
            {
                on = Some(m);
            }
            let m = leg("telemetry_overhead_off", false);
            if off
                .as_ref()
                .is_none_or(|b| m.ops_per_sec() > b.ops_per_sec())
            {
                off = Some(m);
            }
        }
        let (on, off) = (on.expect("rounds > 0"), off.expect("rounds > 0"));
        tel.set_enabled(true);
        telemetry_speedup = off.ops_per_sec() / on.ops_per_sec().max(1e-9);
        telemetry_results.push(on);
        telemetry_results.push(off);
    }

    // Before/after on the run-search hot path itself: one 20k-entry run,
    // searched 2000 times. "Before" = per-entry binary search, decoded
    // cache off (the pre-change read path); "after" = fence index +
    // decoded cache.
    let before_idx = index_without_decoded_cache("qlat-before");
    ingest_runs(
        &before_idx,
        IndexPreset::I1,
        umzi_workload::KeyDist::Random,
        1,
        PER_RUN,
        false,
        7,
    );
    let before_run = before_idx.zones()[0].list.snapshot()[0].clone();
    let target = {
        let (eq, sort) = point_groups(IndexPreset::I1, next(PER_RUN));
        let mut full = before_idx.layout().build_key(&eq, &sort, 0).expect("key");
        full.truncate(full.len() - 8);
        full
    };
    let before = measure("search_before_scalar_nocache", 1, &before_idx, 2000, |_| {
        std::hint::black_box(
            RunSearcher::new(&before_run)
                .find_first_geq_scalar(&target, None)
                .expect("search"),
        );
    });

    let after_idx = bench_index(IndexPreset::I1, "qlat-after");
    ingest_runs(
        &after_idx,
        IndexPreset::I1,
        umzi_workload::KeyDist::Random,
        1,
        PER_RUN,
        false,
        7,
    );
    let after_run = after_idx.zones()[0].list.snapshot()[0].clone();
    let after = measure("search_after_fence_cached", 1, &after_idx, 2000, |_| {
        std::hint::black_box(
            RunSearcher::new(&after_run)
                .find_first_geq(&target, None)
                .expect("search"),
        );
    });

    // Report.
    eprintln!("\n== query_latency ==");
    eprintln!(
        "{:<28} {:>5} {:>14} {:>18}",
        "workload", "runs", "ops/sec", "blocks-read/op"
    );
    for m in results
        .iter()
        .chain(&par_results)
        .chain(&prefetch_results)
        .chain(&cache_results)
        .chain(&telemetry_results)
        .chain([&before, &after])
    {
        eprintln!(
            "{:<28} {:>5} {:>14.0} {:>18.3}",
            m.workload,
            m.runs,
            m.ops_per_sec(),
            m.blocks_per_op
        );
    }
    let speedup = after.ops_per_sec() / before.ops_per_sec().max(1e-9);
    eprintln!(
        "\nrun-search before→after: {:.1}x ops/sec, {:.2} → {:.2} blocks/op",
        speedup, before.blocks_per_op, after.blocks_per_op
    );
    let par_speedup = par_results[1].ops_per_sec() / par_results[0].ops_per_sec().max(1e-9);
    eprintln!(
        "parallel reconcile 1→{PAR_THREADS} threads ({PAR_RUNS} runs, {} rows): {:.2}x ops/sec",
        PAR_RUNS as u64 * PER_RUN,
        par_speedup
    );
    let prefetch_speedup =
        prefetch_results[1].ops_per_sec() / prefetch_results[0].ops_per_sec().max(1e-9);
    eprintln!(
        "pipelined prefetch depth 0→{PF_DEPTH} ({PF_RUNS} runs, cold shared reads): {:.2}x ops/sec",
        prefetch_speedup
    );
    let cache_hit_speedup = cache_hit_rates[1].1 / cache_hit_rates[0].1.max(1e-9);
    for (label, rate) in &cache_hit_rates {
        eprintln!("{label}: point hit rate {rate:.3}");
    }
    eprintln!(
        "cache policy Lru→ScanResistant under scan interference: {cache_hit_speedup:.2}x point hit rate"
    );
    eprintln!(
        "telemetry overhead: disabled/enabled = {telemetry_speedup:.3}x ops/sec (1.0 = free)"
    );

    let mut json = String::from("{\n  \"bench\": \"query_latency\",\n  \"results\": [\n");
    let lines: Vec<String> = results
        .iter()
        .chain(&par_results)
        .chain(&prefetch_results)
        .chain(&cache_results)
        .chain(&telemetry_results)
        .chain([&before, &after])
        .map(json_entry)
        .collect();
    let _ = writeln!(json, "{}", lines.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"search_speedup_ops_per_sec\": {speedup:.2},");
    let _ = writeln!(
        json,
        "  \"parallel_scan_speedup_ops_per_sec\": {par_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"prefetch_speedup_ops_per_sec\": {prefetch_speedup:.2},"
    );
    for (label, rate) in &cache_hit_rates {
        let _ = writeln!(json, "  \"{label}_point_hit_rate\": {rate:.3},");
    }
    let _ = writeln!(
        json,
        "  \"telemetry_off_over_on_speedup\": {telemetry_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"cache_policy_hit_rate_speedup\": {cache_hit_speedup:.2}"
    );
    json.push_str("}\n");

    let out_path = std::env::var("UMZI_BENCH_QUERY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json").to_string()
    });
    std::fs::write(&out_path, json).expect("write BENCH_query.json");
    eprintln!("wrote {out_path}");
}
