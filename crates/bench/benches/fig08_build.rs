//! Criterion micro-bench for Figure 8: run-building time for I1/I2/I3
//! across run sizes. Shape to verify: near-linear in run size, I3 slightly
//! cheapest (one fewer key column), column count otherwise negligible
//! against sort cost (§8.2).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use umzi_bench::{bench_index, point_entries};
use umzi_workload::{IndexPreset, KeyDist, KeyGen};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_build");
    g.sample_size(10);
    for preset in IndexPreset::ALL {
        for size in [1_000u64, 10_000, 100_000] {
            g.throughput(Throughput::Elements(size));
            g.bench_with_input(BenchmarkId::new(preset.label(), size), &size, |b, &size| {
                let mut round = 0u64;
                b.iter_batched(
                    || {
                        round += 1;
                        let idx =
                            bench_index(preset, &format!("b8-{}-{size}-{round}", preset.label()));
                        let mut gen = KeyGen::new(KeyDist::Sequential, size, 7);
                        let keys = gen.batch(size as usize);
                        let entries = point_entries(&idx, preset, &keys, 1);
                        (idx, entries)
                    },
                    |(idx, entries)| {
                        idx.build_groomed_run(entries, 1, 1).expect("build");
                    },
                    BatchSize::PerIteration,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
