//! Shared harness for the benchmarks reproducing §8 of the Umzi paper.
//!
//! Every figure has a binary (`cargo run --release -p umzi-bench --bin
//! fig08` … `fig15`) that prints the same normalized series the paper
//! plots, plus criterion micro-benches for the index-level figures
//! (8–11) and the design-choice ablations.
//!
//! The paper normalizes every figure (absolute numbers were unpublishable);
//! these harnesses do the same, so results are comparable in *shape* — who
//! wins, by what factor, where crossovers fall — not absolute time.
//!
//! Scale: `UMZI_BENCH_SCALE=full` runs paper-scale parameters (up to 100 M
//! entries per run, 100-second end-to-end windows); the default "quick"
//! scale keeps `cargo bench` and `run_all` in the minutes range.

use std::sync::Arc;
use std::time::{Duration, Instant};

use umzi_core::{MergePolicy, RangeQuery, ReconcileStrategy, UmziConfig, UmziIndex};
use umzi_encoding::Datum;
use umzi_run::{IndexEntry, Rid, SortBound, ZoneId};
use umzi_storage::{SharedStorage, TieredConfig, TieredStorage};
use umzi_workload::{IndexPreset, KeyDist, KeyGen};

/// Benchmark scale, selected by `UMZI_BENCH_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters; minutes of total runtime.
    Quick,
    /// The paper's parameters (hours; needs tens of GiB of memory).
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("UMZI_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Run-size sweep for Figures 8 and 9.
    pub fn run_sizes(self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![1_000, 10_000, 100_000, 1_000_000],
            Scale::Full => vec![
                1_000,
                10_000,
                100_000,
                1_000_000,
                10_000_000,
                20_000_000,
                40_000_000,
                60_000_000,
                80_000_000,
                100_000_000,
            ],
        }
    }

    /// Entries per run in the multi-run experiments (paper: 100 000).
    pub fn entries_per_run(self) -> u64 {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }

    /// Run-count sweep for Figures 10b/11b (paper: 1–100).
    pub fn run_counts(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1, 10, 20, 40, 60],
            Scale::Full => vec![1, 10, 20, 40, 60, 80, 100],
        }
    }

    /// Scan-range sweep for Figures 10c/11c (paper: 1–1 000 000).
    pub fn scan_ranges(self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![1, 10, 100, 1_000, 10_000, 100_000],
            Scale::Full => vec![1, 10, 100, 1_000, 10_000, 100_000, 1_000_000],
        }
    }

    /// End-to-end experiment duration (paper: 100 s).
    pub fn e2e_seconds(self) -> u64 {
        match self {
            Scale::Quick => 15,
            Scale::Full => 100,
        }
    }

    /// End-to-end ingest rate per second (paper: ~100 000).
    pub fn e2e_rate(self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }
}

/// Sort-column span per equality value in point-lookup workloads: keys map
/// to `(device = k / SPAN, msg = k % SPAN)`, so sequentially ingested keys
/// produce runs covering *disjoint device ranges* — which is exactly what
/// makes the synopsis prune runs for sequential query batches (§8.3.2).
pub const POINT_SPAN: u64 = 100;

/// Map a scalar key to the preset's (equality, sort) groups for point
/// workloads.
pub fn point_groups(preset: IndexPreset, k: u64) -> (Vec<Datum>, Vec<Datum>) {
    let d = (k / POINT_SPAN) as i64;
    let m = (k % POINT_SPAN) as i64;
    match preset {
        IndexPreset::I1 => (vec![Datum::Int64(d)], vec![Datum::Int64(m)]),
        IndexPreset::I2 => (vec![Datum::Int64(d), Datum::Int64(m)], vec![]),
        IndexPreset::I3 => (vec![Datum::Int64(k as i64)], vec![]),
    }
}

/// Map a scalar key for scan workloads: one device, `msg = k`, so ranges of
/// any size stay within one equality value (Figures 10c/11c).
pub fn scan_groups(k: u64) -> (Vec<Datum>, Vec<Datum>) {
    (vec![Datum::Int64(0)], vec![Datum::Int64(k as i64)])
}

/// A fresh zero-latency in-memory index for micro-benches.
pub fn bench_index(preset: IndexPreset, name: &str) -> Arc<UmziIndex> {
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            mem_capacity: 8 << 30,
            ssd_capacity: 64 << 30,
            ..TieredConfig::default()
        },
    ));
    let mut config = UmziConfig::two_zone(name);
    // Micro-benches control the run structure explicitly: disable merging.
    config.merge = MergePolicy {
        k: usize::MAX / 2,
        t: 4,
    };
    UmziIndex::create(storage, preset.def(), config).expect("create index")
}

/// Build index entries for a slice of scalar keys (point workload).
pub fn point_entries(
    idx: &UmziIndex,
    preset: IndexPreset,
    keys: &[u64],
    ts_base: u64,
) -> Vec<IndexEntry> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| {
            let (eq, sort) = point_groups(preset, k);
            IndexEntry::new(
                idx.layout(),
                &eq,
                &sort,
                ts_base + i as u64,
                Rid::new(ZoneId::GROOMED, ts_base, i as u32),
                &preset.included_of(k),
            )
            .expect("valid entry")
        })
        .collect()
}

/// Build index entries for the scan workload.
pub fn scan_entries(idx: &UmziIndex, keys: &[u64], ts_base: u64) -> Vec<IndexEntry> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| {
            let (eq, sort) = scan_groups(k);
            IndexEntry::new(
                idx.layout(),
                &eq,
                &sort,
                ts_base + i as u64,
                Rid::new(ZoneId::GROOMED, ts_base, i as u32),
                &IndexPreset::I1.included_of(k),
            )
            .expect("valid entry")
        })
        .collect()
}

/// Ingest `n_runs` level-0 runs of `per_run` keys each with the given
/// distribution; returns total keys ingested.
pub fn ingest_runs(
    idx: &UmziIndex,
    preset: IndexPreset,
    dist: KeyDist,
    n_runs: usize,
    per_run: u64,
    scan_workload: bool,
    seed: u64,
) -> u64 {
    let domain = (n_runs as u64 * per_run).max(1);
    let mut gen = KeyGen::new(dist, domain, seed);
    for r in 0..n_runs {
        let keys = gen.batch(per_run as usize);
        let ts_base = (r as u64 + 1) * per_run;
        let entries = if scan_workload {
            scan_entries(idx, &keys, ts_base)
        } else {
            point_entries(idx, preset, &keys, ts_base)
        };
        idx.build_groomed_run(entries, r as u64 + 1, r as u64 + 1)
            .expect("build run");
    }
    domain
}

/// Execute one batched point lookup and return the elapsed wall time.
pub fn lookup_batch(idx: &UmziIndex, preset: IndexPreset, keys: &[u64], query_ts: u64) -> Duration {
    let probes: Vec<(Vec<Datum>, Vec<Datum>)> =
        keys.iter().map(|&k| point_groups(preset, k)).collect();
    let t0 = Instant::now();
    let out = idx.batch_lookup(&probes, query_ts).expect("batch lookup");
    let dt = t0.elapsed();
    std::hint::black_box(out);
    dt
}

/// Execute one range scan over the scan workload and return `(elapsed,
/// result count)`.
pub fn scan_range(
    idx: &UmziIndex,
    start: u64,
    len: u64,
    query_ts: u64,
    strategy: ReconcileStrategy,
) -> (Duration, usize) {
    let query = RangeQuery {
        equality: vec![Datum::Int64(0)],
        lower: SortBound::Included(vec![Datum::Int64(start as i64)]),
        upper: SortBound::Excluded(vec![Datum::Int64((start + len) as i64)]),
        query_ts,
    };
    let t0 = Instant::now();
    let out = idx.range_scan(&query, strategy).expect("range scan");
    let dt = t0.elapsed();
    let n = out.len();
    std::hint::black_box(out);
    (dt, n)
}

/// Median wall time of `reps` executions of `f`.
pub fn median_time(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    let mut samples: Vec<Duration> = (0..reps.max(1)).map(|_| f()).collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// A normalized series: the paper's figure lines.
#[derive(Debug, Clone)]
pub struct Series {
    /// Line label (e.g. "I1", "sequential query").
    pub label: String,
    /// `(x-label, value)` points.
    pub points: Vec<(String, f64)>,
}

/// Print a figure as an aligned table, normalizing every value by `base`.
pub fn print_figure(title: &str, xlabel: &str, series: &[Series], base: f64) {
    println!("\n## {title}");
    println!("(values normalized by {base:.3e} s, as in the paper)\n");
    let xs: Vec<&String> = series[0].points.iter().map(|(x, _)| x).collect();
    print!("{xlabel:>14}");
    for s in series {
        print!(" {:>14}", s.label);
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>14}");
        for s in series {
            match s.points.get(i) {
                Some((_, v)) => print!(" {:>14.3}", v / base),
                None => print!(" {:>14}", "-"),
            }
        }
        println!();
    }
}

/// Pretty seconds.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_builds_and_queries() {
        let idx = bench_index(IndexPreset::I1, "h1");
        let total = ingest_runs(
            &idx,
            IndexPreset::I1,
            KeyDist::Sequential,
            3,
            1000,
            false,
            1,
        );
        assert_eq!(total, 3000);
        assert_eq!(idx.zones()[0].list.len(), 3);
        let keys: Vec<u64> = (0..100).collect();
        let d = lookup_batch(&idx, IndexPreset::I1, &keys, u64::MAX);
        assert!(d > Duration::ZERO);
        // All looked-up keys exist.
        let probes: Vec<_> = keys
            .iter()
            .map(|&k| point_groups(IndexPreset::I1, k))
            .collect();
        let out = idx.batch_lookup(&probes, u64::MAX).unwrap();
        assert!(out.iter().all(Option::is_some));
    }

    #[test]
    fn scan_workload_ranges() {
        let idx = bench_index(IndexPreset::I1, "h2");
        ingest_runs(&idx, IndexPreset::I1, KeyDist::Sequential, 2, 1000, true, 1);
        let (_, n) = scan_range(&idx, 100, 50, u64::MAX, ReconcileStrategy::PriorityQueue);
        assert_eq!(n, 50);
    }

    #[test]
    fn point_groups_respect_presets() {
        let (eq, sort) = point_groups(IndexPreset::I1, 1234);
        assert_eq!((eq.len(), sort.len()), (1, 1));
        let (eq, sort) = point_groups(IndexPreset::I2, 1234);
        assert_eq!((eq.len(), sort.len()), (2, 0));
        let (eq, sort) = point_groups(IndexPreset::I3, 1234);
        assert_eq!((eq.len(), sort.len()), (1, 0));
    }
}

pub mod e2e;
pub mod figures;
