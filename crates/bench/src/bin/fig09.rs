//! Figure 9: single-run query performance (sequential and random batches).

fn main() {
    let scale = umzi_bench::Scale::from_env();
    println!("# Umzi reproduction — Figure 9 ({scale:?} scale)");
    umzi_bench::figures::fig09(scale);
}
