//! Figure 8: index building performance. `UMZI_BENCH_SCALE=full` for
//! paper-scale run sizes.

fn main() {
    let scale = umzi_bench::Scale::from_env();
    println!("# Umzi reproduction — Figure 8 ({scale:?} scale)");
    umzi_bench::figures::fig08(scale);
}
