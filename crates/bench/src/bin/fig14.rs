//! Figure 14: end-to-end lookup latency with purged runs (none / half /
//! all), under a realistic SSD ≪ shared-storage latency gap.

fn main() {
    let scale = umzi_bench::Scale::from_env();
    println!("# Umzi reproduction — Figure 14 ({scale:?} scale)");
    umzi_bench::figures::fig14(scale);
}
