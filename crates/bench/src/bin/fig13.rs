//! Figure 13: end-to-end lookup latency while varying the update rate p
//! (§8.4's IoT update mix).

fn main() {
    let scale = umzi_bench::Scale::from_env();
    println!("# Umzi reproduction — Figure 13 ({scale:?} scale)");
    umzi_bench::figures::fig13(scale);
}
