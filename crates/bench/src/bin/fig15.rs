//! Figure 15: end-to-end impact of index evolve operations (post-groomer
//! enabled vs disabled).

fn main() {
    let scale = umzi_bench::Scale::from_env();
    println!("# Umzi reproduction — Figure 15 ({scale:?} scale)");
    umzi_bench::figures::fig15(scale);
}
