//! Figure 10: multi-run query performance with sequentially ingested keys —
//! (a) batch size, (b) number of runs, (c) scan ranges.

use umzi_workload::KeyDist;

fn main() {
    let scale = umzi_bench::Scale::from_env();
    println!("# Umzi reproduction — Figure 10 ({scale:?} scale)");
    umzi_bench::figures::fig10_11(scale, KeyDist::Sequential);
}
