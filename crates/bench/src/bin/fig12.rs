//! Figure 12: end-to-end lookup latency under concurrent readers. The
//! lock-free reader design keeps latency flat as readers grow (up to the
//! host's core count; see EXPERIMENTS.md for the oversubscription caveat).

fn main() {
    let scale = umzi_bench::Scale::from_env();
    println!("# Umzi reproduction — Figure 12 ({scale:?} scale)");
    umzi_bench::figures::fig12(scale);
}
