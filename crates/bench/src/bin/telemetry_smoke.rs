//! Telemetry smoke check: drive every instrumented operation class through
//! a real engine under daemon churn, dump the unified snapshot as a JSON
//! artifact, and fail loudly if any registered latency histogram recorded
//! zero samples — the regression this guards against is an instrumentation
//! site silently falling off a refactored code path.
//!
//! Run with `cargo run --release -p umzi-bench --bin telemetry_smoke`.
//! Writes `TELEMETRY_smoke.json` (override with `UMZI_TELEMETRY_SMOKE_OUT`).
//! Exits non-zero when coverage is incomplete.

use std::sync::Arc;
use std::time::Duration;

use umzi_core::{
    MaintenanceConfig, MergePolicy, RangeQuery, ReconcileStrategy, UmziConfig, UmziIndex,
};
use umzi_encoding::Datum;
use umzi_run::SortBound;
use umzi_storage::{SharedStorage, TelemetryConfig, TieredConfig, TieredStorage};
use umzi_wildfire::{iot_table, EngineConfig, Freshness, ShardConfig, WildfireEngine};
use umzi_workload::{IndexPreset, MixedConfig, MixedOp, MixedWorkload};

const INGEST_CYCLES: usize = 40;

fn key_row(k: u64) -> Vec<Datum> {
    vec![
        Datum::Int64((k % 100) as i64),
        Datum::Int64((k / 100) as i64),
        Datum::Int64(20190326 + (k % 7) as i64),
        Datum::Int64(k as i64),
    ]
}

fn key_probe(k: u64) -> (Vec<Datum>, Vec<Datum>) {
    (
        vec![Datum::Int64((k % 100) as i64)],
        vec![Datum::Int64((k / 100) as i64)],
    )
}

/// Drive the partitioned-scan path on an auxiliary index sharing the
/// engine's storage (and therefore its telemetry handle): the engine's own
/// per-device scans stay under the parallel threshold, so the
/// `range_scan_partitioned` histogram needs a scan that actually fans out.
fn drive_partitioned_scan(storage: &Arc<TieredStorage>) {
    let mut config = UmziConfig::two_zone("telemetry-smoke-par");
    config.merge = MergePolicy {
        k: usize::MAX / 2,
        t: 4,
    };
    config.scan.max_scan_partitions = 4;
    config.scan.parallel_row_threshold = 1;
    let idx = UmziIndex::create(Arc::clone(storage), IndexPreset::I1.def(), config)
        .expect("create aux index");
    // `scan_workload: true` puts every key under one device, so the
    // whole-range scan below covers all 4 runs × 2000 rows — enough to
    // clear the default parallel thresholds.
    umzi_bench::ingest_runs(
        &idx,
        IndexPreset::I1,
        umzi_workload::KeyDist::Random,
        4,
        2_000,
        true,
        3,
    );
    let whole = RangeQuery {
        equality: vec![Datum::Int64(0)],
        lower: SortBound::Unbounded,
        upper: SortBound::Unbounded,
        query_ts: u64::MAX,
    };
    for _ in 0..3 {
        std::hint::black_box(
            idx.range_scan(&whole, ReconcileStrategy::PriorityQueue)
                .expect("partitioned scan"),
        );
    }
}

fn main() {
    // Tiers small enough that reads spill past memory and SSD to shared
    // storage — otherwise `block_fetch` never fires on an in-memory run.
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            mem_capacity: 256 << 10,
            ssd_capacity: 512 << 10,
            ..TieredConfig::default()
        },
    ));

    let mut shard = ShardConfig::default();
    shard.umzi.merge = MergePolicy { k: 4, t: 4 };
    // Threshold zero: every query lands in the slow-query log, so the
    // artifact demonstrates trace capture without needing a slow machine.
    shard.umzi.telemetry = Some(TelemetryConfig {
        enabled: true,
        slow_query_threshold: Duration::ZERO,
        slow_query_log_len: 64,
    });
    let engine = WildfireEngine::create(
        Arc::clone(&storage),
        Arc::new(iot_table()),
        EngineConfig {
            n_shards: 2,
            shard,
            groom_interval: Duration::from_millis(10),
            post_groom_interval: Duration::from_millis(30),
            groom_trigger_rows: 500,
            maintenance: Some(MaintenanceConfig {
                workers: 2,
                janitor_interval: Duration::from_millis(25),
                adaptive_cache: false,
                ..MaintenanceConfig::default()
            }),
            ..EngineConfig::default()
        },
    )
    .expect("create engine");
    let daemons = engine.start_daemons();

    // Mixed churn: ingest batches interleaved with per-device scans, batch
    // lookups, and point gets, while the daemon grooms/merges/evolves/
    // retires underneath.
    let mut stream = MixedWorkload::new(
        MixedConfig {
            ingest_batch: 500,
            lookup_batch: 64,
            scans_per_ingest: 0.5,
            lookups_per_ingest: 0.5,
            ..MixedConfig::default()
        },
        42,
    );
    let mut ingests = 0usize;
    let mut last_key = 0u64;
    while ingests < INGEST_CYCLES {
        match stream.next_op() {
            MixedOp::IngestBatch(batch) => {
                last_key = batch.last().map(|&(k, _)| k).unwrap_or(last_key);
                let rows: Vec<Vec<Datum>> = batch.iter().map(|&(k, _)| key_row(k)).collect();
                engine.upsert_many(rows).expect("upsert");
                ingests += 1;
            }
            MixedOp::ScanDevice(d) => {
                std::hint::black_box(
                    engine
                        .scan_index(
                            vec![Datum::Int64((d % 100) as i64)],
                            SortBound::Unbounded,
                            SortBound::Unbounded,
                            Freshness::Latest,
                            ReconcileStrategy::PriorityQueue,
                        )
                        .expect("scan"),
                );
            }
            MixedOp::LookupBatch(keys) => {
                let probes: Vec<_> = keys.iter().map(|&k| key_probe(k)).collect();
                for s in engine.shards() {
                    std::hint::black_box(
                        s.index()
                            .batch_lookup(&probes, s.read_ts())
                            .expect("batch lookup"),
                    );
                }
            }
        }
        // Point gets ride along every cycle.
        let (eq, sort) = key_probe(last_key);
        std::hint::black_box(engine.get(&eq, &sort, Freshness::Latest).expect("get"));
    }

    drive_partitioned_scan(&storage);

    // Let the daemon drain so every job kind has executed (idle retire and
    // evolve pokes are recorded too), then snapshot while it is still
    // attached.
    if let Some(d) = daemons.daemon() {
        d.wait_idle(Duration::from_secs(30));
    }
    std::thread::sleep(Duration::from_millis(100)); // one more janitor tick
    let snap = engine.telemetry();
    daemons.shutdown();

    let out_path = std::env::var("UMZI_TELEMETRY_SMOKE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../TELEMETRY_smoke.json").to_string()
    });
    std::fs::write(&out_path, snap.to_json()).expect("write telemetry artifact");
    eprintln!("wrote {out_path}");

    // Coverage gate: every registered histogram must have samples.
    let mut failures: Vec<String> = Vec::new();
    eprintln!("\n== telemetry_smoke coverage ==");
    for (name, h) in &snap.metrics.histograms {
        eprintln!(
            "{:<55} count={:<7} p50={:<9} p99={}",
            name,
            h.count(),
            h.p50(),
            h.p99()
        );
        if h.count() == 0 {
            failures.push(format!("histogram {name} recorded zero samples"));
        }
    }
    for name in [
        "umzi_query_duration_nanos{op=\"point_lookup\"}",
        "umzi_query_duration_nanos{op=\"range_scan_seq\"}",
        "umzi_job_duration_nanos{kind=\"groom\"}",
    ] {
        match snap.histogram(name) {
            Some(h) if h.p50() > 0 && h.p99() >= h.p50() => {}
            Some(h) => failures.push(format!(
                "{name}: degenerate quantiles p50={} p99={}",
                h.p50(),
                h.p99()
            )),
            None => failures.push(format!("{name}: not registered")),
        }
    }
    if snap.slow_queries.is_empty() {
        failures.push("slow-query log empty despite zero threshold".into());
    }
    let prom = snap.to_prometheus();
    if !prom.contains("umzi_query_duration_nanos{op=\"point_lookup\",quantile=\"0.5\"}") {
        failures.push("prometheus export missing point-lookup quantiles".into());
    }

    if failures.is_empty() {
        eprintln!(
            "\ntelemetry smoke OK: {} histograms, {} slow-query records",
            snap.metrics.histograms.len(),
            snap.slow_queries.len()
        );
    } else {
        eprintln!("\ntelemetry smoke FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
