//! Multi-tenant SLO harness: tail-latency percentiles per tenant and
//! operation class, plus a maintenance-fairness A/B that measures what the
//! weighted-aging dequeue buys a cold shard sharing a daemon with a hot one.
//!
//! Two scenarios, one artifact:
//!
//! 1. **SLO mix** — a seeded [`TenantMix`] (zipf-skewed tenants, bursty
//!    open-loop arrivals) drives a two-shard engine while the maintenance
//!    daemon grooms/merges/evolves/retires underneath. Every operation is
//!    timed in the driver into per-`(tenant, class)` histograms; the
//!    engine's own per-op-class telemetry histograms ride along so the
//!    driver-side and engine-side views can be cross-checked.
//! 2. **Fairness A/B** — one slowed worker serves a hot shard under
//!    continuous ingest (an endless groom→merge cascade) and a cold shard
//!    taking light ingest plus freshest-point reads. FIFO dequeue starves
//!    the cold shard's groom behind the hot merge stream, so its un-groomed
//!    live zone — which freshest reads scan linearly — grows without bound;
//!    the weighted-aging dequeue lets the aged groom overtake. Cold-shard
//!    point p99 under both modes lands in the artifact as scalars.
//!
//! Run with `cargo run --release -p umzi-bench --bin slo_harness`.
//! Writes `BENCH_slo.json` (override with `UMZI_SLO_OUT`); CI diffs it via
//! `scripts/compare_bench.py`. `UMZI_SLO_OPS` / `UMZI_SLO_CYCLES` scale the
//! two scenarios (defaults are the CI-sized small preset).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use umzi_core::{JobKind, MaintenanceConfig, MergePolicy, ReconcileStrategy};
use umzi_encoding::Datum;
use umzi_run::SortBound;
use umzi_storage::telemetry::{Histogram, HistogramSnapshot};
use umzi_storage::{TelemetryConfig, TieredStorage};
use umzi_wildfire::{iot_table, EngineConfig, Freshness, ShardConfig, WildfireEngine};
use umzi_workload::{
    BurstModel, OpClass, OpMix, TenantMix, TenantMixConfig, TenantOpKind, TenantProfile,
};

/// Devices per tenant: tenant-relative keys map onto `device = tenant·32 +
/// key % 32`, `msg = key / 32`, so tenants never collide and every tenant
/// spreads over both shards.
const DEVS_PER_TENANT: u64 = 32;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn row_of(tenant: usize, key: u64) -> Vec<Datum> {
    let device = tenant as u64 * DEVS_PER_TENANT + key % DEVS_PER_TENANT;
    let msg = key / DEVS_PER_TENANT;
    vec![
        Datum::Int64(device as i64),
        Datum::Int64(msg as i64),
        Datum::Int64(20190326 + (key % 7) as i64),
        Datum::Int64(key as i64),
    ]
}

fn probe_of(tenant: usize, key: u64) -> (Vec<Datum>, Vec<Datum>) {
    let device = tenant as u64 * DEVS_PER_TENANT + key % DEVS_PER_TENANT;
    (
        vec![Datum::Int64(device as i64)],
        vec![Datum::Int64((key / DEVS_PER_TENANT) as i64)],
    )
}

fn quantile_fields(h: &HistogramSnapshot) -> String {
    format!(
        "\"count\": {}, \"p50_nanos\": {}, \"p90_nanos\": {}, \"p99_nanos\": {}, \"p999_nanos\": {}",
        h.count(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.p999()
    )
}

/// The tenants: an OLTP-shaped point reader, an analytics scanner and an
/// ingest-heavy feed, weighted 3:1:2 on the shared arrival process.
fn slo_tenants() -> TenantMixConfig {
    let base = TenantProfile {
        zipf_exponent: 0.9,
        key_space: 20_000,
        batch_size: 32,
        scan_span: 128,
        ingest_batch: 200,
        ..TenantProfile::default()
    };
    TenantMixConfig {
        tenants: vec![
            TenantProfile {
                weight: 3.0,
                mix: OpMix {
                    point: 0.70,
                    batch: 0.10,
                    range_scan: 0.05,
                    ingest: 0.15,
                },
                ..base.clone()
            },
            TenantProfile {
                weight: 1.0,
                mix: OpMix {
                    point: 0.10,
                    batch: 0.20,
                    range_scan: 0.60,
                    ingest: 0.10,
                },
                ..base.clone()
            },
            TenantProfile {
                weight: 2.0,
                mix: OpMix {
                    point: 0.20,
                    batch: 0.10,
                    range_scan: 0.10,
                    ingest: 0.60,
                },
                ..base
            },
        ],
        burst: BurstModel {
            base_ops_per_tick: 2.0,
            burst_period: 64,
            burst_len: 8,
            burst_multiplier: 8.0,
        },
    }
}

struct SloOutcome {
    /// `hists[tenant][class]` in [`OpClass::ALL`] order.
    hists: Vec<[HistogramSnapshot; 4]>,
    /// Engine-side op histograms `(label, snapshot)`.
    engine_ops: Vec<(&'static str, HistogramSnapshot)>,
    elapsed: Duration,
    ops: usize,
}

/// Scenario 1: drive the seeded tenant mix under daemon churn.
fn run_slo_mix(ops_target: usize) -> SloOutcome {
    let storage = Arc::new(TieredStorage::in_memory());
    let mut shard = ShardConfig::default();
    shard.umzi.merge = MergePolicy { k: 4, t: 4 };
    shard.umzi.telemetry = Some(TelemetryConfig {
        enabled: true,
        slow_query_threshold: Duration::from_millis(50),
        slow_query_log_len: 32,
    });
    let engine = WildfireEngine::create(
        Arc::clone(&storage),
        Arc::new(iot_table()),
        EngineConfig {
            n_shards: 2,
            shard,
            groom_interval: Duration::from_millis(10),
            post_groom_interval: Duration::from_millis(30),
            groom_trigger_rows: 400,
            maintenance: Some(MaintenanceConfig {
                workers: 2,
                janitor_interval: Duration::from_millis(25),
                adaptive_cache: false,
                ..MaintenanceConfig::default()
            }),
        },
    )
    .expect("create engine");
    let daemons = engine.start_daemons();

    let config = slo_tenants();
    let n_tenants = config.tenants.len();
    let mut mix = TenantMix::new(config, 42).expect("valid tenant mix");
    let hists: Vec<[Histogram; 4]> = (0..n_tenants)
        .map(|_| std::array::from_fn(|_| Histogram::new()))
        .collect();

    let started = Instant::now();
    for _ in 0..ops_target {
        let op = mix.next_op();
        let class = OpClass::ALL
            .iter()
            .position(|c| *c == op.class())
            .expect("class in ALL");
        let tenant = op.tenant;
        let t0 = Instant::now();
        match op.kind {
            TenantOpKind::Point { key } => {
                let (eq, sort) = probe_of(tenant, key);
                std::hint::black_box(engine.get(&eq, &sort, Freshness::Latest).expect("point"));
            }
            TenantOpKind::Batch { keys } => {
                let probes: Vec<_> = keys.iter().map(|&k| probe_of(tenant, k)).collect();
                for s in engine.shards() {
                    std::hint::black_box(
                        s.index()
                            .batch_lookup(&probes, s.read_ts())
                            .expect("batch lookup"),
                    );
                }
            }
            TenantOpKind::RangeScan { start, span } => {
                let (eq, sort) = probe_of(tenant, start);
                let lo = sort[0].clone();
                let hi = Datum::Int64(match lo {
                    Datum::Int64(m) => m + (span / DEVS_PER_TENANT).max(1) as i64,
                    _ => unreachable!("msg is Int64"),
                });
                std::hint::black_box(
                    engine
                        .scan_index(
                            eq,
                            SortBound::Included(vec![lo]),
                            SortBound::Excluded(vec![hi]),
                            Freshness::Latest,
                            ReconcileStrategy::PriorityQueue,
                        )
                        .expect("range scan"),
                );
            }
            TenantOpKind::Ingest { mut keys } => {
                // Zipf batches repeat hot keys; one upsert transaction wants
                // each primary key at most once.
                keys.sort_unstable();
                keys.dedup();
                let rows: Vec<_> = keys.iter().map(|&k| row_of(tenant, k)).collect();
                engine.upsert_many(rows).expect("ingest");
            }
        }
        hists[tenant][class].record(t0.elapsed().as_nanos() as u64);
    }
    let elapsed = started.elapsed();

    if let Some(d) = daemons.daemon() {
        d.wait_idle(Duration::from_secs(30));
    }
    let snap = engine.telemetry();
    daemons.shutdown();

    let engine_ops = [
        (
            "point_lookup",
            "umzi_query_duration_nanos{op=\"point_lookup\"}",
        ),
        (
            "batch_lookup",
            "umzi_query_duration_nanos{op=\"batch_lookup\"}",
        ),
        (
            "range_scan_seq",
            "umzi_query_duration_nanos{op=\"range_scan_seq\"}",
        ),
        ("ingest", "umzi_ingest_duration_nanos"),
    ]
    .into_iter()
    .filter_map(|(label, name)| snap.histogram(name).cloned().map(|h| (label, h)))
    .collect();

    SloOutcome {
        hists: hists
            .iter()
            .map(|per_class| std::array::from_fn(|i| per_class[i].snapshot()))
            .collect(),
        engine_ops,
        elapsed,
        ops: ops_target,
    }
}

struct FairnessOutcome {
    cold_point: HistogramSnapshot,
    groom_peak_dequeue_age: u64,
    rows_written: u64,
    rows_counted: u64,
}

/// Shards in the fairness scenario: seven hot, one cold, one slowed worker.
const FAIR_SHARDS: usize = 8;

/// Scenario 2: seven hot shards keep one slowed worker under sustained
/// merge pressure (the flood thread grooms them inline, so every round
/// hands the daemon fresh level-0 runs to merge) while a cold shard takes a
/// trickle of ingest plus freshest-point reads. Those reads overlay the
/// cold shard's un-groomed live zone linearly, so a starved cold groom
/// shows up directly as read latency. FIFO dequeue serves strictly by
/// priority class — merges always beat grooms, and the cold groom waits out
/// the entire hot backlog; the weighted-aging dequeue lets it overtake once
/// its queue age exceeds the priority gap.
fn run_fairness(fair: bool, cycles: usize) -> FairnessOutcome {
    let table = Arc::new(iot_table());
    // Partition the device space by the engine's own routing so "hot" and
    // "cold" mean actual shards, not a guess about the hash.
    let devices_of = |shard: usize| -> Vec<u64> {
        (0u64..4000)
            .filter(|&d| {
                table.shard_of(
                    &[
                        Datum::Int64(d as i64),
                        Datum::Int64(0),
                        Datum::Int64(0),
                        Datum::Int64(0),
                    ],
                    FAIR_SHARDS,
                ) == shard
            })
            .take(2)
            .collect()
    };
    let cold = devices_of(FAIR_SHARDS - 1);
    let hot: Vec<u64> = (0..FAIR_SHARDS - 1).flat_map(devices_of).collect();

    let storage = Arc::new(TieredStorage::in_memory());
    let mut shard = ShardConfig::default();
    shard.umzi.merge = MergePolicy { k: 2, t: 4 };
    let engine = WildfireEngine::create(
        Arc::clone(&storage),
        Arc::clone(&table),
        EngineConfig {
            n_shards: FAIR_SHARDS,
            shard,
            groom_interval: Duration::from_millis(15),
            post_groom_interval: Duration::from_millis(40),
            groom_trigger_rows: 128,
            maintenance: Some(MaintenanceConfig {
                workers: 1,
                fair_dequeue: fair,
                // One slowed worker against seven shards' worth of merge
                // arrivals: the higher-priority classes never drain, which
                // is the regime the aging dequeue exists for. Watermarks
                // are lifted so the deliberately-unmerged hot backlog
                // doesn't stall ingest and pace the scenario instead.
                throttle: Some(Duration::from_millis(2)),
                l0_high_watermark: 1_000_000,
                l0_low_watermark: 500_000,
                janitor_interval: Duration::from_millis(25),
                adaptive_cache: false,
                ..MaintenanceConfig::default()
            }),
        },
    )
    .expect("create engine");
    let daemons = engine.start_daemons();
    let daemon = Arc::clone(daemons.daemon().expect("maintenance configured"));

    // Background flood: round-robin batches across the hot shards at 10x
    // the cold shard's rate, groomed inline each round. The inline groom
    // stands in for foreground grooming under pressure: it keeps the
    // daemon's queue stocked with real level-0 merge work (priority above
    // grooms) faster than the slowed worker drains it.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hot_written = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let flood = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let hot_written = Arc::clone(&hot_written);
        let hot = hot.clone();
        std::thread::spawn(move || {
            let mut msg = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let rows: Vec<Vec<Datum>> = (0..hot.len() as i64 * 20)
                    .map(|i| fair_row(hot[i as usize % hot.len()], msg + i / hot.len() as i64))
                    .collect();
                msg += 20;
                hot_written.fetch_add(rows.len() as u64, std::sync::atomic::Ordering::Release);
                engine.upsert_many(rows).expect("hot ingest");
                for s in 0..FAIR_SHARDS - 1 {
                    engine.shards()[s].groom().expect("inline hot groom");
                }
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };

    let cold_hist = Histogram::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut cold_msg = 0i64;
    for _ in 0..cycles {
        let cold_rows: Vec<Vec<Datum>> = (0..100)
            .map(|i| {
                let d = cold[(cold_msg as usize + i) % cold.len()];
                fair_row(d, cold_msg + i as i64)
            })
            .collect();
        cold_msg += 100;
        engine.upsert_many(cold_rows).expect("cold ingest");

        // The cold tenant's reads: freshest-point lookups that must overlay
        // the un-groomed live zone — exactly what a starved groom inflates.
        for _ in 0..10 {
            let m = rng.random_range(0..cold_msg);
            let d = cold[m as usize % cold.len()];
            let t0 = Instant::now();
            std::hint::black_box(
                engine
                    .get(
                        &[Datum::Int64(d as i64)],
                        &[Datum::Int64(m)],
                        Freshness::Freshest,
                    )
                    .expect("cold point read"),
            );
            cold_hist.record(t0.elapsed().as_nanos() as u64);
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let cold_live_at_end = engine.shards()[FAIR_SHARDS - 1].live().len();
    stop.store(true, std::sync::atomic::Ordering::Release);
    flood.join().expect("flood thread");
    let rows_written = hot_written.load(std::sync::atomic::Ordering::Acquire) + cold_msg as u64;
    // Graceful shutdown drains the queue, so a groom starved through the
    // whole measured window still pops — and records its dequeue age.
    daemons.shutdown();
    let groom_peak_dequeue_age = daemon.stats().peak_dequeue_age(JobKind::Groom);

    // Integrity under the byte-based gate: every acked row is countable.
    engine.quiesce().expect("quiesce");
    let rows_counted: u64 = hot
        .iter()
        .chain(cold.iter())
        .map(|&d| {
            engine
                .scan_index(
                    vec![Datum::Int64(d as i64)],
                    SortBound::Unbounded,
                    SortBound::Unbounded,
                    Freshness::Latest,
                    ReconcileStrategy::PriorityQueue,
                )
                .expect("integrity scan")
                .len() as u64
        })
        .sum();

    eprintln!(
        "  {} mode: cold live zone at end of window = {} rows, groom peak dequeue age = {}",
        if fair { "fair" } else { "fifo" },
        cold_live_at_end,
        groom_peak_dequeue_age
    );

    FairnessOutcome {
        cold_point: cold_hist.snapshot(),
        groom_peak_dequeue_age,
        rows_written,
        rows_counted,
    }
}

/// Rows for the fairness scenario: distinct `(device, msg)` per call.
fn fair_row(device: u64, msg: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device as i64),
        Datum::Int64(msg),
        Datum::Int64(20190326 + (msg % 7)),
        Datum::Int64(msg),
    ]
}

fn main() {
    let ops = env_usize("UMZI_SLO_OPS", 4000);
    let cycles = env_usize("UMZI_SLO_CYCLES", 60);

    eprintln!("== slo_harness: tenant mix ({ops} ops) ==");
    let slo = run_slo_mix(ops);
    for (t, per_class) in slo.hists.iter().enumerate() {
        for (ci, h) in per_class.iter().enumerate() {
            eprintln!(
                "tenant{t}/{:<10} n={:<6} p50={:<9} p99={:<10} p999={}",
                OpClass::ALL[ci].label(),
                h.count(),
                h.p50(),
                h.p99(),
                h.p999()
            );
        }
    }

    eprintln!("== slo_harness: fairness A/B ({cycles} cycles) ==");
    let fair = run_fairness(true, cycles);
    let fifo = run_fairness(false, cycles);
    eprintln!(
        "cold point p99: fair={} fifo={}  groom peak dequeue age: fair={} fifo={}",
        fair.cold_point.p99(),
        fifo.cold_point.p99(),
        fair.groom_peak_dequeue_age,
        fifo.groom_peak_dequeue_age
    );

    let mut failures: Vec<String> = Vec::new();
    for (t, per_class) in slo.hists.iter().enumerate() {
        for (ci, h) in per_class.iter().enumerate() {
            if h.count() == 0 {
                failures.push(format!(
                    "tenant{t}/{} recorded zero samples — the mix must reach every class",
                    OpClass::ALL[ci].label()
                ));
            }
        }
    }
    for (label, out) in [("fair", &fair), ("fifo", &fifo)] {
        if out.cold_point.count() == 0 {
            failures.push(format!("{label}: no cold-shard point samples"));
        }
        if out.rows_counted != out.rows_written {
            failures.push(format!(
                "{label}: acked rows lost under the ingest gate: wrote {} counted {}",
                out.rows_written, out.rows_counted
            ));
        }
    }

    // The artifact. Rows follow compare_bench.py's (workload, runs) keying
    // with an ops_per_sec figure; the percentile fields and scalars are the
    // SLO surface proper.
    let secs = slo.elapsed.as_secs_f64().max(1e-9);
    let mut json = String::from("{\n  \"bench\": \"slo_harness\",\n");
    let _ = writeln!(json, "  \"ops\": {}, \"secs\": {:.3},", slo.ops, secs);
    json.push_str("  \"results\": [\n");
    let mut rows: Vec<String> = Vec::new();
    for (t, per_class) in slo.hists.iter().enumerate() {
        for (ci, h) in per_class.iter().enumerate() {
            rows.push(format!(
                "    {{\"workload\": \"tenant{t}/{}\", \"runs\": 1, \"ops_per_sec\": {:.1}, {}}}",
                OpClass::ALL[ci].label(),
                h.count() as f64 / secs,
                quantile_fields(h)
            ));
        }
    }
    let _ = writeln!(json, "{}\n  ],", rows.join(",\n"));
    let engine_rows: Vec<String> = slo
        .engine_ops
        .iter()
        .map(|(label, h)| format!("    \"{label}\": {{{}}}", quantile_fields(h)))
        .collect();
    let _ = writeln!(
        json,
        "  \"engine_op_nanos\": {{\n{}\n  }},",
        engine_rows.join(",\n")
    );
    for (label, out) in [("fair", &fair), ("fifo", &fifo)] {
        let _ = writeln!(
            json,
            "  \"fairness_{label}\": {{{}, \"groom_peak_dequeue_age\": {}, \"rows\": {}}},",
            quantile_fields(&out.cold_point),
            out.groom_peak_dequeue_age,
            out.rows_written
        );
    }
    let _ = writeln!(
        json,
        "  \"cold_shard_point_p99_nanos_fair\": {},",
        fair.cold_point.p99()
    );
    let _ = writeln!(
        json,
        "  \"cold_shard_point_p999_nanos_fair\": {},",
        fair.cold_point.p999()
    );
    let _ = writeln!(
        json,
        "  \"cold_shard_point_p99_nanos_fifo\": {},",
        fifo.cold_point.p99()
    );
    let _ = writeln!(
        json,
        "  \"cold_shard_point_p999_nanos_fifo\": {},",
        fifo.cold_point.p999()
    );
    let _ = writeln!(
        json,
        "  \"fairness_cold_p99_fifo_over_fair_speedup\": {:.2}",
        fifo.cold_point.p99() as f64 / fair.cold_point.p99().max(1) as f64
    );
    json.push_str("}\n");

    let out_path = std::env::var("UMZI_SLO_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_slo.json").to_string()
    });
    std::fs::write(&out_path, json).expect("write BENCH_slo.json");
    eprintln!("wrote {out_path}");

    if !failures.is_empty() {
        eprintln!("\nslo harness FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if fifo.cold_point.p99() <= fair.cold_point.p99() {
        eprintln!(
            "warning: FIFO cold p99 not worse than fair on this run — \
             fairness headroom not visible at this scale"
        );
    }
}
