//! Multi-tenant SLO harness: tail-latency percentiles per tenant and
//! operation class, plus a maintenance-fairness A/B that measures what the
//! weighted-aging dequeue buys a cold shard sharing a daemon with a hot one.
//!
//! Three scenarios, one artifact:
//!
//! 1. **SLO mix** — a seeded [`TenantMix`] (zipf-skewed tenants, bursty
//!    open-loop arrivals) drives a two-shard engine while the maintenance
//!    daemon grooms/merges/evolves/retires underneath. Every operation is
//!    timed in the driver into per-`(tenant, class)` histograms; the
//!    engine's own per-op-class telemetry histograms ride along so the
//!    driver-side and engine-side views can be cross-checked.
//! 2. **Fairness A/B** — one slowed worker serves a hot shard under
//!    continuous ingest (an endless groom→merge cascade) and a cold shard
//!    taking light ingest plus freshest-point reads. FIFO dequeue starves
//!    the cold shard's groom behind the hot merge stream, so its un-groomed
//!    live zone — which freshest reads scan linearly — grows without bound;
//!    the weighted-aging dequeue lets the aged groom overtake. Cold-shard
//!    point p99 under both modes lands in the artifact as scalars.
//! 3. **Brownout degradation** — the shared store turns sick mid-run while
//!    deadline-bounded scans and interactive point reads keep arriving.
//!    Scans get shed by read admission, deadline-expired queries die typed
//!    with bounded overshoot, the storage circuit breaker trips and then
//!    recovers, and interactive point p99 stays bounded throughout. See
//!    [`run_brownout`].
//!
//! Run with `cargo run --release -p umzi-bench --bin slo_harness`.
//! Writes `BENCH_slo.json` (override with `UMZI_SLO_OUT`); CI diffs it via
//! `scripts/compare_bench.py`. `UMZI_SLO_OPS` / `UMZI_SLO_CYCLES` scale the
//! two scenarios (defaults are the CI-sized small preset).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use umzi_core::{JobKind, MaintenanceConfig, MergePolicy, ReconcileStrategy};
use umzi_encoding::Datum;
use umzi_run::SortBound;
use umzi_storage::telemetry::{Histogram, HistogramSnapshot};
use umzi_storage::{
    BreakerConfig, DecodedCacheConfig, FaultInjectingStore, FaultOp, FaultPlan,
    InMemoryObjectStore, LatencyModel, ObjectStore, QueryContext, RetryConfig, SharedStorage,
    TelemetryConfig, TieredConfig, TieredStorage,
};
use umzi_wildfire::{
    iot_table, AdmissionConfig, EngineConfig, Freshness, ShardConfig, WildfireEngine,
};
use umzi_workload::{
    BurstModel, OpClass, OpMix, TenantMix, TenantMixConfig, TenantOpKind, TenantProfile,
};

/// Devices per tenant: tenant-relative keys map onto `device = tenant·32 +
/// key % 32`, `msg = key / 32`, so tenants never collide and every tenant
/// spreads over both shards.
const DEVS_PER_TENANT: u64 = 32;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn row_of(tenant: usize, key: u64) -> Vec<Datum> {
    let device = tenant as u64 * DEVS_PER_TENANT + key % DEVS_PER_TENANT;
    let msg = key / DEVS_PER_TENANT;
    vec![
        Datum::Int64(device as i64),
        Datum::Int64(msg as i64),
        Datum::Int64(20190326 + (key % 7) as i64),
        Datum::Int64(key as i64),
    ]
}

fn probe_of(tenant: usize, key: u64) -> (Vec<Datum>, Vec<Datum>) {
    let device = tenant as u64 * DEVS_PER_TENANT + key % DEVS_PER_TENANT;
    (
        vec![Datum::Int64(device as i64)],
        vec![Datum::Int64((key / DEVS_PER_TENANT) as i64)],
    )
}

fn quantile_fields(h: &HistogramSnapshot) -> String {
    format!(
        "\"count\": {}, \"p50_nanos\": {}, \"p90_nanos\": {}, \"p99_nanos\": {}, \"p999_nanos\": {}",
        h.count(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.p999()
    )
}

/// The tenants: an OLTP-shaped point reader, an analytics scanner and an
/// ingest-heavy feed, weighted 3:1:2 on the shared arrival process.
fn slo_tenants() -> TenantMixConfig {
    let base = TenantProfile {
        zipf_exponent: 0.9,
        key_space: 20_000,
        batch_size: 32,
        scan_span: 128,
        ingest_batch: 200,
        ..TenantProfile::default()
    };
    TenantMixConfig {
        tenants: vec![
            TenantProfile {
                weight: 3.0,
                mix: OpMix {
                    point: 0.70,
                    batch: 0.10,
                    range_scan: 0.05,
                    ingest: 0.15,
                },
                ..base.clone()
            },
            TenantProfile {
                weight: 1.0,
                mix: OpMix {
                    point: 0.10,
                    batch: 0.20,
                    range_scan: 0.60,
                    ingest: 0.10,
                },
                ..base.clone()
            },
            TenantProfile {
                weight: 2.0,
                mix: OpMix {
                    point: 0.20,
                    batch: 0.10,
                    range_scan: 0.10,
                    ingest: 0.60,
                },
                ..base
            },
        ],
        burst: BurstModel {
            base_ops_per_tick: 2.0,
            burst_period: 64,
            burst_len: 8,
            burst_multiplier: 8.0,
        },
    }
}

struct SloOutcome {
    /// `hists[tenant][class]` in [`OpClass::ALL`] order.
    hists: Vec<[HistogramSnapshot; 4]>,
    /// Engine-side op histograms `(label, snapshot)`.
    engine_ops: Vec<(&'static str, HistogramSnapshot)>,
    elapsed: Duration,
    ops: usize,
}

/// Scenario 1: drive the seeded tenant mix under daemon churn.
fn run_slo_mix(ops_target: usize) -> SloOutcome {
    let storage = Arc::new(TieredStorage::in_memory());
    let mut shard = ShardConfig::default();
    shard.umzi.merge = MergePolicy { k: 4, t: 4 };
    shard.umzi.telemetry = Some(TelemetryConfig {
        enabled: true,
        slow_query_threshold: Duration::from_millis(50),
        slow_query_log_len: 32,
    });
    let engine = WildfireEngine::create(
        Arc::clone(&storage),
        Arc::new(iot_table()),
        EngineConfig {
            n_shards: 2,
            shard,
            groom_interval: Duration::from_millis(10),
            post_groom_interval: Duration::from_millis(30),
            groom_trigger_rows: 400,
            maintenance: Some(MaintenanceConfig {
                workers: 2,
                janitor_interval: Duration::from_millis(25),
                adaptive_cache: false,
                ..MaintenanceConfig::default()
            }),
            ..EngineConfig::default()
        },
    )
    .expect("create engine");
    let daemons = engine.start_daemons();

    let config = slo_tenants();
    let n_tenants = config.tenants.len();
    let mut mix = TenantMix::new(config, 42).expect("valid tenant mix");
    let hists: Vec<[Histogram; 4]> = (0..n_tenants)
        .map(|_| std::array::from_fn(|_| Histogram::new()))
        .collect();

    let started = Instant::now();
    for _ in 0..ops_target {
        let op = mix.next_op();
        let class = OpClass::ALL
            .iter()
            .position(|c| *c == op.class())
            .expect("class in ALL");
        let tenant = op.tenant;
        let t0 = Instant::now();
        match op.kind {
            TenantOpKind::Point { key } => {
                let (eq, sort) = probe_of(tenant, key);
                std::hint::black_box(engine.get(&eq, &sort, Freshness::Latest).expect("point"));
            }
            TenantOpKind::Batch { keys } => {
                let probes: Vec<_> = keys.iter().map(|&k| probe_of(tenant, k)).collect();
                for s in engine.shards() {
                    std::hint::black_box(
                        s.index()
                            .batch_lookup(&probes, s.read_ts())
                            .expect("batch lookup"),
                    );
                }
            }
            TenantOpKind::RangeScan { start, span } => {
                let (eq, sort) = probe_of(tenant, start);
                let lo = sort[0].clone();
                let hi = Datum::Int64(match lo {
                    Datum::Int64(m) => m + (span / DEVS_PER_TENANT).max(1) as i64,
                    _ => unreachable!("msg is Int64"),
                });
                std::hint::black_box(
                    engine
                        .scan_index(
                            eq,
                            SortBound::Included(vec![lo]),
                            SortBound::Excluded(vec![hi]),
                            Freshness::Latest,
                            ReconcileStrategy::PriorityQueue,
                        )
                        .expect("range scan"),
                );
            }
            TenantOpKind::Ingest { mut keys } => {
                // Zipf batches repeat hot keys; one upsert transaction wants
                // each primary key at most once.
                keys.sort_unstable();
                keys.dedup();
                let rows: Vec<_> = keys.iter().map(|&k| row_of(tenant, k)).collect();
                engine.upsert_many(rows).expect("ingest");
            }
        }
        hists[tenant][class].record(t0.elapsed().as_nanos() as u64);
    }
    let elapsed = started.elapsed();

    if let Some(d) = daemons.daemon() {
        d.wait_idle(Duration::from_secs(30));
    }
    let snap = engine.telemetry();
    daemons.shutdown();

    let engine_ops = [
        (
            "point_lookup",
            "umzi_query_duration_nanos{op=\"point_lookup\"}",
        ),
        (
            "batch_lookup",
            "umzi_query_duration_nanos{op=\"batch_lookup\"}",
        ),
        (
            "range_scan_seq",
            "umzi_query_duration_nanos{op=\"range_scan_seq\"}",
        ),
        ("ingest", "umzi_ingest_duration_nanos"),
    ]
    .into_iter()
    .filter_map(|(label, name)| snap.histogram(name).cloned().map(|h| (label, h)))
    .collect();

    SloOutcome {
        hists: hists
            .iter()
            .map(|per_class| std::array::from_fn(|i| per_class[i].snapshot()))
            .collect(),
        engine_ops,
        elapsed,
        ops: ops_target,
    }
}

struct FairnessOutcome {
    cold_point: HistogramSnapshot,
    groom_peak_dequeue_age: u64,
    rows_written: u64,
    rows_counted: u64,
}

/// Shards in the fairness scenario: seven hot, one cold, one slowed worker.
const FAIR_SHARDS: usize = 8;

/// Scenario 2: seven hot shards keep one slowed worker under sustained
/// merge pressure (the flood thread grooms them inline, so every round
/// hands the daemon fresh level-0 runs to merge) while a cold shard takes a
/// trickle of ingest plus freshest-point reads. Those reads overlay the
/// cold shard's un-groomed live zone linearly, so a starved cold groom
/// shows up directly as read latency. FIFO dequeue serves strictly by
/// priority class — merges always beat grooms, and the cold groom waits out
/// the entire hot backlog; the weighted-aging dequeue lets it overtake once
/// its queue age exceeds the priority gap.
fn run_fairness(fair: bool, cycles: usize) -> FairnessOutcome {
    let table = Arc::new(iot_table());
    // Partition the device space by the engine's own routing so "hot" and
    // "cold" mean actual shards, not a guess about the hash.
    let devices_of = |shard: usize| -> Vec<u64> {
        (0u64..4000)
            .filter(|&d| {
                table.shard_of(
                    &[
                        Datum::Int64(d as i64),
                        Datum::Int64(0),
                        Datum::Int64(0),
                        Datum::Int64(0),
                    ],
                    FAIR_SHARDS,
                ) == shard
            })
            .take(2)
            .collect()
    };
    let cold = devices_of(FAIR_SHARDS - 1);
    let hot: Vec<u64> = (0..FAIR_SHARDS - 1).flat_map(devices_of).collect();

    let storage = Arc::new(TieredStorage::in_memory());
    let mut shard = ShardConfig::default();
    shard.umzi.merge = MergePolicy { k: 2, t: 4 };
    let engine = WildfireEngine::create(
        Arc::clone(&storage),
        Arc::clone(&table),
        EngineConfig {
            n_shards: FAIR_SHARDS,
            shard,
            groom_interval: Duration::from_millis(15),
            post_groom_interval: Duration::from_millis(40),
            groom_trigger_rows: 128,
            maintenance: Some(MaintenanceConfig {
                workers: 1,
                fair_dequeue: fair,
                // One slowed worker against seven shards' worth of merge
                // arrivals: the higher-priority classes never drain, which
                // is the regime the aging dequeue exists for. Watermarks
                // are lifted so the deliberately-unmerged hot backlog
                // doesn't stall ingest and pace the scenario instead.
                throttle: Some(Duration::from_millis(2)),
                l0_high_watermark: 1_000_000,
                l0_low_watermark: 500_000,
                janitor_interval: Duration::from_millis(25),
                adaptive_cache: false,
                ..MaintenanceConfig::default()
            }),
            ..EngineConfig::default()
        },
    )
    .expect("create engine");
    let daemons = engine.start_daemons();
    let daemon = Arc::clone(daemons.daemon().expect("maintenance configured"));

    // Background flood: round-robin batches across the hot shards at 10x
    // the cold shard's rate, groomed inline each round. The inline groom
    // stands in for foreground grooming under pressure: it keeps the
    // daemon's queue stocked with real level-0 merge work (priority above
    // grooms) faster than the slowed worker drains it.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hot_written = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let flood = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let hot_written = Arc::clone(&hot_written);
        let hot = hot.clone();
        std::thread::spawn(move || {
            let mut msg = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let rows: Vec<Vec<Datum>> = (0..hot.len() as i64 * 20)
                    .map(|i| fair_row(hot[i as usize % hot.len()], msg + i / hot.len() as i64))
                    .collect();
                msg += 20;
                hot_written.fetch_add(rows.len() as u64, std::sync::atomic::Ordering::Release);
                engine.upsert_many(rows).expect("hot ingest");
                for s in 0..FAIR_SHARDS - 1 {
                    engine.shards()[s].groom().expect("inline hot groom");
                }
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };

    let cold_hist = Histogram::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut cold_msg = 0i64;
    for _ in 0..cycles {
        let cold_rows: Vec<Vec<Datum>> = (0..100)
            .map(|i| {
                let d = cold[(cold_msg as usize + i) % cold.len()];
                fair_row(d, cold_msg + i as i64)
            })
            .collect();
        cold_msg += 100;
        engine.upsert_many(cold_rows).expect("cold ingest");

        // The cold tenant's reads: freshest-point lookups that must overlay
        // the un-groomed live zone — exactly what a starved groom inflates.
        for _ in 0..10 {
            let m = rng.random_range(0..cold_msg);
            let d = cold[m as usize % cold.len()];
            let t0 = Instant::now();
            std::hint::black_box(
                engine
                    .get(
                        &[Datum::Int64(d as i64)],
                        &[Datum::Int64(m)],
                        Freshness::Freshest,
                    )
                    .expect("cold point read"),
            );
            cold_hist.record(t0.elapsed().as_nanos() as u64);
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let cold_live_at_end = engine.shards()[FAIR_SHARDS - 1].live().len();
    stop.store(true, std::sync::atomic::Ordering::Release);
    flood.join().expect("flood thread");
    let rows_written = hot_written.load(std::sync::atomic::Ordering::Acquire) + cold_msg as u64;
    // Graceful shutdown drains the queue, so a groom starved through the
    // whole measured window still pops — and records its dequeue age.
    daemons.shutdown();
    let groom_peak_dequeue_age = daemon.stats().peak_dequeue_age(JobKind::Groom);

    // Integrity under the byte-based gate: every acked row is countable.
    engine.quiesce().expect("quiesce");
    let rows_counted: u64 = hot
        .iter()
        .chain(cold.iter())
        .map(|&d| {
            engine
                .scan_index(
                    vec![Datum::Int64(d as i64)],
                    SortBound::Unbounded,
                    SortBound::Unbounded,
                    Freshness::Latest,
                    ReconcileStrategy::PriorityQueue,
                )
                .expect("integrity scan")
                .len() as u64
        })
        .sum();

    eprintln!(
        "  {} mode: cold live zone at end of window = {} rows, groom peak dequeue age = {}",
        if fair { "fair" } else { "fifo" },
        cold_live_at_end,
        groom_peak_dequeue_age
    );

    FairnessOutcome {
        cold_point: cold_hist.snapshot(),
        groom_peak_dequeue_age,
        rows_written,
        rows_counted,
    }
}

/// Rows for the fairness scenario: distinct `(device, msg)` per call.
fn fair_row(device: u64, msg: i64) -> Vec<Datum> {
    vec![
        Datum::Int64(device as i64),
        Datum::Int64(msg),
        Datum::Int64(20190326 + (msg % 7)),
        Datum::Int64(msg),
    ]
}

struct BrownoutOutcome {
    /// Driver-side latency of every interactive point read across the whole
    /// window (healthy → sick → healed), successes and failures alike.
    point: HistogramSnapshot,
    /// The engine's `umzi_query_deadline_overshoot_nanos` histogram: how far
    /// past its deadline any query was allowed to run.
    overshoot: HistogramSnapshot,
    sheds: u64,
    timeouts: u64,
    breaker_transitions: u64,
    breaker_rejections: u64,
    /// Whether the block-fetch breaker closed again after the store healed.
    breaker_recovered: bool,
    degraded_hits: u64,
    point_failures: u64,
}

const BROWNOUT_DEVICES: i64 = 24;
const BROWNOUT_MSGS: i64 = 200;

/// Scenario 3: brownout degradation. The engine runs on a fault-injectable
/// shared store with starved warm tiers (every read goes back to shared
/// storage), a circuit breaker armed on the storage tier, and read
/// admission squeezed to one analytical slot. Three scanner threads hammer
/// deadline-bounded range scans while the driver issues interactive point
/// reads; one third of the way in the store turns *sick* (every shared get
/// faults), and two thirds in it heals.
///
/// The claims under test, asserted below and exported as scalars:
/// deadline-expired queries die **typed and promptly** (overshoot p99 stays
/// within one clamped backoff step plus one block fetch), analytical scans
/// are **shed** rather than queued to death, the breaker **trips and
/// recovers** (nonzero transitions, fast rejections while open), and
/// interactive point p99 over the whole window — sick phase included —
/// stays bounded instead of inheriting the storage outage.
fn run_brownout(cycles: usize) -> BrownoutOutcome {
    let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryObjectStore::new());
    let faults = Arc::new(FaultInjectingStore::new(
        inner,
        FaultPlan::none()
            .with_transient(FaultOp::Get, 1.0)
            .with_transient(FaultOp::GetRange, 1.0),
    ));
    faults.set_armed(false);
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::new(
            Arc::clone(&faults) as Arc<dyn ObjectStore>,
            LatencyModel::off(),
        ),
        TieredConfig {
            chunk_size: 1024,
            // Starve the warm tiers and decoded cache so reads keep going
            // back to (fault-injectable) shared storage — the brownout has
            // to be survived, not dodged by a cache.
            mem_capacity: 2048,
            ssd_capacity: 4096,
            decoded_cache: DecodedCacheConfig {
                capacity_bytes: 0,
                ..DecodedCacheConfig::default()
            },
            retry: RetryConfig {
                max_retries: 2,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(5),
            },
            breaker: BreakerConfig {
                failure_threshold: 5,
                window: Duration::from_secs(5),
                cooldown: Duration::from_millis(100),
                half_open_probes: 1,
            },
            ..TieredConfig::default()
        },
    ));
    let engine = WildfireEngine::create(
        Arc::clone(&storage),
        Arc::new(iot_table()),
        EngineConfig {
            n_shards: 2,
            maintenance: None,
            admission: AdmissionConfig {
                max_concurrent_scans: 1,
                max_queue_depth: 1,
            },
            ..EngineConfig::default()
        },
    )
    .expect("create engine");

    // Preload and groom while the store is healthy, then warm the admission
    // controller's scan-cost estimate with a few unbounded scans.
    for device in 0..BROWNOUT_DEVICES {
        let rows: Vec<Vec<Datum>> = (0..BROWNOUT_MSGS)
            .map(|m| fair_row(device as u64, m))
            .collect();
        engine.upsert_many(rows).expect("brownout preload");
    }
    engine.quiesce().expect("brownout quiesce");
    for device in 0..4i64 {
        engine
            .scan_index(
                vec![Datum::Int64(device)],
                SortBound::Unbounded,
                SortBound::Unbounded,
                Freshness::Latest,
                ReconcileStrategy::PriorityQueue,
            )
            .expect("warm-up scan");
    }

    // Three scanner threads against one admission slot and a one-deep
    // queue: scans contend all window long, so shedding is exercised under
    // health as well as sickness, and deadline expiry inside retry backoff
    // is exercised the moment the store turns sick.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scanners: Vec<_> = (0..3)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut device = i as i64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let ctx = QueryContext::with_deadline(Duration::from_millis(4));
                    let _ = std::hint::black_box(engine.scan_index_with(
                        &ctx,
                        vec![Datum::Int64(device % BROWNOUT_DEVICES)],
                        SortBound::Unbounded,
                        SortBound::Unbounded,
                        Freshness::Latest,
                        ReconcileStrategy::PriorityQueue,
                    ));
                    device += 3;
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        })
        .collect();

    let point_hist = Histogram::new();
    let mut point_failures = 0u64;
    let mut rng = StdRng::seed_from_u64(99);
    let sick_from = cycles / 3;
    let heal_from = cycles - cycles / 3;
    for cycle in 0..cycles {
        if cycle == sick_from {
            faults.set_armed(true);
        }
        if cycle == heal_from {
            faults.set_armed(false);
        }
        // Interactive points: indexed reads under a deadline generous
        // enough to absorb one retry cycle but far below the outage length.
        for _ in 0..16 {
            let device = rng.random_range(0..BROWNOUT_DEVICES);
            let msg = rng.random_range(0..BROWNOUT_MSGS);
            let ctx = QueryContext::with_deadline(Duration::from_millis(20));
            let t0 = Instant::now();
            let out = engine.get_with(
                &ctx,
                &[Datum::Int64(device)],
                &[Datum::Int64(msg)],
                Freshness::Latest,
            );
            point_hist.record(t0.elapsed().as_nanos() as u64);
            if out.is_err() {
                point_failures += 1;
            }
        }
        // Freshest reads of just-ingested rows: served straight from the
        // live zone, these are the point lookups that keep answering — and
        // get counted as degraded hits — while the block-fetch breaker is
        // open.
        let device = (cycle as i64) % BROWNOUT_DEVICES;
        let fresh_msg = BROWNOUT_MSGS + cycle as i64;
        engine
            .upsert(fair_row(device as u64, fresh_msg))
            .expect("fresh ingest");
        let ctx = QueryContext::with_deadline(Duration::from_millis(20));
        let t0 = Instant::now();
        let out = engine.get_with(
            &ctx,
            &[Datum::Int64(device)],
            &[Datum::Int64(fresh_msg)],
            Freshness::Freshest,
        );
        point_hist.record(t0.elapsed().as_nanos() as u64);
        if out.is_err() {
            point_failures += 1;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // Recovery: the store is healed, but a tripped breaker only closes
    // after its cooldown elapses and a half-open probe succeeds. Keep
    // traffic flowing (the scanners are still running) until the
    // block-fetch breaker closes, bounded so a broken recovery path fails
    // the harness instead of hanging it.
    let recover_deadline = Instant::now() + Duration::from_secs(5);
    let block_fetch_state = || storage.breaker().state(umzi_storage::OpClass::BlockFetch);
    while block_fetch_state() != umzi_storage::BreakerState::Closed
        && Instant::now() < recover_deadline
    {
        let _ = engine.get(&[Datum::Int64(0)], &[Datum::Int64(0)], Freshness::Latest);
        std::thread::sleep(Duration::from_millis(10));
    }
    let breaker_recovered = block_fetch_state() == umzi_storage::BreakerState::Closed;

    stop.store(true, std::sync::atomic::Ordering::Release);
    for s in scanners {
        s.join().expect("scanner thread");
    }

    let health = engine.health();
    let st = storage.stats();
    let snap = engine.telemetry();
    let overshoot = snap
        .histogram("umzi_query_deadline_overshoot_nanos")
        .cloned()
        .expect("overshoot histogram is registered at engine construction");
    let degraded_hits = snap
        .metrics
        .counters
        .iter()
        .find(|(n, _)| n == "umzi_query_degraded_hits_total")
        .map(|(_, v)| *v)
        .unwrap_or(0);

    eprintln!(
        "  brownout: point p99={} overshoot p99={} sheds={} timeouts={} \
         breaker transitions={} rejections={} recovered={} degraded hits={} \
         point failures={}",
        point_hist.snapshot().p99(),
        overshoot.p99(),
        health.query_sheds,
        health.query_timeouts,
        st.breaker_transitions.iter().sum::<u64>(),
        st.breaker_rejections.iter().sum::<u64>(),
        breaker_recovered,
        degraded_hits,
        point_failures
    );

    BrownoutOutcome {
        point: point_hist.snapshot(),
        overshoot,
        sheds: health.query_sheds,
        timeouts: health.query_timeouts,
        breaker_transitions: st.breaker_transitions.iter().sum(),
        breaker_rejections: st.breaker_rejections.iter().sum(),
        breaker_recovered,
        degraded_hits,
        point_failures,
    }
}

fn main() {
    let ops = env_usize("UMZI_SLO_OPS", 4000);
    let cycles = env_usize("UMZI_SLO_CYCLES", 60);

    eprintln!("== slo_harness: tenant mix ({ops} ops) ==");
    let slo = run_slo_mix(ops);
    for (t, per_class) in slo.hists.iter().enumerate() {
        for (ci, h) in per_class.iter().enumerate() {
            eprintln!(
                "tenant{t}/{:<10} n={:<6} p50={:<9} p99={:<10} p999={}",
                OpClass::ALL[ci].label(),
                h.count(),
                h.p50(),
                h.p99(),
                h.p999()
            );
        }
    }

    eprintln!("== slo_harness: fairness A/B ({cycles} cycles) ==");
    let fair = run_fairness(true, cycles);
    let fifo = run_fairness(false, cycles);
    eprintln!(
        "cold point p99: fair={} fifo={}  groom peak dequeue age: fair={} fifo={}",
        fair.cold_point.p99(),
        fifo.cold_point.p99(),
        fair.groom_peak_dequeue_age,
        fifo.groom_peak_dequeue_age
    );

    eprintln!("== slo_harness: brownout degradation ({cycles} cycles) ==");
    let brownout = run_brownout(cycles.max(30));

    let mut failures: Vec<String> = Vec::new();
    for (t, per_class) in slo.hists.iter().enumerate() {
        for (ci, h) in per_class.iter().enumerate() {
            if h.count() == 0 {
                failures.push(format!(
                    "tenant{t}/{} recorded zero samples — the mix must reach every class",
                    OpClass::ALL[ci].label()
                ));
            }
        }
    }
    for (label, out) in [("fair", &fair), ("fifo", &fifo)] {
        if out.cold_point.count() == 0 {
            failures.push(format!("{label}: no cold-shard point samples"));
        }
        if out.rows_counted != out.rows_written {
            failures.push(format!(
                "{label}: acked rows lost under the ingest gate: wrote {} counted {}",
                out.rows_written, out.rows_counted
            ));
        }
    }

    // Brownout acceptance: the degradation has to be *graceful*, with
    // receipts. Overshoot is bounded by construction — retry backoff is
    // clamped to the remaining budget — so its p99 must fit in one clamped
    // backoff step (≤ 5ms max_backoff) plus one in-memory block fetch, with
    // slack for CI schedulers.
    let overshoot_bound = Duration::from_millis(25).as_nanos() as u64;
    if brownout.sheds == 0 {
        failures.push("brownout: no scans were shed by read admission".into());
    }
    if brownout.timeouts == 0 {
        failures.push("brownout: no queries died on their deadline".into());
    }
    if brownout.breaker_transitions == 0 {
        failures.push("brownout: the storage circuit breaker never tripped".into());
    }
    if brownout.breaker_rejections == 0 {
        failures.push("brownout: an open breaker never failed an op fast".into());
    }
    if !brownout.breaker_recovered {
        failures.push("brownout: the breaker never closed again after the store healed".into());
    }
    if brownout.degraded_hits == 0 {
        failures
            .push("brownout: no point lookup was answered (degraded) under an open breaker".into());
    }
    if brownout.overshoot.count() == 0 {
        failures.push("brownout: overshoot histogram recorded no samples".into());
    } else if brownout.overshoot.p99() > overshoot_bound {
        failures.push(format!(
            "brownout: deadline overshoot p99 {}ns exceeds the {}ns bound \
             (one clamped backoff step + one block fetch)",
            brownout.overshoot.p99(),
            overshoot_bound
        ));
    }
    // Point reads during a full storage outage must stay *bounded* —
    // answered, degraded, or failed fast, never hung. 100ms is five point
    // deadlines of slack; an unclamped backoff chain or a queued-to-death
    // read would blow through it.
    if brownout.point.p99() > Duration::from_millis(100).as_nanos() as u64 {
        failures.push(format!(
            "brownout: interactive point p99 {}ns not bounded under brownout",
            brownout.point.p99()
        ));
    }

    // The artifact. Rows follow compare_bench.py's (workload, runs) keying
    // with an ops_per_sec figure; the percentile fields and scalars are the
    // SLO surface proper.
    let secs = slo.elapsed.as_secs_f64().max(1e-9);
    let mut json = String::from("{\n  \"bench\": \"slo_harness\",\n");
    let _ = writeln!(json, "  \"ops\": {}, \"secs\": {:.3},", slo.ops, secs);
    json.push_str("  \"results\": [\n");
    let mut rows: Vec<String> = Vec::new();
    for (t, per_class) in slo.hists.iter().enumerate() {
        for (ci, h) in per_class.iter().enumerate() {
            rows.push(format!(
                "    {{\"workload\": \"tenant{t}/{}\", \"runs\": 1, \"ops_per_sec\": {:.1}, {}}}",
                OpClass::ALL[ci].label(),
                h.count() as f64 / secs,
                quantile_fields(h)
            ));
        }
    }
    let _ = writeln!(json, "{}\n  ],", rows.join(",\n"));
    let engine_rows: Vec<String> = slo
        .engine_ops
        .iter()
        .map(|(label, h)| format!("    \"{label}\": {{{}}}", quantile_fields(h)))
        .collect();
    let _ = writeln!(
        json,
        "  \"engine_op_nanos\": {{\n{}\n  }},",
        engine_rows.join(",\n")
    );
    for (label, out) in [("fair", &fair), ("fifo", &fifo)] {
        let _ = writeln!(
            json,
            "  \"fairness_{label}\": {{{}, \"groom_peak_dequeue_age\": {}, \"rows\": {}}},",
            quantile_fields(&out.cold_point),
            out.groom_peak_dequeue_age,
            out.rows_written
        );
    }
    let _ = writeln!(
        json,
        "  \"brownout\": {{\"point\": {{{}}}, \"overshoot\": {{{}}}, \
         \"sheds\": {}, \"timeouts\": {}, \"breaker_transitions\": {}, \
         \"breaker_rejections\": {}, \"breaker_recovered\": {}, \
         \"degraded_hits\": {}, \"point_failures\": {}}},",
        quantile_fields(&brownout.point),
        quantile_fields(&brownout.overshoot),
        brownout.sheds,
        brownout.timeouts,
        brownout.breaker_transitions,
        brownout.breaker_rejections,
        brownout.breaker_recovered,
        brownout.degraded_hits,
        brownout.point_failures
    );
    let _ = writeln!(
        json,
        "  \"brownout_point_p99_nanos\": {},",
        brownout.point.p99()
    );
    let _ = writeln!(
        json,
        "  \"deadline_overshoot_p99_nanos\": {},",
        brownout.overshoot.p99()
    );
    let _ = writeln!(json, "  \"shed_count\": {},", brownout.sheds);
    let _ = writeln!(
        json,
        "  \"cold_shard_point_p99_nanos_fair\": {},",
        fair.cold_point.p99()
    );
    let _ = writeln!(
        json,
        "  \"cold_shard_point_p999_nanos_fair\": {},",
        fair.cold_point.p999()
    );
    let _ = writeln!(
        json,
        "  \"cold_shard_point_p99_nanos_fifo\": {},",
        fifo.cold_point.p99()
    );
    let _ = writeln!(
        json,
        "  \"cold_shard_point_p999_nanos_fifo\": {},",
        fifo.cold_point.p999()
    );
    let _ = writeln!(
        json,
        "  \"fairness_cold_p99_fifo_over_fair_speedup\": {:.2}",
        fifo.cold_point.p99() as f64 / fair.cold_point.p99().max(1) as f64
    );
    json.push_str("}\n");

    let out_path = std::env::var("UMZI_SLO_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_slo.json").to_string()
    });
    std::fs::write(&out_path, json).expect("write BENCH_slo.json");
    eprintln!("wrote {out_path}");

    if !failures.is_empty() {
        eprintln!("\nslo harness FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if fifo.cold_point.p99() <= fair.cold_point.p99() {
        eprintln!(
            "warning: FIFO cold p99 not worse than fair on this run — \
             fairness headroom not visible at this scale"
        );
    }
}
