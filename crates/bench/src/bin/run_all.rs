//! Regenerate every figure of the paper's evaluation in one go.
//!
//! `cargo run --release -p umzi-bench --bin run_all`
//! (`UMZI_BENCH_SCALE=full` for paper-scale parameters.)

use umzi_bench::figures;
use umzi_workload::KeyDist;

fn main() {
    let scale = umzi_bench::Scale::from_env();
    println!("# Umzi reproduction — all figures ({scale:?} scale)");
    let t0 = std::time::Instant::now();
    figures::fig08(scale);
    figures::fig09(scale);
    figures::fig10_11(scale, KeyDist::Sequential);
    figures::fig10_11(scale, KeyDist::Random);
    figures::fig12(scale);
    figures::fig13(scale);
    figures::fig14(scale);
    figures::fig15(scale);
    println!("\nall figures regenerated in {:?}", t0.elapsed());
}
