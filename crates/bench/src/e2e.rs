//! Shared driver for the end-to-end experiments (§8.4, Figures 12–15).
//!
//! *"We ingest roughly 100000 random records per second. The groomer runs
//! every second, and the post-groomer runs every 20 seconds. We also submit
//! batches of 1000 random index lookup queries continuously."* Updates
//! follow the IoT model (p% of the last cycle, 0.1·p% of 50 cycles,
//! 0.01·p% of 100 cycles).
//!
//! The driver runs a writer, the engine daemons, optional cache purging,
//! and N reader threads; it reports the average batched-lookup latency per
//! time window — the y-axis of every §8.4 figure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use umzi_core::MaintenanceConfig;
use umzi_encoding::Datum;
use umzi_storage::{LatencyMode, SharedStorage, TierLatency, TieredConfig, TieredStorage};
use umzi_wildfire::{iot_table, EngineConfig, ShardConfig, WildfireEngine};
use umzi_workload::IotUpdateModel;

/// Manual purge mode for Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PurgeMode {
    /// No runs purged (all SSD-cached).
    None,
    /// Roughly half of the levels purged.
    Half,
    /// Every run purged (headers only in the cache).
    All,
}

impl PurgeMode {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            PurgeMode::None => "none",
            PurgeMode::Half => "half",
            PurgeMode::All => "all",
        }
    }
}

/// End-to-end run parameters.
#[derive(Debug, Clone)]
pub struct E2eConfig {
    /// Total run length.
    pub seconds: u64,
    /// Ingest rate (records/second).
    pub rate: usize,
    /// Update fraction `p` (§8.4; default 0.10).
    pub p_update: f64,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Lookup batch size (paper: 1000).
    pub batch: usize,
    /// Manual purge mode (Figure 14); applied each window.
    pub purge: PurgeMode,
    /// Whether the post-groomer (and thus evolve) runs (Figure 15).
    pub post_groom: bool,
    /// Storage latencies `(ssd, shared)` in Sleep mode; `None` = free.
    pub latency: Option<(TierLatency, TierLatency)>,
    /// Groom period.
    pub groom_every: Duration,
    /// Post-groom period.
    pub post_groom_every: Duration,
    /// Reporting window.
    pub window: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for E2eConfig {
    fn default() -> Self {
        Self {
            seconds: 15,
            rate: 20_000,
            p_update: 0.10,
            readers: 1,
            batch: 1000,
            purge: PurgeMode::None,
            post_groom: true,
            latency: None,
            groom_every: Duration::from_millis(200),
            post_groom_every: Duration::from_secs(4),
            window: Duration::from_secs(1),
            seed: 42,
        }
    }
}

/// Result: average batched-lookup latency (seconds) per window, plus totals.
#[derive(Debug, Clone)]
pub struct E2eOutcome {
    /// Mean per-batch lookup latency per window (empty windows are `NaN`).
    pub window_latency: Vec<f64>,
    /// Total records ingested.
    pub ingested: u64,
    /// Total lookup batches executed.
    pub batches: u64,
}

/// Map a workload key to an IoT row: 1000 devices, `msg = k / 1000`.
fn key_row(k: u64) -> Vec<Datum> {
    vec![
        Datum::Int64((k % 1000) as i64),
        Datum::Int64((k / 1000) as i64),
        Datum::Int64(20190326 + (k % 7) as i64),
        Datum::Int64(k as i64),
    ]
}

/// The index probe for a workload key.
fn key_probe(k: u64) -> (Vec<Datum>, Vec<Datum>) {
    (
        vec![Datum::Int64((k % 1000) as i64)],
        vec![Datum::Int64((k / 1000) as i64)],
    )
}

/// Run one end-to-end experiment.
pub fn run_e2e(cfg: &E2eConfig) -> E2eOutcome {
    let tiered = match cfg.latency {
        Some((ssd, shared)) => TieredConfig {
            mem_capacity: 64 << 20, // small memory tier: the SSD matters
            ssd_capacity: 32 << 30,
            ssd_latency: ssd,
            shared_latency: shared,
            latency_mode: LatencyMode::Sleep,
            ..TieredConfig::default()
        },
        None => TieredConfig {
            mem_capacity: 2 << 30,
            ssd_capacity: 32 << 30,
            ..TieredConfig::default()
        },
    };
    let storage = Arc::new(TieredStorage::new(SharedStorage::in_memory(), tiered));
    let engine = WildfireEngine::create(
        storage,
        Arc::new(iot_table()),
        EngineConfig {
            n_shards: 1,
            shard: ShardConfig::default(),
            groom_interval: cfg.groom_every,
            post_groom_interval: if cfg.post_groom {
                cfg.post_groom_every
            } else {
                Duration::from_secs(86_400) // §8.4.4: post-groomer disabled
            },
            groom_trigger_rows: 4096,
            maintenance: Some(MaintenanceConfig {
                workers: 2,
                janitor_interval: Duration::from_millis(100),
                // Figure 14 controls purging manually.
                adaptive_cache: false,
                ..MaintenanceConfig::default()
            }),
            ..EngineConfig::default()
        },
    )
    .expect("create engine");
    let daemons = engine.start_daemons();

    let stop = Arc::new(AtomicBool::new(false));
    let keys_created = Arc::new(AtomicU64::new(0));
    let ingested = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    // Writer: `rate` records/second in 100 ms ticks, IoT update mix.
    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let keys_created = Arc::clone(&keys_created);
        let ingested = Arc::clone(&ingested);
        let per_tick = cfg.rate / 10;
        let p = cfg.p_update;
        let seed = cfg.seed;
        std::thread::spawn(move || {
            let mut model = IotUpdateModel::new(p, per_tick.max(1), seed);
            while !stop.load(Ordering::Relaxed) {
                let tick_start = Instant::now();
                let batch = model.next_cycle();
                let rows: Vec<Vec<Datum>> = batch.iter().map(|&(k, _)| key_row(k)).collect();
                let n = rows.len() as u64;
                engine.upsert_many(rows).expect("upsert");
                ingested.fetch_add(n, Ordering::Relaxed);
                keys_created.store(model.keys_created(), Ordering::Release);
                if let Some(rest) = Duration::from_millis(100).checked_sub(tick_start.elapsed()) {
                    std::thread::sleep(rest);
                }
            }
        })
    };

    // Purger (Figure 14): re-apply the purge mode every window, because the
    // pipeline keeps producing freshly cached runs.
    let purger = (cfg.purge != PurgeMode::None).then(|| {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let mode = cfg.purge;
        let window = cfg.window;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let idx = engine.shards()[0].index();
                let max = idx.config().max_level();
                let target = match mode {
                    PurgeMode::None => max,
                    PurgeMode::Half => max / 2,
                    PurgeMode::All => 0,
                };
                for level in (target..=max).rev() {
                    let _ = idx.purge_level(level);
                }
                if mode == PurgeMode::All {
                    let _ = idx.purge_level(0);
                }
                std::thread::sleep(window / 2);
            }
        })
    });

    // Readers: continuous random batched lookups; samples = (elapsed-at,
    // batch latency).
    let samples: Arc<Mutex<Vec<(f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut readers = Vec::new();
    for r in 0..cfg.readers {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let keys_created = Arc::clone(&keys_created);
        let samples = Arc::clone(&samples);
        let batch = cfg.batch;
        let seed = cfg.seed + 1000 + r as u64;
        readers.push(std::thread::spawn(move || {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut local = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let domain = keys_created.load(Ordering::Acquire);
                if domain == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                let probes: Vec<(Vec<Datum>, Vec<Datum>)> = (0..batch)
                    .map(|_| key_probe(rng.random_range(0..domain)))
                    .collect();
                let shard = &engine.shards()[0];
                let ts = shard.read_ts();
                let q0 = Instant::now();
                let out = shard
                    .index()
                    .batch_lookup(&probes, ts)
                    .expect("batch lookup");
                let dt = q0.elapsed();
                std::hint::black_box(&out);
                local.push((t0.elapsed().as_secs_f64(), dt.as_secs_f64()));
            }
            samples.lock().extend(local);
        }));
    }

    std::thread::sleep(Duration::from_secs(cfg.seconds));
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer");
    if let Some(p) = purger {
        p.join().expect("purger");
    }
    for r in readers {
        r.join().expect("reader");
    }
    daemons.shutdown();

    // Aggregate into windows.
    let samples = samples.lock();
    let n_windows = (cfg.seconds as f64 / cfg.window.as_secs_f64()).ceil() as usize;
    let mut sums = vec![0.0f64; n_windows];
    let mut counts = vec![0u64; n_windows];
    for &(at, lat) in samples.iter() {
        let w = ((at / cfg.window.as_secs_f64()) as usize).min(n_windows - 1);
        sums[w] += lat;
        counts[w] += 1;
    }
    let window_latency = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { f64::NAN })
        .collect();

    E2eOutcome {
        window_latency,
        ingested: ingested.load(Ordering::Relaxed),
        batches: samples.len() as u64,
    }
}
