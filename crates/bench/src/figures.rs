//! One function per figure of the paper's evaluation (§8). Each prints the
//! figure's normalized series; binaries `fig08`…`fig15` are thin wrappers,
//! and `run_all` executes everything.

use std::time::Duration;

use umzi_core::ReconcileStrategy;
use umzi_storage::TierLatency;
use umzi_workload::{IndexPreset, KeyDist, KeyGen};

use crate::e2e::{run_e2e, E2eConfig, PurgeMode};
use crate::{
    bench_index, ingest_runs, lookup_batch, median_time, point_entries, print_figure, scan_range,
    secs, Scale, Series,
};

fn reps_for(size: u64) -> usize {
    match size {
        0..=100_000 => 5,
        100_001..=1_000_000 => 3,
        _ => 1,
    }
}

/// Figure 8: index-building time vs run size, for I1/I2/I3.
pub fn fig08(scale: Scale) {
    let mut series = Vec::new();
    let mut base = None;
    for preset in IndexPreset::ALL {
        let mut points = Vec::new();
        for &size in &scale.run_sizes() {
            let t = median_time(reps_for(size), || {
                let idx = bench_index(preset, &format!("f8-{}-{size}", preset.label()));
                let mut gen = KeyGen::new(KeyDist::Sequential, size.max(1), 7);
                let keys = gen.batch(size as usize);
                let entries = point_entries(&idx, preset, &keys, 1);
                let t0 = std::time::Instant::now();
                idx.build_groomed_run(entries, 1, 1).expect("build");
                t0.elapsed()
            });
            if base.is_none() {
                base = Some(secs(t)); // I1 @ smallest size, as in the paper
            }
            points.push((size.to_string(), secs(t)));
        }
        series.push(Series {
            label: preset.label().into(),
            points,
        });
    }
    print_figure(
        "Figure 8: index building performance (normalized time)",
        "#tuples",
        &series,
        base.expect("at least one point"),
    );
}

/// Figure 9: single-run query performance — (a) sequential and (b) random
/// query batches vs run size, for I1/I2/I3.
pub fn fig09(scale: Scale) {
    let batch = 1000usize;
    let mut base = None;
    for (panel, qdist) in [("a", KeyDist::Sequential), ("b", KeyDist::Random)] {
        let mut series = Vec::new();
        for preset in IndexPreset::ALL {
            let mut points = Vec::new();
            for &size in &scale.run_sizes() {
                let idx = bench_index(preset, &format!("f9{panel}-{}-{size}", preset.label()));
                // §8.3.1 ingests sequential keys (order in a run is by hash
                // anyway).
                ingest_runs(&idx, preset, KeyDist::Sequential, 1, size, false, 7);
                let mut qgen = KeyGen::new(qdist, size.max(1), 99);
                let t = median_time(3, || {
                    let keys = qgen.query_batch(batch, size);
                    lookup_batch(&idx, preset, &keys, u64::MAX)
                });
                if base.is_none() {
                    base = Some(secs(t)); // sequential I1 @ 1K (§8.3.1)
                }
                points.push((size.to_string(), secs(t)));
            }
            series.push(Series {
                label: preset.label().into(),
                points,
            });
        }
        print_figure(
            &format!(
                "Figure 9{panel}: single-run lookups, {} queries",
                qdist.label()
            ),
            "#tuples",
            &series,
            base.expect("base set"),
        );
    }
}

/// Figures 10 (sequentially ingested keys) and 11 (randomly ingested keys):
/// multi-run query performance — (a) batch size, (b) number of runs,
/// (c) scan range.
pub fn fig10_11(scale: Scale, ingest: KeyDist) {
    let fig = if ingest == KeyDist::Sequential {
        "10"
    } else {
        "11"
    };
    let per_run = scale.entries_per_run();

    // Panel (a): per-key lookup time vs batch size, 20 runs.
    {
        let n_runs = 20;
        let mut series = Vec::new();
        let mut base = None;
        for qdist in [KeyDist::Sequential, KeyDist::Random] {
            let idx = bench_index(IndexPreset::I1, &format!("f{fig}a-{}", qdist.label()));
            let total = ingest_runs(&idx, IndexPreset::I1, ingest, n_runs, per_run, false, 7);
            let mut points = Vec::new();
            for batch in [1usize, 10, 100, 1_000, 10_000] {
                let mut qgen = KeyGen::new(qdist, total, 99);
                let reps = if batch <= 100 { 9 } else { 3 };
                let t = median_time(reps, || {
                    let keys = qgen.query_batch(batch, total);
                    lookup_batch(&idx, IndexPreset::I1, &keys, u64::MAX)
                });
                let per_key = secs(t) / batch as f64;
                if base.is_none() {
                    base = Some(per_key); // sequential @ batch 1
                }
                points.push((batch.to_string(), per_key));
            }
            series.push(Series {
                label: format!("{} query", qdist.label()),
                points,
            });
        }
        print_figure(
            &format!(
                "Figure {fig}a: time per key vs batch size ({} ingestion)",
                ingest.label()
            ),
            "batch size",
            &series,
            base.expect("base"),
        );
    }

    // Panel (b): batch-1000 lookup time vs number of runs.
    {
        let mut series = Vec::new();
        let mut base = None;
        for qdist in [KeyDist::Sequential, KeyDist::Random] {
            let mut points = Vec::new();
            for &n_runs in &scale.run_counts() {
                let idx = bench_index(
                    IndexPreset::I1,
                    &format!("f{fig}b-{}-{n_runs}", qdist.label()),
                );
                let total = ingest_runs(&idx, IndexPreset::I1, ingest, n_runs, per_run, false, 7);
                let mut qgen = KeyGen::new(qdist, total, 99);
                let t = median_time(3, || {
                    let keys = qgen.query_batch(1000, total);
                    lookup_batch(&idx, IndexPreset::I1, &keys, u64::MAX)
                });
                if base.is_none() {
                    base = Some(secs(t)); // sequential @ 1 run
                }
                points.push((n_runs.to_string(), secs(t)));
            }
            series.push(Series {
                label: format!("{} query", qdist.label()),
                points,
            });
        }
        print_figure(
            &format!(
                "Figure {fig}b: lookup time vs #runs ({} ingestion)",
                ingest.label()
            ),
            "#index runs",
            &series,
            base.expect("base"),
        );
    }

    // Panel (c): range scans (priority-queue reconciliation, §8.3.2) vs
    // range size, 20 runs over the scan workload.
    {
        let n_runs = 20;
        let mut series = Vec::new();
        let mut base = None;
        for qdist in [KeyDist::Sequential, KeyDist::Random] {
            let idx = bench_index(IndexPreset::I1, &format!("f{fig}c-{}", qdist.label()));
            let total = ingest_runs(&idx, IndexPreset::I1, ingest, n_runs, per_run, true, 7);
            let mut starts = KeyGen::new(qdist, total, 99);
            let mut points = Vec::new();
            for &range in &scale.scan_ranges() {
                let t = median_time(3, || {
                    let start = starts.query_batch(1, total.saturating_sub(range).max(1))[0];
                    let (dt, _) = scan_range(
                        &idx,
                        start,
                        range,
                        u64::MAX,
                        ReconcileStrategy::PriorityQueue,
                    );
                    dt
                });
                if base.is_none() {
                    base = Some(secs(t)); // sequential @ range 1
                }
                points.push((range.to_string(), secs(t)));
            }
            series.push(Series {
                label: format!("{} query", qdist.label()),
                points,
            });
        }
        print_figure(
            &format!(
                "Figure {fig}c: scan time vs range size ({} ingestion)",
                ingest.label()
            ),
            "scan range",
            &series,
            base.expect("base"),
        );
    }
}

fn windows_series(label: &str, outcome: &[f64]) -> Series {
    Series {
        label: label.to_owned(),
        points: outcome
            .iter()
            .enumerate()
            .map(|(i, &v)| (i.to_string(), if v.is_nan() { 0.0 } else { v }))
            .collect(),
    }
}

fn first_finite(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .find(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(1.0)
}

/// Figure 12: lookup latency over time with varying concurrent readers.
pub fn fig12(scale: Scale) {
    let readers: Vec<usize> = match scale {
        Scale::Quick => vec![1, 2, 4, 8],
        Scale::Full => vec![1, 4, 16, 28, 40, 52],
    };
    let mut series = Vec::new();
    let mut base = None;
    for &r in &readers {
        let outcome = run_e2e(&E2eConfig {
            seconds: scale.e2e_seconds(),
            rate: scale.e2e_rate(),
            readers: r,
            ..E2eConfig::default()
        });
        if base.is_none() {
            base = Some(first_finite(&outcome.window_latency));
        }
        series.push(windows_series(
            &format!("{r} readers"),
            &outcome.window_latency,
        ));
    }
    print_figure(
        "Figure 12: lookup latency under concurrent readers (lock-free reads ⇒ flat)",
        "time (windows)",
        &series,
        base.expect("base"),
    );
}

/// Figure 13: varying update percentage p.
pub fn fig13(scale: Scale) {
    let ps = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut series = Vec::new();
    let mut base = None;
    for &p in &ps {
        let outcome = run_e2e(&E2eConfig {
            seconds: scale.e2e_seconds(),
            rate: scale.e2e_rate(),
            p_update: p,
            readers: 2,
            ..E2eConfig::default()
        });
        if base.is_none() {
            base = Some(first_finite(&outcome.window_latency));
        }
        series.push(windows_series(
            &format!("{}%", (p * 100.0) as u32),
            &outcome.window_latency,
        ));
    }
    print_figure(
        "Figure 13: lookup latency vs update rate (limited impact)",
        "time (windows)",
        &series,
        base.expect("base"),
    );
}

/// Figure 14: impact of purged runs (SSD cache) with a realistic latency gap
/// between the SSD tier and shared storage.
pub fn fig14(scale: Scale) {
    let latency = Some((
        TierLatency::micros(50, 1),     // SSD ≈ 50 µs + 1 µs/KiB
        TierLatency::micros(2_000, 20), // shared ≈ 2 ms + 20 µs/KiB
    ));
    let mut series = Vec::new();
    let mut base = None;
    for purge in [PurgeMode::None, PurgeMode::Half, PurgeMode::All] {
        let outcome = run_e2e(&E2eConfig {
            seconds: scale.e2e_seconds(),
            rate: scale.e2e_rate() / 4, // latency-bound run: lighter ingest
            readers: 1,
            purge,
            latency,
            ..E2eConfig::default()
        });
        if base.is_none() {
            base = Some(first_finite(&outcome.window_latency)); // "none" at t0
        }
        series.push(windows_series(purge.label(), &outcome.window_latency));
    }
    print_figure(
        "Figure 14: lookup latency vs purge level (SSD cache matters)",
        "time (windows)",
        &series,
        base.expect("base"),
    );
}

/// Figure 15: impact of index evolve (post-groomer on/off).
pub fn fig15(scale: Scale) {
    let mut series = Vec::new();
    let mut base = None;
    for post_groom in [true, false] {
        let outcome = run_e2e(&E2eConfig {
            seconds: scale.e2e_seconds(),
            rate: scale.e2e_rate(),
            readers: 2,
            post_groom,
            post_groom_every: Duration::from_secs(3),
            ..E2eConfig::default()
        });
        if base.is_none() {
            base = Some(first_finite(&outcome.window_latency)); // post-groom on, t0
        }
        series.push(windows_series(
            if post_groom {
                "post-groom"
            } else {
                "no post-groom"
            },
            &outcome.window_latency,
        ));
    }
    print_figure(
        "Figure 15: lookup latency with/without index evolve",
        "time (windows)",
        &series,
        base.expect("base"),
    );
}
