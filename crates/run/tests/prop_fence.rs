//! Property test: the fence-index search must be byte-for-byte equivalent
//! to the brute-force per-entry binary search — across random runs, random
//! targets, every offset-array bucket, and both fence sources (persisted in
//! the header, and lazily reconstructed for pre-fence runs).

use std::sync::Arc;

use proptest::prelude::*;
use umzi_encoding::{hash_prefix, ColumnType, Datum, IndexDef};
use umzi_run::{
    IndexEntry, KeyLayout, Rid, Run, RunBuilder, RunParams, RunSearcher, SortBound, ZoneId,
};
use umzi_storage::{Durability, SharedStorage, TieredConfig, TieredStorage};

fn layout() -> KeyLayout {
    let def = IndexDef::builder("fence")
        .equality("d", ColumnType::Int64)
        .sort("m", ColumnType::Int64)
        .build()
        .unwrap();
    KeyLayout::new(Arc::new(def))
}

/// Small chunks so even modest runs span many data blocks.
fn storage() -> Arc<TieredStorage> {
    Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            chunk_size: 512,
            ..TieredConfig::default()
        },
    ))
}

fn build_run(
    storage: &Arc<TieredStorage>,
    rows: &[(i64, i64, u64)],
    offset_bits: u8,
    name: &str,
) -> Run {
    let l = layout();
    let mut entries: Vec<IndexEntry> = rows
        .iter()
        .enumerate()
        .map(|(i, &(d, m, ts))| {
            IndexEntry::new(
                &l,
                &[Datum::Int64(d)],
                &[Datum::Int64(m)],
                ts,
                Rid::new(ZoneId::GROOMED, i as u64, 0),
                &[],
            )
            .unwrap()
        })
        .collect();
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    let mut b = RunBuilder::new(
        l,
        RunParams {
            run_id: 1,
            zone: ZoneId::GROOMED,
            level: 0,
            groomed_lo: 0,
            groomed_hi: 0,
            psn: 0,
            offset_bits,
            ancestors: vec![],
        },
        storage.chunk_size(),
    );
    for e in &entries {
        b.push(e).unwrap();
    }
    b.finish(storage, name, Durability::Persisted, true)
        .unwrap()
}

/// Rewrite `run`'s object with the fence section stripped from the header —
/// a byte-faithful stand-in for a run built before the fence index existed,
/// forcing the reader down the lazy-reconstruction path.
fn strip_fences(storage: &Arc<TieredStorage>, run: &Run, name: &str) -> Run {
    let mut header = run.header().clone();
    header.fence_keys = Vec::new();
    let chunk = storage.chunk_size();
    let mut object = header.serialize(chunk);
    let new_header_chunks = (object.len() / chunk) as u32;
    for b in 0..run.data_block_count() {
        let data = storage
            .read_chunk(run.handle(), run.header().header_chunks + b)
            .unwrap();
        object.extend_from_slice(&data);
        // Blocks are chunk-sized except possibly the last.
        if data.len() < chunk && b + 1 < run.data_block_count() {
            panic!("only the last block may be short");
        }
    }
    storage
        .create_object(
            name,
            object.into(),
            Durability::Persisted,
            new_header_chunks,
            true,
        )
        .unwrap();
    let reopened = Run::open(Arc::clone(storage), name, run.layout().clone()).unwrap();
    assert!(
        reopened.header().fence_keys.is_empty(),
        "legacy run must have no stored fences"
    );
    reopened
}

/// Targets worth probing: exact entry keys, query-range bounds, and
/// neighbors on both sides of every block boundary.
fn targets(run: &Run, device: i64, msg: i64) -> Vec<Vec<u8>> {
    let l = layout();
    let mut out = Vec::new();
    let (lower, upper) = l
        .query_range(
            &[Datum::Int64(device)],
            &SortBound::Included(vec![Datum::Int64(msg)]),
            &SortBound::Included(vec![Datum::Int64(msg)]),
        )
        .unwrap();
    out.push(lower);
    if let Some(u) = upper {
        out.push(u);
    }
    // An existing key, a mutation just below and above it.
    if run.entry_count() > 0 {
        let ord = (device.unsigned_abs().wrapping_mul(31) ^ msg.unsigned_abs()) % run.entry_count();
        let key = run.entry(ord).unwrap().key.to_vec();
        let mut below = key.clone();
        if let Some(last) = below.last_mut() {
            *last = last.wrapping_sub(1);
        }
        let mut above = key.clone();
        above.push(0xFF);
        out.push(key);
        out.push(below);
        out.push(above);
    }
    out.push(vec![]); // below everything
    out.push(vec![0xFF; 24]); // above everything
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fence_search_equals_bruteforce(
        rows in proptest::collection::vec((0i64..6, -8i64..12, 1u64..40), 0..160),
        device in 0i64..6,
        msg in -9i64..13,
        offset_bits in 0u8..5,
    ) {
        let storage = storage();
        let run = build_run(&storage, &rows, offset_bits, "runs/fprop");
        let legacy = strip_fences(&storage, &run, "runs/fprop-legacy");

        for r in [&run, &legacy] {
            let searcher = RunSearcher::new(r);
            let l = layout();
            for target in targets(r, device, msg) {
                // Every bucket, plus no bucket: the narrowed result must
                // match the brute force probe-by-probe search exactly.
                let mut buckets: Vec<Option<u32>> = vec![None];
                if offset_bits > 0 {
                    buckets.extend((0..(1u32 << offset_bits)).map(Some));
                    let h = l.hash_equality(&[Datum::Int64(device)]).unwrap();
                    buckets.push(Some(hash_prefix(h, offset_bits)));
                }
                for bucket in buckets {
                    let fast = searcher.find_first_geq(&target, bucket).unwrap();
                    let slow = searcher.find_first_geq_scalar(&target, bucket).unwrap();
                    prop_assert_eq!(
                        fast, slow,
                        "target {:?} bucket {:?} legacy={}",
                        target, bucket, r.header().fence_keys.is_empty()
                    );
                }
            }
        }
    }

    #[test]
    fn persisted_and_lazy_fences_agree(
        rows in proptest::collection::vec((0i64..4, -4i64..8, 1u64..30), 1..120),
    ) {
        let storage = storage();
        let run = build_run(&storage, &rows, 3, "runs/fagree");
        let legacy = strip_fences(&storage, &run, "runs/fagree-legacy");
        let persisted = run.fence_keys().unwrap().to_vec();
        let lazy = legacy.fence_keys().unwrap().to_vec();
        prop_assert_eq!(persisted, lazy);
    }
}
