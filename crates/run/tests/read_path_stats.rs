//! Read-path cost accounting: the fence index must cut the block reads a
//! point lookup performs by ≥ 4× versus the pre-fence per-entry binary
//! search, observed through the storage layer's `chunk_reads` counter.

use std::sync::Arc;

use umzi_encoding::{ColumnType, Datum, IndexDef};
use umzi_run::{IndexEntry, KeyLayout, Rid, RunBuilder, RunParams, RunSearcher, ZoneId};
use umzi_storage::{DecodedCacheConfig, Durability, SharedStorage, TieredConfig, TieredStorage};

fn layout() -> KeyLayout {
    let def = IndexDef::builder("stats")
        .equality("d", ColumnType::Int64)
        .sort("m", ColumnType::Int64)
        .build()
        .unwrap();
    KeyLayout::new(Arc::new(def))
}

/// A storage hierarchy with the decoded-block cache disabled, so every
/// `data_block` call is a real `read_chunk` — isolating what the fence
/// index alone saves.
fn storage_no_decoded_cache() -> Arc<TieredStorage> {
    Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            chunk_size: 1024,
            decoded_cache: DecodedCacheConfig {
                capacity_bytes: 0,
                ..DecodedCacheConfig::default()
            },
            ..TieredConfig::default()
        },
    ))
}

fn build_multi_block_run(storage: &Arc<TieredStorage>, n: i64) -> umzi_run::Run {
    build_run_with_id(storage, n, 1)
}

fn build_run_with_id(storage: &Arc<TieredStorage>, n: i64, run_id: u64) -> umzi_run::Run {
    let l = layout();
    let mut entries: Vec<IndexEntry> = (0..n)
        .map(|i| {
            IndexEntry::new(
                &l,
                &[Datum::Int64(i % 8)],
                &[Datum::Int64(i)],
                100 + i as u64,
                Rid::new(ZoneId::GROOMED, i as u64, 0),
                &[],
            )
            .unwrap()
        })
        .collect();
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    let mut b = RunBuilder::new(
        l,
        RunParams {
            run_id,
            zone: ZoneId::GROOMED,
            level: 0,
            groomed_lo: 0,
            groomed_hi: 0,
            psn: 0,
            offset_bits: 0, // whole-run binary search: the worst case
            ancestors: vec![],
        },
        storage.chunk_size(),
    );
    for e in &entries {
        b.push(e).unwrap();
    }
    b.finish(
        storage,
        &format!("runs/stats{run_id}"),
        Durability::Persisted,
        true,
    )
    .unwrap()
}

#[test]
fn fence_lookup_reads_4x_fewer_blocks_than_scalar() {
    let storage = storage_no_decoded_cache();
    let run = build_multi_block_run(&storage, 4000);
    assert!(
        run.data_block_count() >= 16,
        "need a multi-block run, got {} blocks",
        run.data_block_count()
    );

    let l = layout();
    let searcher = RunSearcher::new(&run);
    let target = {
        let mut p = l.equality_prefix(&[Datum::Int64(3)]).unwrap();
        umzi_encoding::encode_datum(&Datum::Int64(1999), &mut p);
        p
    };

    // Warm nothing block-specific; fences are persisted in the header.
    let probes = 32;
    let before = storage.stats().chunk_reads;
    for _ in 0..probes {
        searcher.find_first_geq(&target, None).unwrap();
    }
    let fence_reads = storage.stats().chunk_reads - before;

    let before = storage.stats().chunk_reads;
    for _ in 0..probes {
        searcher.find_first_geq_scalar(&target, None).unwrap();
    }
    let scalar_reads = storage.stats().chunk_reads - before;

    assert_eq!(
        fence_reads, probes,
        "fence search must read exactly one block per lookup"
    );
    assert!(
        scalar_reads >= 4 * fence_reads,
        "expected ≥4x fewer block reads: fence={fence_reads} scalar={scalar_reads}"
    );
}

#[test]
fn bounded_scan_touches_only_spanned_blocks() {
    // The fence-aware iterator resolves both bounds to ordinals up front,
    // so a narrow bounded scan reads only the blocks the range spans plus
    // the two positioning probes — never a trailing block just to discover
    // the upper bound was passed.
    let storage = storage_no_decoded_cache();
    let run = build_multi_block_run(&storage, 4000);
    let entries_per_block = 4000 / run.data_block_count() as i64;
    let l = layout();
    let searcher = RunSearcher::new(&run);

    // Keys sort as (d, m); device 3 holds every msg with m % 8 == 3, as a
    // contiguous ordinal range. Scan a window holding about half a block's
    // worth of its entries.
    let key_of = |m: i64| {
        let mut p = l.equality_prefix(&[Datum::Int64(3)]).unwrap();
        umzi_encoding::encode_datum(&Datum::Int64(m), &mut p);
        p
    };
    let width = (entries_per_block / 2).max(1) * 8; // msg span ⇒ width/8 entries
    let (lo_m, hi_m) = (200, 200 + width);
    let expected = (lo_m..hi_m).filter(|m| m % 8 == 3).count();
    let (lower, upper) = (key_of(lo_m), key_of(hi_m));

    let before = storage.stats().chunk_reads;
    let hits: Vec<_> = searcher
        .scan(&lower, Some(&upper), None, u64::MAX)
        .unwrap()
        .collect::<umzi_run::Result<Vec<_>>>()
        .unwrap();
    let reads = storage.stats().chunk_reads - before;

    assert_eq!(hits.len(), expected, "every key in range, exactly once");
    // Two positioning reads (lower + upper fence jumps) plus at most the
    // two blocks a half-block window can straddle.
    assert!(
        reads <= 4,
        "bounded half-block scan must not sweep blocks: {reads} reads"
    );

    // An empty range costs only the positioning probes, not a discarded
    // data fetch.
    let before = storage.stats().chunk_reads;
    let n = searcher
        .scan(&key_of(401), Some(&key_of(401)), None, u64::MAX)
        .unwrap()
        .count();
    let reads = storage.stats().chunk_reads - before;
    assert_eq!(n, 0);
    assert!(reads <= 2, "empty range read {reads} blocks");
}

#[test]
fn decoded_cache_eliminates_repeat_reads() {
    // With the decoded cache on (default config), repeated probes of the
    // same key stop issuing chunk reads entirely after the first.
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            chunk_size: 1024,
            ..TieredConfig::default()
        },
    ));
    let run = build_multi_block_run(&storage, 4000);
    let l = layout();
    let searcher = RunSearcher::new(&run);
    let target = {
        let mut p = l.equality_prefix(&[Datum::Int64(5)]).unwrap();
        umzi_encoding::encode_datum(&Datum::Int64(777), &mut p);
        p
    };

    searcher.find_first_geq(&target, None).unwrap(); // populate
    let before = storage.stats().chunk_reads;
    for _ in 0..100 {
        searcher.find_first_geq(&target, None).unwrap();
    }
    assert_eq!(
        storage.stats().chunk_reads,
        before,
        "all repeat probes served decoded"
    );
    let d = storage.stats().decoded;
    assert!(d.hits >= 100, "decoded-cache hits must be counted: {d:?}");
    assert!(d.hit_ratio().unwrap() > 0.9);
}

#[test]
fn large_scan_stops_inserting_past_bypass_threshold() {
    // A scan that streams more than `scan_bypass_bytes` obviously exceeds
    // the cache; its tail must be fetched as never-admitted traffic instead
    // of churning the probation segment.
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            chunk_size: 1024,
            decoded_cache: DecodedCacheConfig {
                capacity_bytes: 1 << 20,
                shards: 1,
                scan_bypass_bytes: 4096, // ~4 blocks
                ..DecodedCacheConfig::default()
            },
            ..TieredConfig::default()
        },
    ));
    let run = build_multi_block_run(&storage, 4000);
    assert!(run.data_block_count() >= 16);

    let searcher = RunSearcher::new(&run);
    let n = searcher
        .scan(&[], None, None, u64::MAX)
        .unwrap()
        .collect::<umzi_run::Result<Vec<_>>>()
        .unwrap()
        .len();
    assert_eq!(n as i64, 4000);

    let d = storage.stats().decoded;
    assert!(
        d.insertions <= 6,
        "only the pre-threshold prefix may be cached: {d:?}"
    );
    assert!(
        d.bypassed_inserts as u32 >= run.data_block_count() - 6,
        "the scan tail must bypass insertion: {d:?}"
    );
    // The bypassed tail is still *scan* traffic: it must not leak into the
    // maintenance pattern counters.
    assert!(d.scan.misses as u32 >= run.data_block_count());
    assert_eq!(d.maintenance.hits + d.maintenance.misses, 0);
}

#[test]
fn partitioned_scan_shares_one_bypass_budget() {
    // sub_range pieces of one scan must draw on a single scan_bypass_bytes
    // budget — otherwise an N-way partitioned scan gets N× the insert
    // allowance and churns probation exactly as if the knob were off.
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            chunk_size: 1024,
            decoded_cache: DecodedCacheConfig {
                capacity_bytes: 1 << 20,
                shards: 1,
                scan_bypass_bytes: 4096, // ~4 blocks
                ..DecodedCacheConfig::default()
            },
            ..TieredConfig::default()
        },
    ));
    let run = build_multi_block_run(&storage, 4000);
    let searcher = RunSearcher::new(&run);
    let it = searcher.scan(&[], None, None, u64::MAX).unwrap();
    let (lo, hi) = it.ordinal_bounds();
    // Every logical key is single-version here, so any ordinal is a valid
    // group boundary for the cut.
    let cuts = [
        lo,
        lo + (hi - lo) / 4,
        lo + (hi - lo) / 2,
        lo + 3 * (hi - lo) / 4,
        hi,
    ];
    let mut n = 0usize;
    for w in cuts.windows(2) {
        n += it
            .sub_range(w[0], w[1])
            .collect::<umzi_run::Result<Vec<_>>>()
            .unwrap()
            .len();
    }
    assert_eq!(n as i64, 4000);
    let d = storage.stats().decoded;
    // One shared budget: the pre-threshold prefix plus one boundary block
    // per cut (a piece may re-fetch the block its range starts in).
    assert!(
        d.insertions <= 6 + (cuts.len() - 1) as u64,
        "partitions must not each get a fresh bypass budget: {d:?}"
    );
    assert!(d.bypassed_inserts as u32 >= run.data_block_count() - 10);
}

#[test]
fn multi_run_scan_shares_one_bypass_budget() {
    // A query over R runs must spend one scan_bypass_bytes budget across
    // all of its per-run iterators — a fresh budget per run would churn R×
    // the configured allowance through probation before bypass engages.
    // Two identical storage+run setups isolate the comparison: cold caches
    // on both sides, per-run budgets on one, a shared budget on the other.
    use std::sync::atomic::AtomicU64;

    use umzi_run::AccessPattern;

    let fresh_storage = || {
        Arc::new(TieredStorage::new(
            SharedStorage::in_memory(),
            TieredConfig {
                chunk_size: 1024,
                decoded_cache: DecodedCacheConfig {
                    capacity_bytes: 1 << 20,
                    shards: 1,
                    scan_bypass_bytes: 4096, // ~4 blocks
                    ..DecodedCacheConfig::default()
                },
                ..TieredConfig::default()
            },
        ))
    };

    // Per-run budgets (the old behaviour): each run caches its own prefix.
    let storage = fresh_storage();
    let runs: Vec<_> = (1..=3)
        .map(|id| build_run_with_id(&storage, 4000, id))
        .collect();
    let mut n = 0usize;
    for run in &runs {
        n += RunSearcher::new(run)
            .scan(&[], None, None, u64::MAX)
            .unwrap()
            .collect::<umzi_run::Result<Vec<_>>>()
            .unwrap()
            .len();
    }
    assert_eq!(n as i64, 3 * 4000);
    let per_run = storage.stats().decoded.insertions;
    assert!(
        per_run >= 12,
        "independent budgets should cache ~3 prefixes: {per_run}"
    );

    // Shared budget: the three iterators draw on one counter, so only the
    // first ~budget bytes of the whole query are admitted.
    let storage = fresh_storage();
    let runs: Vec<_> = (1..=3)
        .map(|id| build_run_with_id(&storage, 4000, id))
        .collect();
    let total_blocks: u32 = runs.iter().map(|r| r.data_block_count()).sum();
    let budget = Arc::new(AtomicU64::new(0));
    let mut n = 0usize;
    for run in &runs {
        n += RunSearcher::new(run)
            .scan_shared_with_budget(
                &[],
                None,
                None,
                u64::MAX,
                AccessPattern::RangeScan,
                Some(Arc::clone(&budget)),
            )
            .unwrap()
            .collect::<umzi_run::Result<Vec<_>>>()
            .unwrap()
            .len();
    }
    assert_eq!(n as i64, 3 * 4000);
    let d = storage.stats().decoded;
    assert!(
        d.insertions <= 6,
        "one budget across runs: expected ≤6 insertions, got {}",
        d.insertions
    );
    assert!(
        d.insertions < per_run / 2,
        "shared budget must admit far less than per-run budgets: {} vs {per_run}",
        d.insertions
    );
    assert!(d.bypassed_inserts as u32 >= total_blocks - 12);
}
