//! Property-based tests of the run format: build → search must agree with a
//! naive in-memory oracle for arbitrary entry sets, bounds and snapshots.

use std::sync::Arc;

use proptest::prelude::*;
use umzi_encoding::{hash_prefix, ColumnType, Datum, IndexDef};
use umzi_run::{
    IndexEntry, KeyLayout, Rid, Run, RunBuilder, RunParams, RunSearcher, SortBound, ZoneId,
};
use umzi_storage::{Durability, PrefetchConfig, SharedStorage, TieredConfig, TieredStorage};

fn layout() -> KeyLayout {
    let def = IndexDef::builder("prop")
        .equality("d", ColumnType::Int64)
        .sort("m", ColumnType::Int64)
        .build()
        .unwrap();
    KeyLayout::new(Arc::new(def))
}

fn build_run(rows: &[(i64, i64, u64)], offset_bits: u8) -> (Arc<TieredStorage>, Run) {
    let storage = Arc::new(TieredStorage::in_memory());
    let l = layout();
    let mut entries: Vec<IndexEntry> = rows
        .iter()
        .enumerate()
        .map(|(i, &(d, m, ts))| {
            IndexEntry::new(
                &l,
                &[Datum::Int64(d)],
                &[Datum::Int64(m)],
                ts,
                Rid::new(ZoneId::GROOMED, i as u64, 0),
                &[],
            )
            .unwrap()
        })
        .collect();
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    let mut b = RunBuilder::new(
        l,
        RunParams {
            run_id: 1,
            zone: ZoneId::GROOMED,
            level: 0,
            groomed_lo: 0,
            groomed_hi: 0,
            psn: 0,
            offset_bits,
            ancestors: vec![],
        },
        storage.chunk_size(),
    );
    for e in &entries {
        b.push(e).unwrap();
    }
    let run = b
        .finish(&storage, "runs/prop", Durability::Persisted, true)
        .unwrap();
    (storage, run)
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u64)>> {
    proptest::collection::vec((0i64..6, -5i64..10, 1u64..40), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-run scan ≡ oracle: per logical key, the newest version with
    /// beginTS ≤ queryTS inside the bounds.
    #[test]
    fn scan_equals_oracle(
        rows in arb_rows(),
        device in 0i64..6,
        lo in -6i64..11,
        len in 0i64..8,
        query_ts in 0u64..45,
        offset_bits in 0u8..6,
    ) {
        let hi = lo + len;
        let (_storage, run) = build_run(&rows, offset_bits);
        let l = layout();

        let (lower, upper) = l
            .query_range(
                &[Datum::Int64(device)],
                &SortBound::Included(vec![Datum::Int64(lo)]),
                &SortBound::Included(vec![Datum::Int64(hi)]),
            )
            .unwrap();
        let bucket = (offset_bits > 0).then(|| {
            hash_prefix(l.hash_equality(&[Datum::Int64(device)]).unwrap(), offset_bits)
        });
        let searcher = RunSearcher::new(&run);
        let got: Vec<(i64, u64)> = searcher
            .scan(&lower, upper.as_deref(), bucket, query_ts)
            .unwrap()
            .map(|r| {
                let hit = r.unwrap();
                let cols = l.decode_key_columns(&hit.key).unwrap();
                (cols[1].as_i64().unwrap(), hit.begin_ts)
            })
            .collect();

        // Oracle.
        let mut best: std::collections::BTreeMap<i64, u64> = Default::default();
        for &(d, m, ts) in &rows {
            if d == device && (lo..=hi).contains(&m) && ts <= query_ts {
                let e = best.entry(m).or_insert(0);
                *e = (*e).max(ts);
            }
        }
        let expect: Vec<(i64, u64)> = best.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    /// Point lookups agree with the oracle for present and absent keys.
    #[test]
    fn lookup_equals_oracle(
        rows in arb_rows(),
        device in 0i64..7,
        msg in -6i64..11,
        query_ts in 0u64..45,
    ) {
        let (_storage, run) = build_run(&rows, 4);
        let l = layout();
        let mut prefix = l.equality_prefix(&[Datum::Int64(device)]).unwrap();
        umzi_encoding::encode_datum(&Datum::Int64(msg), &mut prefix);
        let bucket = Some(hash_prefix(
            l.hash_equality(&[Datum::Int64(device)]).unwrap(),
            run.header().offset_bits,
        ));
        let got = RunSearcher::new(&run)
            .lookup(&prefix, bucket, query_ts)
            .unwrap()
            .map(|h| h.begin_ts);

        let expect = rows
            .iter()
            .filter(|&&(d, m, ts)| d == device && m == msg && ts <= query_ts)
            .map(|&(_, _, ts)| ts)
            .max();
        prop_assert_eq!(got, expect);
    }

    /// Reopening a run from storage yields a byte-identical header, and the
    /// offset array always brackets every entry.
    #[test]
    fn reopen_and_offset_array_invariants(rows in arb_rows(), offset_bits in 1u8..8) {
        let (storage, run) = build_run(&rows, offset_bits);
        let l = layout();
        let reopened = Run::open(storage, "runs/prop", l.clone()).unwrap();
        prop_assert_eq!(reopened.header(), run.header());

        let oa = &run.header().offset_array;
        prop_assert_eq!(oa.len(), 1usize << offset_bits);
        prop_assert!(oa.windows(2).all(|w| w[0] <= w[1]));
        for ord in 0..run.entry_count() {
            let e = run.entry(ord).unwrap();
            let bucket = l.bucket_of(&e.key, offset_bits).unwrap();
            let (lo, hi) = run.bucket_range(Some(bucket));
            prop_assert!((lo..hi).contains(&ord));
        }
    }

    /// Pipelined readahead is invisible in results: a cold scan with ANY
    /// prefetch depth (including 0 = off) is byte-for-byte the depth-0 scan
    /// over the same run, and a positive depth on a cold multi-block scan
    /// actually stages blocks.
    #[test]
    fn prefetch_scan_equals_depth_zero(
        rows in proptest::collection::vec((0i64..3, -20i64..40, 1u64..40), 1..300),
        depth in 0usize..=9,
        device in 0i64..3,
        lo in -21i64..41,
        len in 0i64..40,
        query_ts in 0u64..45,
    ) {
        let hi = lo + len;
        // Small chunks force multi-block runs so readahead has work to do.
        let storage = Arc::new(TieredStorage::new(
            SharedStorage::in_memory(),
            TieredConfig {
                chunk_size: 256,
                ..TieredConfig::default()
            },
        ));
        let l = layout();
        let mut entries: Vec<IndexEntry> = rows
            .iter()
            .enumerate()
            .map(|(i, &(d, m, ts))| {
                IndexEntry::new(
                    &l,
                    &[Datum::Int64(d)],
                    &[Datum::Int64(m)],
                    ts,
                    Rid::new(ZoneId::GROOMED, i as u64, 0),
                    &[],
                )
                .unwrap()
            })
            .collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut b = RunBuilder::new(
            l.clone(),
            RunParams {
                run_id: 1,
                zone: ZoneId::GROOMED,
                level: 0,
                groomed_lo: 0,
                groomed_hi: 0,
                psn: 0,
                offset_bits: 0,
                ancestors: vec![],
            },
            storage.chunk_size(),
        );
        for e in &entries {
            b.push(e).unwrap();
        }
        let run = b
            .finish(&storage, "runs/prefetch", Durability::Persisted, true)
            .unwrap();

        let (lower, upper) = l
            .query_range(
                &[Datum::Int64(device)],
                &SortBound::Included(vec![Datum::Int64(lo)]),
                &SortBound::Included(vec![Datum::Int64(hi)]),
            )
            .unwrap();
        let cold_scan = |d: usize| -> Vec<(Vec<u8>, Vec<u8>, u64)> {
            storage.set_prefetch_config(PrefetchConfig {
                depth: d,
                ..PrefetchConfig::default()
            });
            storage.purge_object(run.handle()).unwrap();
            storage.decoded_cache().clear();
            RunSearcher::new(&run)
                .scan(&lower, upper.as_deref(), None, query_ts)
                .unwrap()
                .map(|r| {
                    let h = r.unwrap();
                    (h.key.to_vec(), h.value.to_vec(), h.begin_ts)
                })
                .collect()
        };
        let baseline = cold_scan(0);
        let staged0 = storage.stats().blocks_prefetched;
        let with_readahead = cold_scan(depth);
        prop_assert_eq!(&with_readahead, &baseline, "depth {} diverged", depth);
        // A configured depth on a scan spanning several blocks must have
        // actually staged something: ≥ 30 result rows at 256-byte chunks
        // means the scanned range covers several data blocks, so at least
        // one readahead trigger fires inside it.
        if depth > 0 && baseline.len() >= 30 {
            prop_assert!(
                storage.stats().blocks_prefetched > staged0,
                "multi-block cold scan at depth {} staged nothing",
                depth
            );
        }
    }

    /// The synopsis never prunes a run that holds a matching entry.
    #[test]
    fn synopsis_is_sound(
        rows in arb_rows(),
        device in 0i64..6,
        lo in -6i64..11,
        len in 0i64..8,
        query_ts in 0u64..45,
    ) {
        let hi = lo + len;
        let (_storage, run) = build_run(&rows, 4);
        let has_match = rows
            .iter()
            .any(|&(d, m, ts)| d == device && (lo..=hi).contains(&m) && ts <= query_ts);
        if has_match {
            let eq = umzi_run::synopsis::encode_eq_values(&[Datum::Int64(device)]);
            prop_assert!(run.header().synopsis.may_match(
                &eq,
                &SortBound::Included(vec![Datum::Int64(lo)]),
                &SortBound::Included(vec![Datum::Int64(hi)]),
                query_ts,
            ));
        }
    }
}
