//! Per-run synopses for query-time run pruning.
//!
//! §4.2: *"The synopsis contains the range (min/max values) of each key
//! column stored in this run. A run can be skipped by an index query if the
//! input value of some key column does not overlap with the range specified
//! by the synopsis."*
//!
//! Ranges are kept over the *order-preserving encodings* of each key column,
//! so overlap checks are byte comparisons. A `beginTS` range is also kept:
//! a run whose minimum `beginTS` exceeds the query timestamp contains only
//! invisible versions and is skipped (multi-version pruning).

use umzi_encoding::{encode_datum, Datum};

use crate::key::SortBound;

/// Min/max of one key column, over encoded bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRange {
    /// Smallest encoded value present.
    pub min: Vec<u8>,
    /// Largest encoded value present.
    pub max: Vec<u8>,
}

/// A run synopsis: one [`ColumnRange`] per key column (equality columns
/// first, then sort columns), plus the `beginTS` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Synopsis {
    columns: Vec<ColumnRange>,
    min_begin_ts: u64,
    max_begin_ts: u64,
    entry_count: u64,
}

impl Synopsis {
    /// An empty synopsis for an index with `n_key_columns` key columns.
    pub fn empty(n_key_columns: usize) -> Self {
        Self {
            columns: vec![
                ColumnRange {
                    min: Vec::new(),
                    max: Vec::new()
                };
                n_key_columns
            ],
            min_begin_ts: u64::MAX,
            max_begin_ts: 0,
            entry_count: 0,
        }
    }

    /// Reassemble from persisted parts.
    pub fn from_parts(
        columns: Vec<ColumnRange>,
        min_begin_ts: u64,
        max_begin_ts: u64,
        entry_count: u64,
    ) -> Self {
        Self {
            columns,
            min_begin_ts,
            max_begin_ts,
            entry_count,
        }
    }

    /// Fold one entry's per-column encoded values and timestamp into the
    /// synopsis. `column_values[i]` is the encoded bytes of key column `i`.
    pub fn observe(&mut self, column_values: &[&[u8]], begin_ts: u64) {
        debug_assert_eq!(column_values.len(), self.columns.len());
        for (range, &val) in self.columns.iter_mut().zip(column_values) {
            if self.entry_count == 0 || val < range.min.as_slice() {
                range.min = val.to_vec();
            }
            if self.entry_count == 0 || val > range.max.as_slice() {
                range.max = val.to_vec();
            }
        }
        self.min_begin_ts = self.min_begin_ts.min(begin_ts);
        self.max_begin_ts = self.max_begin_ts.max(begin_ts);
        self.entry_count += 1;
    }

    /// Number of observed entries.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Smallest `beginTS` present.
    pub fn min_begin_ts(&self) -> u64 {
        self.min_begin_ts
    }

    /// Largest `beginTS` present.
    pub fn max_begin_ts(&self) -> u64 {
        self.max_begin_ts
    }

    /// Per-column ranges (encoded bytes).
    pub fn columns(&self) -> &[ColumnRange] {
        &self.columns
    }

    /// Whether a query with the given equality values, sort bounds (applied
    /// to the sort columns starting at `columns[n_eq]`) and timestamp might
    /// match this run. `false` means the run can safely be skipped.
    ///
    /// Checks are *sound, not complete*: each check may only reject runs
    /// that provably contain no match.
    pub fn may_match(
        &self,
        eq_encoded: &[Vec<u8>],
        lower: &SortBound,
        upper: &SortBound,
        query_ts: u64,
    ) -> bool {
        if self.entry_count == 0 {
            return false;
        }
        // All versions in this run were created after the snapshot.
        if self.min_begin_ts > query_ts {
            return false;
        }
        // Equality columns: the value must fall inside each column's range.
        for (i, val) in eq_encoded.iter().enumerate() {
            let range = &self.columns[i];
            if val.as_slice() < range.min.as_slice() || val.as_slice() > range.max.as_slice() {
                return false;
            }
        }
        // First sort column: the query's [lo, hi] interval must overlap the
        // run's [min, max]. Only position 0 is independently checkable for
        // tuple-ordered bounds.
        let n_eq = eq_encoded.len();
        if let Some(range) = self.columns.get(n_eq) {
            if let Some(lo0) = first_bound_encoded(lower) {
                // Excluded vs Included both reduce to: if the bound's first
                // datum already exceeds the run max, nothing can match.
                if lo0.as_slice() > range.max.as_slice() {
                    return false;
                }
            }
            if let Some(hi0) = first_bound_encoded(upper) {
                if hi0.as_slice() < range.min.as_slice() {
                    return false;
                }
            }
        }
        true
    }
}

impl Synopsis {
    /// Whether any key inside the per-column bounding box
    /// `[col_mins[i], col_maxs[i]]` might be present (batched lookups, §7.2:
    /// the synopsis is checked once per query batch, not per key). Sound:
    /// only rejects runs that provably contain no key of the box.
    pub fn may_match_box(&self, col_mins: &[Vec<u8>], col_maxs: &[Vec<u8>], query_ts: u64) -> bool {
        if self.entry_count == 0 || self.min_begin_ts > query_ts {
            return false;
        }
        for (i, range) in self.columns.iter().enumerate() {
            let (Some(lo), Some(hi)) = (col_mins.get(i), col_maxs.get(i)) else {
                break;
            };
            if hi.as_slice() < range.min.as_slice() || lo.as_slice() > range.max.as_slice() {
                return false;
            }
        }
        true
    }
}

/// Encode the first datum of a sort bound, if present.
fn first_bound_encoded(bound: &SortBound) -> Option<Vec<u8>> {
    let vals = bound.values()?;
    let first = vals.first()?;
    let mut out = Vec::with_capacity(9);
    encode_datum(first, &mut out);
    Some(out)
}

/// Encode equality values into the per-column byte form used by
/// [`Synopsis::may_match`].
pub fn encode_eq_values(values: &[Datum]) -> Vec<Vec<u8>> {
    values
        .iter()
        .map(|v| {
            let mut out = Vec::with_capacity(9);
            encode_datum(v, &mut out);
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(v: i64) -> Vec<u8> {
        let mut out = Vec::new();
        encode_datum(&Datum::Int64(v), &mut out);
        out
    }

    /// Build a synopsis over (device, msg) pairs with timestamps.
    fn build(entries: &[(i64, i64, u64)]) -> Synopsis {
        let mut s = Synopsis::empty(2);
        for &(d, m, ts) in entries {
            let dv = enc(d);
            let mv = enc(m);
            s.observe(&[&dv, &mv], ts);
        }
        s
    }

    #[test]
    fn tracks_min_max() {
        let s = build(&[(4, 10, 100), (8, 2, 97), (1, 5, 103)]);
        assert_eq!(s.entry_count(), 3);
        assert_eq!(s.min_begin_ts(), 97);
        assert_eq!(s.max_begin_ts(), 103);
        assert_eq!(s.columns()[0].min, enc(1));
        assert_eq!(s.columns()[0].max, enc(8));
        assert_eq!(s.columns()[1].min, enc(2));
        assert_eq!(s.columns()[1].max, enc(10));
    }

    #[test]
    fn equality_pruning() {
        let s = build(&[(4, 1, 10), (8, 1, 10)]);
        let hit =
            |d: i64| s.may_match(&[enc(d)], &SortBound::Unbounded, &SortBound::Unbounded, 100);
        assert!(hit(4));
        assert!(hit(6), "inside [4,8] — synopsis cannot disprove");
        assert!(!hit(3));
        assert!(!hit(9));
    }

    #[test]
    fn timestamp_pruning() {
        let s = build(&[(4, 1, 100), (4, 2, 200)]);
        let q = |ts: u64| s.may_match(&[enc(4)], &SortBound::Unbounded, &SortBound::Unbounded, ts);
        assert!(!q(99), "all versions newer than snapshot");
        assert!(q(100));
        assert!(q(500));
    }

    #[test]
    fn sort_range_pruning() {
        let s = build(&[(4, 10, 1), (4, 20, 1)]);
        let q = |lo: SortBound, hi: SortBound| s.may_match(&[enc(4)], &lo, &hi, 100);
        assert!(!q(
            SortBound::Included(vec![Datum::Int64(21)]),
            SortBound::Included(vec![Datum::Int64(30)])
        ));
        assert!(!q(
            SortBound::Included(vec![Datum::Int64(0)]),
            SortBound::Included(vec![Datum::Int64(9)])
        ));
        assert!(q(
            SortBound::Included(vec![Datum::Int64(15)]),
            SortBound::Included(vec![Datum::Int64(16)])
        ));
        assert!(q(SortBound::Unbounded, SortBound::Unbounded));
        // Touching the boundary still matches.
        assert!(q(
            SortBound::Included(vec![Datum::Int64(20)]),
            SortBound::Unbounded
        ));
    }

    #[test]
    fn empty_synopsis_never_matches() {
        let s = Synopsis::empty(2);
        assert!(!s.may_match(
            &[enc(4)],
            &SortBound::Unbounded,
            &SortBound::Unbounded,
            u64::MAX
        ));
    }
}
