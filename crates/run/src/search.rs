//! Searching a single run (§7.1.1).
//!
//! *"The query first locates the first matching key using binary search with
//! the concatenated lower bound ... If the offset array is available, the
//! initial search range can be narrowed down by computing the most
//! significant n bits of the hash value ... index entries are then iterated
//! until the concatenated upper bound is reached. During the iteration, we
//! further filter out entries failing the timestamp predicate beginTS ≤
//! queryTS. For the remaining entries, we simply return for each key the
//! entry with the largest beginTS, which is straightforward since entries
//! are sorted on the index key and descending order of beginTS."*

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use umzi_storage::AccessPattern;

use crate::entry::EntryRef;
use crate::key::KeyLayout;
use crate::reader::{DataBlock, Run};
use crate::rid::Rid;
use crate::Result;

/// One query result from a single run: the newest visible version of one
/// logical key within that run.
#[derive(Debug, Clone)]
pub struct SearchHit {
    /// Full entry key.
    pub key: Bytes,
    /// Entry value (`RID ∥ included`).
    pub value: Bytes,
    /// The version timestamp.
    pub begin_ts: u64,
}

impl SearchHit {
    /// The logical key (shared by all versions of one record).
    pub fn logical_key(&self) -> &[u8] {
        KeyLayout::logical_key(&self.key)
    }

    /// Decode the RID.
    pub fn rid(&self) -> Result<Rid> {
        Rid::decode(&self.value)
    }
}

/// Search operations over one opened run.
pub struct RunSearcher<'a> {
    run: &'a Run,
}

impl<'a> RunSearcher<'a> {
    /// Wrap a run.
    pub fn new(run: &'a Run) -> Self {
        Self { run }
    }

    /// Ordinal of the first entry whose key is ≥ `target`, within the
    /// offset-array bucket if a hint is given (the hint must be the bucket
    /// of the *query's hash value*; see [`Run::bucket_range`]). Returns
    /// `entry_count` when no such entry exists.
    ///
    /// Fast path: the run's in-memory fence index picks the single data
    /// block that can hold the answer, and the block's offset trailer is
    /// binary-searched in place — at most one block fetch, versus one per
    /// probe for [`Self::find_first_geq_scalar`]. Because the run is sorted
    /// on full keys, the bucket-narrowed answer is the global answer clamped
    /// into the bucket's ordinal range.
    pub fn find_first_geq(&self, target: &[u8], bucket: Option<u32>) -> Result<u64> {
        let (lo, hi) = self.run.bucket_range(bucket);
        Ok(self.run.locate_first_geq(target)?.clamp(lo, hi))
    }

    /// Reference implementation of [`Self::find_first_geq`]: binary search
    /// over entry ordinals, fetching a data block per probe. Kept for
    /// equivalence tests and as the "before" leg of read-path benchmarks.
    pub fn find_first_geq_scalar(&self, target: &[u8], bucket: Option<u32>) -> Result<u64> {
        let (mut lo, mut hi) = self.run.bucket_range(bucket);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let e = self.run.entry(mid)?;
            if e.key.as_ref() < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Stream the newest visible version of each logical key in
    /// `[lower, upper)` (byte bounds from [`KeyLayout::query_range`]),
    /// labelled as range-scan traffic for the decoded-block cache.
    pub fn scan(
        &self,
        lower: &[u8],
        upper: Option<&[u8]>,
        bucket: Option<u32>,
        query_ts: u64,
    ) -> Result<RunRangeIter<'a>> {
        self.scan_shared(
            lower,
            upper.map(Bytes::copy_from_slice),
            bucket,
            query_ts,
            AccessPattern::RangeScan,
        )
    }

    /// Like [`Self::scan`] but taking the upper bound as a refcounted
    /// [`Bytes`] — so multi-run queries share one allocation across all
    /// per-run iterators instead of copying the bound per run — and an
    /// explicit [`AccessPattern`] labelling every block fetch the iterator
    /// makes (positioning included) for the decoded cache's scan-resistant
    /// replacement.
    ///
    /// Both bounds resolve to *ordinals* up front through the fence index —
    /// one block fetch each — so iteration advances block-by-block with no
    /// per-entry `locate()` binary search and no per-entry upper-bound key
    /// comparison, and an empty range is detected without fetching any
    /// block beyond the positioning ones.
    pub fn scan_shared(
        &self,
        lower: &[u8],
        upper: Option<Bytes>,
        bucket: Option<u32>,
        query_ts: u64,
        pattern: AccessPattern,
    ) -> Result<RunRangeIter<'a>> {
        self.scan_shared_with_budget(lower, upper, bucket, query_ts, pattern, None)
    }

    /// Like [`Self::scan_shared`] but accepting a caller-owned streamed-bytes
    /// counter. A multi-run query passes one counter to every per-run
    /// iterator so the decoded cache's scan-bypass budget is spent per
    /// *query*, not per run — without it, a scan over R runs churns R× the
    /// configured budget through probation before bypass kicks in. `None`
    /// falls back to a private per-iterator counter (single-run callers).
    pub fn scan_shared_with_budget(
        &self,
        lower: &[u8],
        upper: Option<Bytes>,
        bucket: Option<u32>,
        query_ts: u64,
        pattern: AccessPattern,
        budget: Option<Arc<AtomicU64>>,
    ) -> Result<RunRangeIter<'a>> {
        let (blo, bhi) = self.run.bucket_range(bucket);
        let start = self
            .run
            .locate_first_geq_as(lower, pattern)?
            .clamp(blo, bhi);
        // Keys are globally sorted, so every entry below the upper bound
        // sits below its first-geq ordinal: the key comparison the iterator
        // used to do per entry collapses into this single fence jump.
        // Unbounded scans stop at the bucket (or run) end as before.
        let end = match &upper {
            Some(u) if start < self.run.entry_count() => {
                self.run.locate_first_geq_as(u, pattern)?
            }
            Some(_) => start,
            None => bhi,
        };
        Ok(RunRangeIter {
            run: self.run,
            ordinal: start,
            end,
            query_ts,
            cur_block: None,
            block_base: 0,
            last_group: Vec::new(),
            group_done: false,
            done: false,
            pattern,
            scan_bypass: if pattern == AccessPattern::RangeScan {
                self.run.storage().decoded_cache().scan_bypass_bytes()
            } else {
                0
            },
            streamed: (pattern == AccessPattern::RangeScan)
                .then(|| budget.unwrap_or_else(|| Arc::new(AtomicU64::new(0)))),
            prefetch_depth: if pattern == AccessPattern::RangeScan {
                self.run.storage().prefetch_config().depth
            } else {
                0
            },
            prefetched_until: 0,
            seeds: Vec::new(),
        })
    }

    /// Point lookup: the newest visible version of one logical key.
    /// `logical_prefix` is the full `hash ∥ eq ∥ sort` prefix.
    pub fn lookup(
        &self,
        logical_prefix: &[u8],
        bucket: Option<u32>,
        query_ts: u64,
    ) -> Result<Option<SearchHit>> {
        self.lookup_as(logical_prefix, bucket, query_ts, AccessPattern::PointLookup)
    }

    /// Like [`Self::lookup`] with an explicit cache hint: bulk validation
    /// probes issued on behalf of an analytical scan should be labelled
    /// [`AccessPattern::RangeScan`] so they cannot promote one-pass blocks
    /// into the protected segment.
    pub fn lookup_as(
        &self,
        logical_prefix: &[u8],
        bucket: Option<u32>,
        query_ts: u64,
        pattern: AccessPattern,
    ) -> Result<Option<SearchHit>> {
        let upper = crate::key::prefix_successor(logical_prefix);
        let mut iter = self.scan_shared(
            logical_prefix,
            upper.map(Bytes::from),
            bucket,
            query_ts,
            pattern,
        )?;
        match iter.next() {
            Some(Ok(hit)) => {
                // The scan's lower bound is a prefix; guard against a
                // neighbour key when the exact key is absent.
                if hit.key.starts_with(logical_prefix) {
                    Ok(Some(hit))
                } else {
                    Ok(None)
                }
            }
            Some(Err(e)) => Err(e),
            None => Ok(None),
        }
    }
}

/// Streaming iterator over one run's matches; yields at most one (the
/// newest visible) version per logical key. Both range bounds were resolved
/// to ordinals at construction, so iteration is pure forward movement: the
/// current block is held and advanced block-by-block, with no per-entry
/// `locate()` and no per-entry bound comparison.
pub struct RunRangeIter<'a> {
    run: &'a Run,
    ordinal: u64,
    /// First ordinal past the range (upper bound resolved via the fence
    /// index, or the bucket/run end for unbounded scans).
    end: u64,
    query_ts: u64,
    cur_block: Option<(u32, DataBlock)>,
    /// Ordinal of `cur_block`'s first entry.
    block_base: u64,
    last_group: Vec<u8>,
    group_done: bool,
    done: bool,
    /// Cache hint for every block this iterator fetches.
    pattern: AccessPattern,
    /// Once a range scan has streamed this many block bytes it stops
    /// inserting into the decoded cache (0 = never); snapshot of
    /// [`umzi_storage::DecodedBlockCache::scan_bypass_bytes`].
    scan_bypass: u64,
    /// Block bytes streamed so far — shared across the sub-range pieces of
    /// one partitioned scan, and (via
    /// [`RunSearcher::scan_shared_with_budget`]) across every run of one
    /// multi-run query, so the bypass budget is per query, not per run or
    /// partition. `None` for non-scan patterns (bypass can never apply), so
    /// point/batch probes skip the allocation on their hot path.
    streamed: Option<Arc<AtomicU64>>,
    /// Readahead depth (blocks kept staged ahead of the consumer), a
    /// snapshot of the storage's [`umzi_storage::PrefetchConfig`] taken at
    /// positioning time; 0 disables readahead (and is forced for non-scan
    /// patterns, whose access order the fence index does not predict).
    prefetch_depth: usize,
    /// First block number not yet requested for readahead, so overlapping
    /// triggers never re-request a block this iterator already asked for.
    prefetched_until: u32,
    /// Already-decoded blocks handed over by cut resolution
    /// ([`Run::locate_first_geq_with_block`] via
    /// [`Self::sub_range_seeded`]): a partition's first and/or last block,
    /// consumed in place of a fetch when iteration reaches them. At most
    /// two entries, so a linear scan beats any map.
    seeds: Vec<(u32, DataBlock, u64)>,
}

impl<'a> RunRangeIter<'a> {
    /// The resolved `[start, end)` ordinal bounds. On a freshly positioned
    /// iterator `start` is the first in-range ordinal, so `end − start` is
    /// an exact row estimate for scan planners (before visibility
    /// filtering).
    pub fn ordinal_bounds(&self) -> (u64, u64) {
        (self.ordinal, self.end)
    }

    /// Entries left to visit (exact before iteration starts).
    pub fn remaining_entries(&self) -> u64 {
        self.end.saturating_sub(self.ordinal)
    }

    /// The run this iterator reads.
    pub fn run(&self) -> &'a Run {
        self.run
    }

    /// Cheap sub-range re-bounding: a fresh iterator over the ordinal
    /// intersection `[lo, hi) ∩ [self.ordinal, self.end)`, without any
    /// re-positioning block reads — partitioned scans split one positioned
    /// iterator into per-partition pieces this way.
    ///
    /// Call on a freshly positioned iterator (before `next`). The caller
    /// must cut only at logical-key group boundaries (e.g. ordinals from
    /// [`Run::locate_first_geq`] of a logical key): the newest-visible
    /// filter restarts per piece, so a group straddling a cut would emit
    /// one version on each side.
    pub fn sub_range(&self, lo: u64, hi: u64) -> RunRangeIter<'a> {
        let start = lo.clamp(self.ordinal, self.end);
        let end = hi.clamp(start, self.end);
        RunRangeIter {
            run: self.run,
            ordinal: start,
            end,
            query_ts: self.query_ts,
            cur_block: None,
            block_base: 0,
            last_group: Vec::new(),
            group_done: false,
            done: false,
            pattern: self.pattern,
            scan_bypass: self.scan_bypass,
            streamed: self.streamed.clone(),
            prefetch_depth: self.prefetch_depth,
            prefetched_until: 0,
            seeds: Vec::new(),
        }
    }

    /// Like [`Self::sub_range`], but seeding the piece with already-decoded
    /// blocks — `(block_no, block, first_ordinal)` tuples, typically from
    /// [`Run::locate_first_geq_with_block`] resolving this piece's own cut
    /// boundaries. A mid-block cut makes one block both the last block of
    /// the partition ending there and the first block of the partition
    /// starting there; handing each side the resolution's decoded copy
    /// means the block is fetched once per scan, not once per side. Seeds
    /// for blocks the piece never reaches are simply dropped.
    pub fn sub_range_seeded(
        &self,
        lo: u64,
        hi: u64,
        seeds: Vec<(u32, DataBlock, u64)>,
    ) -> RunRangeIter<'a> {
        let mut piece = self.sub_range(lo, hi);
        piece.seeds = seeds;
        piece
    }

    /// Whether the next block fetch should skip cache admission: a range
    /// scan that has already streamed past the bypass threshold clearly
    /// exceeds the cache, so its tail stops churning probation (it still
    /// counts as scan traffic in the per-pattern statistics).
    fn bypassing(&self) -> bool {
        self.scan_bypass > 0
            && self
                .streamed
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed) >= self.scan_bypass)
    }

    /// Consume the cut-resolution seed for block `b`, if one was attached.
    /// Seeded blocks skip the fetch entirely and do not count against the
    /// scan-bypass budget — the resolution already paid for them, the scan
    /// streams no new bytes.
    fn take_seed(&mut self, b: u32) -> Option<DataBlock> {
        let i = self.seeds.iter().position(|(sb, _, _)| *sb == b)?;
        Some(self.seeds.swap_remove(i).1)
    }

    fn load_block(&mut self, b: u32) -> Result<DataBlock> {
        if let Some(block) = self.take_seed(b) {
            return Ok(block);
        }
        let block = if self.bypassing() {
            self.run.data_block_scan_bypassed(b)?
        } else {
            self.run.data_block_as(b, self.pattern)?
        };
        if let Some(streamed) = &self.streamed {
            streamed.fetch_add(block.size_bytes() as u64, Ordering::Relaxed);
        }
        Ok(block)
    }

    /// Refill the readahead pipeline when it has drained: stage the next
    /// `prefetch_depth` blocks past `cur` in one batch, never past the
    /// scan's last block. Refilling only on a drained pipeline keeps every
    /// batch at full depth — one batched (concurrently issued) fetch per
    /// `depth` consumed blocks, instead of degrading to one single-block
    /// batch per step once primed. Advisory: a failed batch is dropped — the
    /// demand path fetches (and retries) synchronously — so readahead can
    /// never poison the iterator.
    fn maybe_readahead(&mut self, cur: u32) {
        if self.prefetch_depth == 0 || self.end == 0 {
            return;
        }
        // A cancelled or expired query must not keep staging readahead —
        // abandon the refill; the demand path will surface the typed error
        // at the next block boundary.
        if umzi_storage::context::current_aborted() {
            return;
        }
        let next = cur.saturating_add(1);
        if next < self.prefetched_until {
            return; // staged blocks remain ahead of the consumer
        }
        // Last block the scan can touch, from the in-memory prefix counts.
        let Ok((last, _)) = self.run.locate(self.end - 1) else {
            return;
        };
        let from = next.max(self.prefetched_until);
        let to = last.min(cur.saturating_add(self.prefetch_depth as u32));
        if from > to {
            return;
        }
        let blocks: Vec<u32> = (from..=to).collect();
        self.prefetched_until = to + 1;
        let _ = self.run.prefetch_blocks(&blocks, self.bypassing());
    }

    fn fetch(&mut self, ordinal: u64) -> Result<EntryRef> {
        loop {
            if let Some((b, block)) = &self.cur_block {
                let n_in_block = u64::from(block.entry_count());
                if (self.block_base..self.block_base + n_in_block).contains(&ordinal) {
                    return block.entry((ordinal - self.block_base) as u16);
                }
                if ordinal == self.block_base + n_in_block && b + 1 < self.run.data_block_count() {
                    // Sequential advance: step into the next block without
                    // re-deriving the position. Block boundaries are the
                    // scan's cooperative cancellation checkpoints.
                    umzi_storage::context::check_current("run_block_advance")?;
                    // Top the readahead pipeline up first so the fetch
                    // below finds its block staged.
                    let next = b + 1;
                    self.block_base += n_in_block;
                    self.maybe_readahead(next);
                    let block = self.load_block(next)?;
                    self.cur_block = Some((next, block));
                    continue;
                }
            }
            // First positioning (or a non-sequential jump): one locate().
            umzi_storage::context::check_current("run_block_position")?;
            let (b, slot) = self.run.locate(ordinal)?;
            self.block_base = ordinal - u64::from(slot);
            self.maybe_readahead(b);
            let block = self.load_block(b)?;
            self.cur_block = Some((b, block));
        }
    }
}

impl Iterator for RunRangeIter<'_> {
    type Item = Result<SearchHit>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if self.ordinal >= self.end || self.ordinal >= self.run.entry_count() {
                self.done = true;
                return None;
            }
            let entry = match self.fetch(self.ordinal) {
                Ok(e) => e,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            self.ordinal += 1;

            let logical = entry.logical_key();
            if logical == self.last_group.as_slice() {
                if self.group_done {
                    continue; // newest visible version already emitted
                }
            } else {
                self.last_group.clear();
                self.last_group.extend_from_slice(logical);
                self.group_done = false;
            }

            let begin_ts = match entry.begin_ts() {
                Ok(ts) => ts,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            if begin_ts <= self.query_ts {
                self.group_done = true;
                return Some(Ok(SearchHit {
                    key: entry.key,
                    value: entry.value,
                    begin_ts,
                }));
            }
            // Version newer than the snapshot: try the next (older) version
            // of the same logical key.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{RunBuilder, RunParams};
    use crate::entry::IndexEntry;
    use crate::key::SortBound;
    use crate::rid::{Rid, ZoneId};
    use std::sync::Arc;
    use umzi_encoding::{ColumnType, Datum, IndexDef};
    use umzi_storage::{Durability, TieredStorage};

    fn layout() -> KeyLayout {
        let def = IndexDef::builder("iot")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .build()
            .unwrap();
        KeyLayout::new(Arc::new(def))
    }

    /// Build a run from (device, msg, beginTS) rows.
    fn build(storage: &Arc<TieredStorage>, rows: &[(i64, i64, u64)], name: &str) -> Run {
        let l = layout();
        let mut entries: Vec<IndexEntry> = rows
            .iter()
            .enumerate()
            .map(|(i, &(d, m, ts))| {
                IndexEntry::new(
                    &l,
                    &[Datum::Int64(d)],
                    &[Datum::Int64(m)],
                    ts,
                    Rid::new(ZoneId::GROOMED, i as u64, 0),
                    &[],
                )
                .unwrap()
            })
            .collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut b = RunBuilder::new(
            l,
            RunParams {
                run_id: 1,
                zone: ZoneId::GROOMED,
                level: 0,
                groomed_lo: 0,
                groomed_hi: 0,
                psn: 0,
                offset_bits: 3, // as in Figure 2
                ancestors: vec![],
            },
            storage.chunk_size(),
        );
        for e in &entries {
            b.push(e).unwrap();
        }
        b.finish(storage, name, Durability::Persisted, true)
            .unwrap()
    }

    fn scan_pairs(run: &Run, device: i64, lo: i64, hi: i64, ts: u64) -> Vec<(i64, i64, u64)> {
        let l = layout();
        let (lower, upper) = l
            .query_range(
                &[Datum::Int64(device)],
                &SortBound::Included(vec![Datum::Int64(lo)]),
                &SortBound::Included(vec![Datum::Int64(hi)]),
            )
            .unwrap();
        let bucket = l
            .hash_equality(&[Datum::Int64(device)])
            .map(|h| umzi_encoding::hash_prefix(h, run.header().offset_bits))
            .ok();
        let searcher = RunSearcher::new(run);
        searcher
            .scan(&lower, upper.as_deref(), bucket, ts)
            .unwrap()
            .map(|r| {
                let hit = r.unwrap();
                let cols = l.decode_key_columns(&hit.key).unwrap();
                (
                    cols[0].as_i64().unwrap(),
                    cols[1].as_i64().unwrap(),
                    hit.begin_ts,
                )
            })
            .collect()
    }

    /// The paper's §7.1.1 worked example (Figure 2): device = 4,
    /// 1 ≤ msg ≤ 3, queryTS = 100 returns exactly the (4, 1, 97) version.
    #[test]
    fn figure_2_example() {
        let storage = Arc::new(TieredStorage::in_memory());
        let rows = [
            (1, 1, 100),
            (8, 2, 101),
            (4, 1, 97),
            (4, 1, 94),
            (4, 2, 102),
            (5, 1, 97),
            (3, 0, 103),
            (3, 1, 104),
        ];
        let run = build(&storage, &rows, "runs/fig2");
        assert_eq!(scan_pairs(&run, 4, 1, 3, 100), vec![(4, 1, 97)]);
        // With queryTS = 102 the (4,2) version becomes visible.
        assert_eq!(
            scan_pairs(&run, 4, 1, 3, 102),
            vec![(4, 1, 97), (4, 2, 102)]
        );
        // queryTS below every version: nothing.
        assert_eq!(scan_pairs(&run, 4, 1, 3, 90), vec![]);
    }

    #[test]
    fn newest_visible_version_wins() {
        let storage = Arc::new(TieredStorage::in_memory());
        let rows = [(7, 1, 10), (7, 1, 20), (7, 1, 30)];
        let run = build(&storage, &rows, "runs/v");
        assert_eq!(scan_pairs(&run, 7, 0, 9, 100), vec![(7, 1, 30)]);
        assert_eq!(scan_pairs(&run, 7, 0, 9, 25), vec![(7, 1, 20)]);
        assert_eq!(scan_pairs(&run, 7, 0, 9, 10), vec![(7, 1, 10)]);
        assert_eq!(scan_pairs(&run, 7, 0, 9, 9), vec![]);
    }

    #[test]
    fn point_lookup() {
        let storage = Arc::new(TieredStorage::in_memory());
        let rows = [(4, 1, 97), (4, 1, 94), (4, 2, 102), (5, 1, 97)];
        let run = build(&storage, &rows, "runs/pl");
        let l = layout();
        let searcher = RunSearcher::new(&run);

        let prefix = {
            let mut p = l.equality_prefix(&[Datum::Int64(4)]).unwrap();
            umzi_encoding::encode_datum(&Datum::Int64(1), &mut p);
            p
        };
        let bucket = l
            .hash_equality(&[Datum::Int64(4)])
            .map(|h| umzi_encoding::hash_prefix(h, run.header().offset_bits))
            .ok();
        let hit = searcher.lookup(&prefix, bucket, 100).unwrap().unwrap();
        assert_eq!(hit.begin_ts, 97);

        // Missing key.
        let missing = {
            let mut p = l.equality_prefix(&[Datum::Int64(4)]).unwrap();
            umzi_encoding::encode_datum(&Datum::Int64(99), &mut p);
            p
        };
        assert!(searcher.lookup(&missing, bucket, 100).unwrap().is_none());
    }

    /// Exhaustive comparison against a naive oracle across range and ts.
    #[test]
    fn scan_matches_oracle() {
        let storage = Arc::new(TieredStorage::in_memory());
        // Deterministic pseudo-random rows: 40 devices × versions.
        let mut rows = Vec::new();
        let mut x = 12345u64;
        for i in 0..800i64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let device = (x >> 33) as i64 % 8;
            let msg = (x >> 17) as i64 % 10;
            let ts = 1 + (i as u64 % 50);
            rows.push((device, msg, ts));
        }
        let run = build(&storage, &rows, "runs/oracle");

        for device in 0..8i64 {
            for ts in [0u64, 10, 25, 50, 100] {
                let got = scan_pairs(&run, device, 2, 7, ts);
                // Oracle: group by (device, msg), max beginTS ≤ ts.
                let mut best: std::collections::BTreeMap<i64, u64> = Default::default();
                for &(d, m, t) in &rows {
                    if d == device && (2..=7).contains(&m) && t <= ts {
                        let e = best.entry(m).or_insert(0);
                        *e = (*e).max(t);
                    }
                }
                let want: Vec<(i64, i64, u64)> =
                    best.into_iter().map(|(m, t)| (device, m, t)).collect();
                assert_eq!(got, want, "device={device} ts={ts}");
            }
        }
    }

    /// Splitting a positioned iterator at logical-key boundaries and
    /// concatenating the pieces yields exactly the unsplit scan, including
    /// the per-group newest-visible filtering.
    #[test]
    fn sub_range_pieces_equal_whole_scan() {
        let storage = Arc::new(TieredStorage::in_memory());
        // Many versions per key so groups span several entries.
        let mut rows = Vec::new();
        for msg in 0..200i64 {
            for v in 0..4u64 {
                rows.push((2, msg, 10 + v * 10));
            }
        }
        let run = build(&storage, &rows, "runs/sub");
        let l = layout();
        let (lower, upper) = l
            .query_range(
                &[Datum::Int64(2)],
                &SortBound::Included(vec![Datum::Int64(0)]),
                &SortBound::Included(vec![Datum::Int64(199)]),
            )
            .unwrap();
        for ts in [5u64, 15, 25, 100] {
            let searcher = RunSearcher::new(&run);
            let whole = searcher.scan(&lower, upper.as_deref(), None, ts).unwrap();
            let (start, end) = whole.ordinal_bounds();
            let full: Vec<_> = whole.map(|r| r.unwrap().key).collect();

            // Cut at the logical keys of msg 50, 120 and 180.
            let mut cuts = vec![start];
            for msg in [50i64, 120, 180] {
                let mut b = l.equality_prefix(&[Datum::Int64(2)]).unwrap();
                umzi_encoding::encode_datum(&Datum::Int64(msg), &mut b);
                cuts.push(run.locate_first_geq(&b).unwrap().clamp(start, end));
            }
            cuts.push(end);
            let template = searcher.scan(&lower, upper.as_deref(), None, ts).unwrap();
            let mut stitched = Vec::new();
            for w in cuts.windows(2) {
                let piece = template.sub_range(w[0], w[1]);
                assert_eq!(piece.ordinal_bounds(), (w[0], w[1].max(w[0])));
                stitched.extend(piece.map(|r| r.unwrap().key));
            }
            assert_eq!(stitched, full, "ts={ts}");
        }
    }

    #[test]
    fn sub_range_clamps_to_parent_bounds() {
        let storage = Arc::new(TieredStorage::in_memory());
        let rows: Vec<(i64, i64, u64)> = (0..50).map(|m| (1, m, 10)).collect();
        let run = build(&storage, &rows, "runs/clamp");
        let l = layout();
        let (lower, upper) = l
            .query_range(
                &[Datum::Int64(1)],
                &SortBound::Included(vec![Datum::Int64(10)]),
                &SortBound::Included(vec![Datum::Int64(39)]),
            )
            .unwrap();
        let it = RunSearcher::new(&run)
            .scan(&lower, upper.as_deref(), None, u64::MAX)
            .unwrap();
        let (start, end) = it.ordinal_bounds();
        assert_eq!(it.remaining_entries(), end - start);
        // Out-of-parent requests clamp to the parent range.
        assert_eq!(it.sub_range(0, u64::MAX).ordinal_bounds(), (start, end));
        // Inverted/empty requests yield an empty piece, not a panic.
        let empty = it.sub_range(end, start);
        assert_eq!(empty.remaining_entries(), 0);
        assert_eq!(empty.count(), 0);
    }

    /// A cold scan with readahead configured returns exactly what the warm
    /// scan returned, and the storage counters attribute the staged blocks.
    #[test]
    fn readahead_scan_is_equivalent_and_attributed() {
        let cfg = umzi_storage::TieredConfig {
            chunk_size: 256,
            prefetch: umzi_storage::PrefetchConfig {
                depth: 3,
                max_inflight_bytes: 1 << 20,
            },
            ..umzi_storage::TieredConfig::default()
        };
        let storage = Arc::new(TieredStorage::new(
            umzi_storage::SharedStorage::in_memory(),
            cfg,
        ));
        let rows: Vec<(i64, i64, u64)> = (0..400).map(|m| (3, m, 10)).collect();
        let run = build(&storage, &rows, "runs/ra");
        assert!(run.data_block_count() > 6, "need several blocks");

        let warm = scan_pairs(&run, 3, 0, 399, 100);
        assert_eq!(warm.len(), 400);

        // Purge drops the local copies; the cold scan streams batched
        // prefetches back in instead of stalling per block.
        storage.purge_object(run.handle()).unwrap();
        let cold = scan_pairs(&run, 3, 0, 399, 100);
        assert_eq!(cold, warm, "readahead must not change scan results");
        let s = storage.stats();
        assert!(s.blocks_prefetched > 0, "scan staged blocks: {s:?}");
        assert!(s.prefetch_hits > 0, "staged blocks served reads: {s:?}");
    }

    #[test]
    fn empty_run_scans_empty() {
        let storage = Arc::new(TieredStorage::in_memory());
        let run = build(&storage, &[], "runs/empty");
        assert_eq!(scan_pairs(&run, 1, 0, 100, u64::MAX), vec![]);
        let searcher = RunSearcher::new(&run);
        assert_eq!(searcher.find_first_geq(b"anything", None).unwrap(), 0);
    }
}
