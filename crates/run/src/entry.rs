//! Index entries: the `(key, value)` pairs stored in runs.

use std::sync::Arc;

use bytes::Bytes;
use umzi_encoding::{decode_datum, encode_datum, Datum, IndexDef};

use crate::key::KeyLayout;
use crate::rid::{Rid, RID_LEN};
use crate::Result;

/// An owned index entry, as produced by index build and consumed by
/// [`crate::builder::RunBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Full memcmp-comparable key (`hash ∥ eq ∥ sort ∥ ¬beginTS`).
    pub key: Vec<u8>,
    /// Value bytes (`RID ∥ enc(included cols)`).
    pub value: Vec<u8>,
}

impl IndexEntry {
    /// Build an entry from typed column values.
    pub fn new(
        layout: &KeyLayout,
        eq_values: &[Datum],
        sort_values: &[Datum],
        begin_ts: u64,
        rid: Rid,
        included_values: &[Datum],
    ) -> Result<Self> {
        let def = layout.def();
        def.check_values(def.included_columns(), included_values, "included")?;
        let key = layout.build_key(eq_values, sort_values, begin_ts)?;
        let mut value = Vec::with_capacity(RID_LEN + included_values.len() * 9);
        rid.encode_into(&mut value);
        for v in included_values {
            encode_datum(v, &mut value);
        }
        Ok(Self { key, value })
    }

    /// The entry's `beginTS`.
    pub fn begin_ts(&self) -> Result<u64> {
        KeyLayout::begin_ts_of(&self.key)
    }

    /// The entry's RID.
    pub fn rid(&self) -> Result<Rid> {
        Rid::decode(&self.value)
    }

    /// Total encoded size (excluding block framing).
    pub fn encoded_size(&self) -> usize {
        self.key.len() + self.value.len()
    }
}

/// A borrowed view of an entry inside a fetched data block. Zero-copy:
/// `key`/`value` are slices of the block's [`Bytes`].
#[derive(Debug, Clone)]
pub struct EntryRef {
    /// Backing block (held to keep the slices alive cheaply).
    pub key: Bytes,
    /// Value bytes.
    pub value: Bytes,
}

impl EntryRef {
    /// The entry's `beginTS`.
    pub fn begin_ts(&self) -> Result<u64> {
        KeyLayout::begin_ts_of(&self.key)
    }

    /// The logical key (key minus the version timestamp).
    pub fn logical_key(&self) -> &[u8] {
        KeyLayout::logical_key(&self.key)
    }

    /// The entry's RID.
    pub fn rid(&self) -> Result<Rid> {
        Rid::decode(&self.value)
    }

    /// Decode the included-column values using the index definition.
    pub fn included_values(&self, def: &Arc<IndexDef>) -> Result<Vec<Datum>> {
        decode_included_values(def, &self.value)
    }

    /// Convert to an owned [`IndexEntry`].
    pub fn to_owned_entry(&self) -> IndexEntry {
        IndexEntry {
            key: self.key.to_vec(),
            value: self.value.to_vec(),
        }
    }
}

/// Decode the included-column values from raw entry value bytes
/// (`RID ∥ enc(included cols)`) without materializing an [`EntryRef`].
pub fn decode_included_values(def: &Arc<IndexDef>, value: &[u8]) -> Result<Vec<Datum>> {
    let mut pos = RID_LEN;
    let mut out = Vec::with_capacity(def.included_columns().len());
    for col in def.included_columns() {
        let (d, used) = decode_datum(col.ty, &value[pos..])?;
        out.push(d);
        pos += used;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rid::ZoneId;
    use umzi_encoding::ColumnType;

    fn layout() -> KeyLayout {
        let def = IndexDef::builder("iot")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .included("val", ColumnType::Int64)
            .build()
            .unwrap();
        KeyLayout::new(Arc::new(def))
    }

    #[test]
    fn entry_roundtrip() {
        let l = layout();
        let rid = Rid::new(ZoneId::GROOMED, 12, 3);
        let e = IndexEntry::new(
            &l,
            &[Datum::Int64(4)],
            &[Datum::Int64(1)],
            100,
            rid,
            &[Datum::Int64(-7)],
        )
        .unwrap();
        assert_eq!(e.begin_ts().unwrap(), 100);
        assert_eq!(e.rid().unwrap(), rid);

        let r = EntryRef {
            key: Bytes::from(e.key.clone()),
            value: Bytes::from(e.value.clone()),
        };
        assert_eq!(r.begin_ts().unwrap(), 100);
        assert_eq!(r.rid().unwrap(), rid);
        assert_eq!(r.included_values(l.def()).unwrap(), vec![Datum::Int64(-7)]);
        assert_eq!(r.to_owned_entry(), e);
    }

    #[test]
    fn included_arity_enforced() {
        let l = layout();
        let rid = Rid::new(ZoneId::GROOMED, 0, 0);
        assert!(IndexEntry::new(&l, &[Datum::Int64(4)], &[Datum::Int64(1)], 1, rid, &[]).is_err());
    }
}
