//! Error type for run-format operations.

use std::fmt;

/// Errors from building, reading or searching index runs.
#[derive(Debug)]
pub enum RunError {
    /// Underlying storage failure.
    Storage(umzi_storage::StorageError),
    /// Encoding/decoding failure.
    Encoding(umzi_encoding::EncodingError),
    /// The run object is malformed (bad magic, checksum, truncation …).
    Corrupt {
        /// What failed to parse.
        context: String,
    },
    /// Entries were pushed to a builder out of key order.
    OutOfOrder {
        /// Ordinal of the offending entry.
        ordinal: u64,
    },
    /// An entry is too large to fit a single data block.
    EntryTooLarge {
        /// Encoded entry size.
        size: usize,
        /// Data block capacity.
        capacity: usize,
    },
    /// A run was opened under a different index definition than it was
    /// built with (fingerprint mismatch).
    DefinitionMismatch {
        /// Fingerprint stored in the run header.
        stored: u64,
        /// Fingerprint of the definition used to open the run.
        opened_with: u64,
    },
}

impl RunError {
    /// Whether a failed `Run::open`/`verify_tail` means the *object itself*
    /// is bad (torn or corrupt on shared storage) rather than the storage
    /// being momentarily sick. Recovery deletes objects in the first class
    /// and must propagate the second — deleting a healthy run because a read
    /// exhausted its transient-retry budget would be data loss.
    pub fn indicates_bad_object(&self) -> bool {
        use umzi_storage::StorageError;
        match self {
            RunError::Corrupt { .. } | RunError::Encoding(_) => true,
            // The header demanded more bytes than the object holds, or the
            // object vanished between list and open.
            RunError::Storage(
                StorageError::RangeOutOfBounds { .. } | StorageError::NotFound { .. },
            ) => true,
            _ => false,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Storage(e) => write!(f, "storage error: {e}"),
            RunError::Encoding(e) => write!(f, "encoding error: {e}"),
            RunError::Corrupt { context } => write!(f, "corrupt run: {context}"),
            RunError::OutOfOrder { ordinal } => {
                write!(f, "entry {ordinal} pushed out of key order")
            }
            RunError::EntryTooLarge { size, capacity } => {
                write!(
                    f,
                    "entry of {size} bytes exceeds data block capacity {capacity}"
                )
            }
            RunError::DefinitionMismatch {
                stored,
                opened_with,
            } => write!(
                f,
                "index definition mismatch: run built with fingerprint {stored:#x}, \
                 opened with {opened_with:#x}"
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Storage(e) => Some(e),
            RunError::Encoding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<umzi_storage::StorageError> for RunError {
    fn from(e: umzi_storage::StorageError) -> Self {
        RunError::Storage(e)
    }
}

impl From<umzi_encoding::EncodingError> for RunError {
    fn from(e: umzi_encoding::EncodingError) -> Self {
        RunError::Encoding(e)
    }
}
