//! Opening and reading index runs.
//!
//! A [`Run`] is an immutable, opened view of one run object. Entry access is
//! by *ordinal*: the header's per-block entry-count prefix sums map an
//! ordinal to `(block, slot)`, the block's offset trailer maps the slot to
//! the entry bytes. All block reads go through the tiered storage, so cache
//! residency (memory / SSD / shared) is transparent here and visible only in
//! latency and statistics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use umzi_encoding::hash64;
use umzi_storage::{AccessPattern, ObjectHandle, TieredStorage};

use crate::entry::EntryRef;
use crate::error::RunError;
use crate::format::RunHeader;
use crate::key::KeyLayout;
use crate::rid::ZoneId;
use crate::Result;

/// An opened, immutable index run.
pub struct Run {
    storage: Arc<TieredStorage>,
    handle: ObjectHandle,
    header: RunHeader,
    layout: KeyLayout,
    name: String,
    /// Merge-policy state (§5.3): the most recent run of a level is *active*
    /// until it grows past the seal threshold. Not persisted — re-derived on
    /// recovery from run sizes.
    sealed: AtomicBool,
    /// Fence keys reconstructed for runs whose header predates the fence
    /// index (built once, on first search, by reading each block's first
    /// entry). Headers with persisted fences never touch this. The mutex
    /// serializes the rebuild so concurrent first searches don't each sweep
    /// every block of the run.
    lazy_fences: OnceLock<Vec<Vec<u8>>>,
    fence_build_lock: std::sync::Mutex<()>,
}

impl std::fmt::Debug for Run {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Run")
            .field("name", &self.name)
            .field("run_id", &self.header.run_id)
            .field("zone", &self.header.zone)
            .field("level", &self.header.level)
            .field(
                "groomed",
                &(self.header.groomed_lo..=self.header.groomed_hi),
            )
            .field("entries", &self.header.entry_count)
            .field("sealed", &self.sealed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Run {
    /// Open a run by object name, validating the header and definition
    /// fingerprint.
    pub fn open(storage: Arc<TieredStorage>, name: &str, layout: KeyLayout) -> Result<Run> {
        // Fetch the first chunk, learn the full header size, fetch the rest.
        let handle = storage.open_object(name, 1)?;
        let first = storage.read_chunk(handle, 0)?;
        let header_len = RunHeader::peek_len(&first)?;
        let header = if header_len <= first.len() {
            RunHeader::deserialize(&first)?
        } else {
            let full = storage.read_range(handle, 0, header_len)?;
            RunHeader::deserialize(&full)?
        };
        if header.index_fingerprint != layout.def().fingerprint() {
            return Err(RunError::DefinitionMismatch {
                stored: header.index_fingerprint,
                opened_with: layout.def().fingerprint(),
            });
        }
        // Pin the remaining header chunks now that we know how many.
        let reopened = storage.open_object(name, header.header_chunks)?;
        debug_assert_eq!(reopened, handle);
        Ok(Run {
            storage,
            handle,
            header,
            layout,
            name: name.to_owned(),
            sealed: AtomicBool::new(false),
            lazy_fences: OnceLock::new(),
            fence_build_lock: std::sync::Mutex::new(()),
        })
    }

    /// Construct from already-known parts (builder fast path).
    pub(crate) fn from_parts(
        storage: Arc<TieredStorage>,
        handle: ObjectHandle,
        header: RunHeader,
        layout: KeyLayout,
        name: &str,
    ) -> Run {
        Run {
            storage,
            handle,
            header,
            layout,
            name: name.to_owned(),
            sealed: AtomicBool::new(false),
            lazy_fences: OnceLock::new(),
            fence_build_lock: std::sync::Mutex::new(()),
        }
    }

    /// The parsed header.
    pub fn header(&self) -> &RunHeader {
        &self.header
    }

    /// Object name in storage.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage handle.
    pub fn handle(&self) -> ObjectHandle {
        self.handle
    }

    /// The key layout / index definition this run serves.
    pub fn layout(&self) -> &KeyLayout {
        &self.layout
    }

    /// Run ID.
    pub fn run_id(&self) -> u64 {
        self.header.run_id
    }

    /// Zone.
    pub fn zone(&self) -> ZoneId {
        self.header.zone
    }

    /// Merge level.
    pub fn level(&self) -> u32 {
        self.header.level
    }

    /// Covered groomed-block-ID range `(lo, hi)`.
    pub fn groomed_range(&self) -> (u64, u64) {
        (self.header.groomed_lo, self.header.groomed_hi)
    }

    /// Number of entries.
    pub fn entry_count(&self) -> u64 {
        self.header.entry_count
    }

    /// Number of data blocks.
    pub fn data_block_count(&self) -> u32 {
        self.header.n_data_blocks
    }

    /// Total object size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.storage.object_len(self.handle).unwrap_or(0)
    }

    /// Whether this run is sealed (inactive) for merge-policy purposes.
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    /// Seal the run (it stops being the level's active run).
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
    }

    /// The storage hierarchy.
    pub fn storage(&self) -> &Arc<TieredStorage> {
        &self.storage
    }

    /// Fetch data block `b` (0-based) for point-lookup traffic. See
    /// [`Self::data_block_as`] for the general, hinted form.
    pub fn data_block(&self, b: u32) -> Result<DataBlock> {
        self.data_block_as(b, AccessPattern::PointLookup)
    }

    /// Verify that the run's object actually holds every data block the
    /// header promises. A torn put lands a strict prefix of the object: the
    /// header (written first) can deserialize cleanly while the data tail is
    /// missing or truncated. Since a tear only ever removes a suffix,
    /// checking that the chunk count matches and that the **last** block
    /// parses (and passes its checksum, when present) is a complete
    /// tear-detection probe. Recovery calls this before trusting a run.
    pub fn verify_tail(&self) -> Result<()> {
        let n = self.header.n_data_blocks;
        if n == 0 {
            return Ok(());
        }
        let expected = self.header.header_chunks + n;
        let actual = self.storage.chunk_count(self.handle)?;
        if actual < expected {
            return Err(RunError::Corrupt {
                context: format!(
                    "run {}: object truncated to {actual} chunks, header requires {expected} \
                     ({} header + {n} data blocks)",
                    self.name, self.header.header_chunks
                ),
            });
        }
        self.data_block_as(n - 1, AccessPattern::Maintenance)
            .map(|_| ())
    }

    /// Fetch data block `b` (0-based): decoded-block cache first, then the
    /// chunk hierarchy plus a parse (inserting the parsed block back). The
    /// access-pattern hint steers the cache's scan-resistant replacement:
    /// point lookups may promote into the protected segment, range scans
    /// stay probation-only, maintenance sweeps are never admitted.
    pub fn data_block_as(&self, b: u32, pattern: AccessPattern) -> Result<DataBlock> {
        self.data_block_impl(b, pattern, false)
    }

    /// Fetch data block `b` for the tail of a range scan that has exceeded
    /// its insert-bypass budget: the access still counts as scan traffic in
    /// the cache's per-pattern statistics, but the parsed block is not
    /// admitted under the scan-resistant policy.
    pub fn data_block_scan_bypassed(&self, b: u32) -> Result<DataBlock> {
        self.data_block_impl(b, AccessPattern::RangeScan, true)
    }

    fn data_block_impl(
        &self,
        b: u32,
        pattern: AccessPattern,
        bypass_insert: bool,
    ) -> Result<DataBlock> {
        if b >= self.header.n_data_blocks {
            return Err(RunError::Corrupt {
                context: format!(
                    "block {b} out of range ({} blocks)",
                    self.header.n_data_blocks
                ),
            });
        }
        let key = (self.handle.raw(), b);
        if let Some(hit) = self.storage.decoded_cache().get(key, pattern) {
            if let Ok(block) = hit.downcast::<DataBlock>() {
                // A block that readahead both staged and decoded is consumed
                // here without any chunk read — still a prefetch hit.
                self.storage
                    .note_prefetch_consumed(self.handle, self.header.header_chunks + b);
                return Ok(DataBlock::clone(&block));
            }
        }
        let chunk_no = self.header.header_chunks + b;
        let chunk = self.storage.read_chunk(self.handle, chunk_no)?;
        let chunk = self.verify_block_checksum(b, chunk_no, chunk)?;
        let block = DataBlock::parse(chunk)?;
        let cache = self.storage.decoded_cache();
        if bypass_insert {
            cache.insert_scan_bypassed(key, Arc::new(block.clone()), block.size_bytes() as u64);
        } else {
            cache.insert(
                key,
                Arc::new(block.clone()),
                block.size_bytes() as u64,
                pattern,
            );
        }
        Ok(block)
    }

    /// Stage data blocks ahead of demand: one batched chunk prefetch through
    /// the storage hierarchy ([`TieredStorage::prefetch_chunks`]), then each
    /// arriving block is checksum-verified, parsed, and admitted to the
    /// decoded cache as range-scan traffic (decode-on-arrival), or handed to
    /// [`umzi_storage::DecodedBlockCache::insert_scan_bypassed`] when the
    /// scan is past its bypass budget. Returns the number of chunks staged.
    ///
    /// Best-effort by design: a block that fails its checksum or parse here
    /// is silently skipped — the staged chunk stays in the tiers and the
    /// synchronous demand path re-verifies it with full corruption
    /// containment. Callers on the scan path likewise swallow the `Err`
    /// (batch fetch failure) and fall back to demand fetching.
    pub fn prefetch_blocks(&self, blocks: &[u32], bypass_insert: bool) -> Result<usize> {
        if blocks.is_empty() {
            return Ok(0);
        }
        let chunk_nos: Vec<u32> = blocks
            .iter()
            .filter(|&&b| b < self.header.n_data_blocks)
            .map(|&b| self.header.header_chunks + b)
            .collect();
        let fetched = self.storage.prefetch_chunks(self.handle, &chunk_nos)?;
        let staged = fetched.len();
        let cache = self.storage.decoded_cache();
        for (chunk_no, chunk) in fetched {
            let b = chunk_no - self.header.header_chunks;
            if let Some(&expected) = self.header.block_checksums.get(b as usize) {
                if hash64(&chunk) != expected {
                    continue;
                }
            }
            let Ok(block) = DataBlock::parse(chunk) else {
                continue;
            };
            let key = (self.handle.raw(), b);
            let weight = block.size_bytes() as u64;
            if bypass_insert {
                cache.insert_scan_bypassed(key, Arc::new(block), weight);
            } else {
                cache.insert(key, Arc::new(block), weight, AccessPattern::RangeScan);
            }
        }
        Ok(staged)
    }

    /// Corruption containment for one fetched data block: verify the raw
    /// bytes against the header's persisted `hash64` (runs written before
    /// block checksums existed skip this). On a mismatch the poisoned chunk
    /// is evicted from every cache tier and re-fetched from shared storage
    /// **once** — a flipped bit in a cache or on the local SSD heals
    /// transparently — before the read fails as [`RunError::Corrupt`] with
    /// the run name and block number.
    fn verify_block_checksum(&self, b: u32, chunk_no: u32, chunk: Bytes) -> Result<Bytes> {
        let Some(&expected) = self.header.block_checksums.get(b as usize) else {
            return Ok(chunk);
        };
        if hash64(&chunk) == expected {
            return Ok(chunk);
        }
        let reread = self
            .storage
            .reread_chunk_from_shared(self.handle, chunk_no)?;
        if hash64(&reread) == expected {
            return Ok(reread);
        }
        Err(RunError::Corrupt {
            context: format!(
                "run {} data block {b}: checksum mismatch persists after refetch \
                 (expected {expected:#018x}, got {:#018x})",
                self.name,
                hash64(&reread)
            ),
        })
    }

    /// Map an entry ordinal to `(block index, slot within block)`.
    pub fn locate(&self, ordinal: u64) -> Result<(u32, u16)> {
        if ordinal >= self.header.entry_count {
            return Err(RunError::Corrupt {
                context: format!(
                    "ordinal {ordinal} out of range ({} entries)",
                    self.header.entry_count
                ),
            });
        }
        let counts = &self.header.block_prefix_counts;
        let b = counts.partition_point(|&c| c <= ordinal);
        let base = if b == 0 { 0 } else { counts[b - 1] };
        Ok((b as u32, (ordinal - base) as u16))
    }

    /// Read the entry at `ordinal`.
    pub fn entry(&self, ordinal: u64) -> Result<EntryRef> {
        let (b, slot) = self.locate(ordinal)?;
        let block = self.data_block(b)?;
        block.entry(slot)
    }

    /// The fence index: `fence_keys()[b]` is the full key of the first
    /// entry in block `b`. Served from the header when persisted; rebuilt
    /// once (one pass over the blocks) for runs written before the fence
    /// index existed.
    pub fn fence_keys(&self) -> Result<&[Vec<u8>]> {
        if !self.header.fence_keys.is_empty() || self.header.n_data_blocks == 0 {
            return Ok(&self.header.fence_keys);
        }
        if let Some(f) = self.lazy_fences.get() {
            return Ok(f);
        }
        // One thread rebuilds (a full-run block sweep); latecomers block on
        // the mutex and then find the fences already published.
        let _build = self
            .fence_build_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(f) = self.lazy_fences.get() {
            return Ok(f);
        }
        let mut fences = Vec::with_capacity(self.header.n_data_blocks as usize);
        for b in 0..self.header.n_data_blocks {
            // One-pass sweep over every block of the run: maintenance
            // traffic, kept out of the decoded cache.
            let block = self.data_block_as(b, AccessPattern::Maintenance)?;
            if block.entry_count() == 0 {
                return Err(RunError::Corrupt {
                    context: format!("data block {b} is empty"),
                });
            }
            fences.push(block.key_at(0)?.to_vec());
        }
        Ok(self.lazy_fences.get_or_init(|| fences))
    }

    /// Ordinal of the first entry whose key is ≥ `target` across the whole
    /// run (`entry_count` when none), as point-lookup traffic. See
    /// [`Self::locate_first_geq_as`].
    pub fn locate_first_geq(&self, target: &[u8]) -> Result<u64> {
        self.locate_first_geq_as(target, AccessPattern::PointLookup)
    }

    /// Ordinal of the first entry whose key is ≥ `target` across the whole
    /// run (`entry_count` when none). Touches at most **one** data block:
    /// the fence index selects the candidate block, then the block's offset
    /// trailer is binary-searched in place. The pattern hint labels that
    /// block fetch for the decoded cache.
    pub fn locate_first_geq_as(&self, target: &[u8], pattern: AccessPattern) -> Result<u64> {
        if self.header.entry_count == 0 {
            return Ok(0);
        }
        let fences = self.fence_keys()?;
        // First block whose first key is ≥ target; the answer is either the
        // start of that block or inside the block before it.
        let pb = fences.partition_point(|f| f.as_slice() < target);
        if pb == 0 {
            return Ok(0);
        }
        // Exact fence hit: the answer is the start of block `pb`, already
        // known from the in-memory prefix counts — no block read. Common
        // for partitioned scans, whose cut boundaries are fence keys.
        if pb < fences.len() && fences[pb].as_slice() == target {
            return Ok(self.header.block_prefix_counts[pb - 1]);
        }
        let b = (pb - 1) as u32;
        let base = if b == 0 {
            0
        } else {
            self.header.block_prefix_counts[b as usize - 1]
        };
        let block = self.data_block_as(b, pattern)?;
        Ok(base + u64::from(block.partition_point_geq(target)?))
    }

    /// Like [`Self::locate_first_geq_as`], but also returning the decoded
    /// candidate block as a [`LocatedBlock`] when one was fetched. A partitioned scan resolves each cut boundary this way and
    /// seeds the adjacent partition's iterator with the block
    /// ([`crate::search::RunRangeIter::sub_range_seeded`]), so the two
    /// partitions sharing the boundary do not each fetch it again. `None`
    /// means the answer came from the fence index and prefix counts alone
    /// (ordinal 0, or a target exactly on a fence key) — nothing was
    /// fetched, so there is nothing to reuse.
    pub fn locate_first_geq_with_block(
        &self,
        target: &[u8],
        pattern: AccessPattern,
    ) -> Result<(u64, Option<LocatedBlock>)> {
        if self.header.entry_count == 0 {
            return Ok((0, None));
        }
        let fences = self.fence_keys()?;
        let pb = fences.partition_point(|f| f.as_slice() < target);
        if pb == 0 {
            return Ok((0, None));
        }
        // Exact fence hit — resolved from the prefix counts without a block
        // read, so there is no decoded block to hand back.
        if pb < fences.len() && fences[pb].as_slice() == target {
            return Ok((self.header.block_prefix_counts[pb - 1], None));
        }
        let b = (pb - 1) as u32;
        let base = if b == 0 {
            0
        } else {
            self.header.block_prefix_counts[b as usize - 1]
        };
        let block = self.data_block_as(b, pattern)?;
        let ordinal = base + u64::from(block.partition_point_geq(target)?);
        Ok((ordinal, Some((b, block, base))))
    }

    /// The binary-search range `[lo, hi)` for a hash bucket, from the offset
    /// array; the whole run when there is no offset array.
    pub fn bucket_range(&self, bucket: Option<u32>) -> (u64, u64) {
        match (bucket, self.header.offset_bits) {
            (Some(bkt), bits) if bits > 0 => {
                let oa = &self.header.offset_array;
                let lo = oa[bkt as usize];
                let hi = oa
                    .get(bkt as usize + 1)
                    .copied()
                    .unwrap_or(self.header.entry_count);
                (lo, hi)
            }
            _ => (0, self.header.entry_count),
        }
    }
}

/// A decoded block handed back by [`Run::locate_first_geq_with_block`]:
/// `(block_no, block, first_ordinal)`. Cloning the block is a refcount
/// bump, not a byte copy.
pub type LocatedBlock = (u32, DataBlock, u64);

/// A parsed data block: entries at the front, `u16` offset trailer at the
/// back.
#[derive(Debug, Clone)]
pub struct DataBlock {
    data: Bytes,
    n_entries: u16,
}

impl DataBlock {
    /// Parse a raw block.
    pub fn parse(data: Bytes) -> Result<DataBlock> {
        if data.len() < 2 {
            return Err(RunError::Corrupt {
                context: "block shorter than trailer".into(),
            });
        }
        let n = u16::from_le_bytes(data[data.len() - 2..].try_into().expect("2 bytes"));
        let trailer = n as usize * 2 + 2;
        if data.len() < trailer {
            return Err(RunError::Corrupt {
                context: "block trailer truncated".into(),
            });
        }
        Ok(DataBlock { data, n_entries: n })
    }

    /// Entries in this block.
    pub fn entry_count(&self) -> u16 {
        self.n_entries
    }

    /// Raw block size in bytes (cache accounting weight).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Byte offset of the entry in `slot`, from the offset trailer.
    fn slot_offset(&self, slot: u16) -> Result<usize> {
        if slot >= self.n_entries {
            return Err(RunError::Corrupt {
                context: format!("slot {slot} out of range ({} entries)", self.n_entries),
            });
        }
        let off_pos = self.trailer_start() + slot as usize * 2;
        Ok(
            u16::from_le_bytes(self.data[off_pos..off_pos + 2].try_into().expect("2 bytes"))
                as usize,
        )
    }

    fn trailer_start(&self) -> usize {
        self.data.len() - 2 - self.n_entries as usize * 2
    }

    fn read_u16(&self, at: usize) -> Result<usize> {
        self.data
            .get(at..at + 2)
            .map(|s| u16::from_le_bytes(s.try_into().expect("2 bytes")) as usize)
            .ok_or_else(|| RunError::Corrupt {
                context: "entry frame truncated".into(),
            })
    }

    /// Zero-copy view of the entry in `slot`.
    pub fn entry(&self, slot: u16) -> Result<EntryRef> {
        let entry_off = self.slot_offset(slot)?;
        let key_len = self.read_u16(entry_off)?;
        let key_start = entry_off + 2;
        let val_len = self.read_u16(key_start + key_len)?;
        let val_start = key_start + key_len + 2;
        if val_start + val_len > self.trailer_start() {
            return Err(RunError::Corrupt {
                context: "entry overruns trailer".into(),
            });
        }
        Ok(EntryRef {
            key: self.data.slice(key_start..key_start + key_len),
            value: self.data.slice(val_start..val_start + val_len),
        })
    }

    /// Borrowed view of the key in `slot` (no value frame parsing, no
    /// refcount traffic — the unit of work inside in-block binary search).
    pub fn key_at(&self, slot: u16) -> Result<&[u8]> {
        let entry_off = self.slot_offset(slot)?;
        let key_len = self.read_u16(entry_off)?;
        let key_start = entry_off + 2;
        self.data
            .get(key_start..key_start + key_len)
            .ok_or_else(|| RunError::Corrupt {
                context: "entry key truncated".into(),
            })
    }

    /// First slot whose key is ≥ `target` (`entry_count` when none): a
    /// binary search over the block's offset trailer, entirely in memory.
    pub fn partition_point_geq(&self, target: &[u8]) -> Result<u16> {
        let (mut lo, mut hi) = (0u16, self.n_entries);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at(mid)? < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{RunBuilder, RunParams};
    use crate::entry::IndexEntry;
    use crate::rid::Rid;
    use umzi_encoding::{ColumnType, Datum, IndexDef};
    use umzi_storage::Durability;

    fn layout() -> KeyLayout {
        let def = IndexDef::builder("iot")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .included("val", ColumnType::Int64)
            .build()
            .unwrap();
        KeyLayout::new(Arc::new(def))
    }

    fn build_run(storage: &Arc<TieredStorage>, n: i64) -> Run {
        let l = layout();
        let mut entries: Vec<IndexEntry> = (0..n)
            .map(|i| {
                IndexEntry::new(
                    &l,
                    &[Datum::Int64(i % 10)],
                    &[Datum::Int64(i / 10)],
                    1000 + i as u64,
                    Rid::new(ZoneId::GROOMED, i as u64, 0),
                    &[Datum::Int64(i * 2)],
                )
                .unwrap()
            })
            .collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut b = RunBuilder::new(
            l,
            RunParams {
                run_id: 9,
                zone: ZoneId::GROOMED,
                level: 0,
                groomed_lo: 3,
                groomed_hi: 5,
                psn: 0,
                offset_bits: 6,
                ancestors: vec![],
            },
            storage.chunk_size(),
        );
        for e in &entries {
            b.push(e).unwrap();
        }
        b.finish(storage, "runs/t", Durability::Persisted, true)
            .unwrap()
    }

    #[test]
    fn entries_are_sorted_and_complete() {
        let storage = Arc::new(TieredStorage::in_memory());
        let run = build_run(&storage, 5000);
        assert_eq!(run.entry_count(), 5000);
        let mut last: Option<Vec<u8>> = None;
        for ord in 0..run.entry_count() {
            let e = run.entry(ord).unwrap();
            if let Some(prev) = &last {
                assert!(prev.as_slice() <= &e.key[..], "ordinal {ord} out of order");
            }
            last = Some(e.key.to_vec());
        }
    }

    #[test]
    fn locate_roundtrips_prefix_counts() {
        let storage = Arc::new(TieredStorage::in_memory());
        let run = build_run(&storage, 3000);
        let mut total = 0u64;
        for b in 0..run.data_block_count() {
            let blk = run.data_block(b).unwrap();
            for s in 0..blk.entry_count() {
                let (lb, ls) = run.locate(total).unwrap();
                assert_eq!((lb, ls), (b, s));
                total += 1;
            }
        }
        assert_eq!(total, run.entry_count());
        assert!(run.locate(total).is_err());
    }

    #[test]
    fn values_decode() {
        let storage = Arc::new(TieredStorage::in_memory());
        let run = build_run(&storage, 100);
        let l = layout();
        for ord in 0..run.entry_count() {
            let e = run.entry(ord).unwrap();
            let cols = l.decode_key_columns(&e.key).unwrap();
            let inc = e.included_values(l.def()).unwrap();
            let (device, msg) = (cols[0].as_i64().unwrap(), cols[1].as_i64().unwrap());
            let i = msg * 10 + device;
            assert_eq!(inc, vec![Datum::Int64(i * 2)]);
            assert_eq!(e.begin_ts().unwrap(), 1000 + i as u64);
            assert_eq!(e.rid().unwrap().block_id, i as u64);
        }
    }

    #[test]
    fn open_with_wrong_definition_fails() {
        let storage = Arc::new(TieredStorage::in_memory());
        build_run(&storage, 10);
        let other = IndexDef::builder("other")
            .equality("x", ColumnType::Int64)
            .build()
            .unwrap();
        let err = Run::open(storage, "runs/t", KeyLayout::new(Arc::new(other)));
        assert!(matches!(err, Err(RunError::DefinitionMismatch { .. })));
    }

    #[test]
    fn bucket_range_covers_all_entries() {
        let storage = Arc::new(TieredStorage::in_memory());
        let run = build_run(&storage, 1000);
        let l = layout();
        for ord in 0..run.entry_count() {
            let e = run.entry(ord).unwrap();
            let bucket = l.bucket_of(&e.key, run.header().offset_bits).unwrap();
            let (lo, hi) = run.bucket_range(Some(bucket));
            assert!((lo..hi).contains(&ord));
        }
        // No hint ⇒ whole run.
        assert_eq!(run.bucket_range(None), (0, 1000));
    }

    #[test]
    fn block_access_out_of_range() {
        let storage = Arc::new(TieredStorage::in_memory());
        let run = build_run(&storage, 10);
        assert!(run.data_block(run.data_block_count()).is_err());
    }

    use umzi_storage::{
        FaultEvent, FaultInjectingStore, FaultPlan, InMemoryObjectStore, LatencyModel, ObjectStore,
        SharedStorage, TieredConfig,
    };

    /// Build a run on a clean store, then reopen it through a
    /// fault-injecting wrapper over the same backing objects (fresh caches,
    /// so the header read is shared-read #1 and the first data-block fetch
    /// is shared-read #2).
    fn reopen_with_faults(plan: FaultPlan) -> (Arc<FaultInjectingStore>, Arc<TieredStorage>, Run) {
        let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryObjectStore::new());
        let clean = Arc::new(TieredStorage::new(
            SharedStorage::new(Arc::clone(&inner), LatencyModel::off()),
            TieredConfig::default(),
        ));
        build_run(&clean, 100);

        let faulty = Arc::new(FaultInjectingStore::new(inner, plan));
        let storage = Arc::new(TieredStorage::new(
            SharedStorage::new(
                Arc::clone(&faulty) as Arc<dyn ObjectStore>,
                LatencyModel::off(),
            ),
            TieredConfig::default(),
        ));
        let run = Run::open(Arc::clone(&storage), "runs/t", layout()).unwrap();
        (faulty, storage, run)
    }

    #[test]
    fn transient_block_corruption_heals_by_refetch() {
        // Flip a bit in shared-read #2 — the first data-block fetch. The
        // checksum catches it, the poisoned chunk is evicted and re-fetched
        // (read #3, clean), and the read succeeds.
        let plan = FaultPlan::none().with_event(FaultEvent::BitFlipAt { nth: 2 });
        let (faulty, storage, run) = reopen_with_faults(plan);
        let e = run.entry(0).unwrap();
        assert!(!e.key.is_empty());
        assert_eq!(faulty.stats().bit_flips, 1, "the flip really happened");
        assert_eq!(storage.stats().corruption_refetches, 1);
        // The healed chunk is cached: further reads stay clean and cheap.
        run.entry(1).unwrap();
        assert_eq!(storage.stats().corruption_refetches, 1);
    }

    #[test]
    fn persistent_block_corruption_surfaces_as_corrupt() {
        // Both the original fetch and the containment refetch come back
        // flipped: the read must fail as Corrupt naming the run and block,
        // not return garbage entries.
        let plan = FaultPlan::none()
            .with_event(FaultEvent::BitFlipAt { nth: 2 })
            .with_event(FaultEvent::BitFlipAt { nth: 3 });
        let (faulty, storage, run) = reopen_with_faults(plan);
        let err = run.entry(0).unwrap_err();
        match err {
            RunError::Corrupt { context } => {
                assert!(context.contains("runs/t"), "{context}");
                assert!(context.contains("data block 0"), "{context}");
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        assert_eq!(faulty.stats().bit_flips, 2);
        assert_eq!(storage.stats().corruption_refetches, 1);
    }

    #[test]
    fn legacy_run_without_checksums_still_reads() {
        // A header with the checksum section stripped (as written before the
        // flag existed) must skip verification rather than reject every
        // block.
        let storage = Arc::new(TieredStorage::in_memory());
        let run = build_run(&storage, 50);
        let mut header = run.header().clone();
        header.block_checksums = Vec::new();
        let legacy = Run::from_parts(
            Arc::clone(&storage),
            run.handle(),
            header,
            layout(),
            "runs/t",
        );
        for ord in 0..legacy.entry_count() {
            legacy.entry(ord).unwrap();
        }
        assert_eq!(storage.stats().corruption_refetches, 0);
    }
}
