//! Index-key construction and query-bound computation.
//!
//! §4.2: entries are ordered by *"the hash column, equality columns, sort
//! columns, and descending order of beginTS"*, all in memcmp-comparable
//! form. [`KeyLayout`] owns the mapping between typed column values and key
//! bytes for one index definition, including:
//!
//! * full-key construction for writes,
//! * lower/upper *prefix bound* construction for queries (§7.1.1's
//!   "concatenated lower/upper bound"),
//! * splitting a stored key back into per-column byte ranges (synopsis
//!   bookkeeping and index-only result decoding).

use std::ops::Range;
use std::sync::Arc;

use umzi_encoding::{
    decode_datum, encode_datum, hash64, hash_prefix, Datum, DatumKind, IndexDef, KeyWriter,
};

use crate::error::RunError;
use crate::Result;

/// Width of the trailing (inverted) `beginTS` field in every key.
pub const TS_LEN: usize = 8;

/// A bound on the sort-column tuple of a query.
///
/// Bounds may cover a *prefix* of the sort columns (e.g. bound only `date`
/// of `(date, seq)`), which the byte encoding supports naturally.
#[derive(Debug, Clone, PartialEq)]
pub enum SortBound {
    /// No bound on this side.
    Unbounded,
    /// Inclusive bound on a prefix of the sort columns.
    Included(Vec<Datum>),
    /// Exclusive bound on a prefix of the sort columns.
    Excluded(Vec<Datum>),
}

impl SortBound {
    /// The bound's datums, if any.
    pub fn values(&self) -> Option<&[Datum]> {
        match self {
            SortBound::Unbounded => None,
            SortBound::Included(v) | SortBound::Excluded(v) => Some(v),
        }
    }
}

/// Key codec bound to one [`IndexDef`].
#[derive(Debug, Clone)]
pub struct KeyLayout {
    def: Arc<IndexDef>,
}

impl KeyLayout {
    /// Create a layout for the given definition.
    pub fn new(def: Arc<IndexDef>) -> Self {
        Self { def }
    }

    /// The index definition.
    pub fn def(&self) -> &Arc<IndexDef> {
        &self.def
    }

    /// Build the full key for an entry.
    pub fn build_key(
        &self,
        eq_values: &[Datum],
        sort_values: &[Datum],
        begin_ts: u64,
    ) -> Result<Vec<u8>> {
        self.def
            .check_values(self.def.equality_columns(), eq_values, "equality")?;
        self.def
            .check_values(self.def.sort_columns(), sort_values, "sort")?;
        let mut w = KeyWriter::with_capacity(16 + 9 * (eq_values.len() + sort_values.len()));
        if self.def.has_hash() {
            w.put_u64(self.def.hash_equality(eq_values)?);
        }
        for v in eq_values {
            w.put(v);
        }
        for v in sort_values {
            w.put(v);
        }
        w.put_u64_desc(begin_ts);
        Ok(w.finish())
    }

    /// Extract `beginTS` from a stored key (the inverted trailing 8 bytes).
    pub fn begin_ts_of(key: &[u8]) -> Result<u64> {
        if key.len() < TS_LEN {
            return Err(RunError::Corrupt {
                context: "key shorter than beginTS field".into(),
            });
        }
        let raw: [u8; TS_LEN] = key[key.len() - TS_LEN..].try_into().expect("TS_LEN bytes");
        Ok(!u64::from_be_bytes(raw))
    }

    /// The *logical key* — everything before the `beginTS` field. Two entries
    /// with equal logical keys are versions of the same record.
    pub fn logical_key(key: &[u8]) -> &[u8] {
        &key[..key.len().saturating_sub(TS_LEN)]
    }

    /// Extract the stored hash column value, if the index has one.
    pub fn hash_of(&self, key: &[u8]) -> Option<u64> {
        if !self.def.has_hash() || key.len() < 8 {
            return None;
        }
        Some(u64::from_be_bytes(key[..8].try_into().expect("8 bytes")))
    }

    /// The offset-array bucket of a stored key.
    pub fn bucket_of(&self, key: &[u8], offset_bits: u8) -> Option<u32> {
        self.hash_of(key).map(|h| hash_prefix(h, offset_bits))
    }

    /// Build the `hash ∥ equality` prefix shared by all sort values for the
    /// given equality values (the starting point of every bound).
    pub fn equality_prefix(&self, eq_values: &[Datum]) -> Result<Vec<u8>> {
        self.def
            .check_values(self.def.equality_columns(), eq_values, "equality")?;
        let mut w = KeyWriter::with_capacity(16 + 9 * eq_values.len());
        if self.def.has_hash() {
            w.put_u64(self.def.hash_equality(eq_values)?);
        }
        for v in eq_values {
            w.put(v);
        }
        Ok(w.finish())
    }

    /// Compute the byte-range `[lower, upper)` of keys matching
    /// `eq_values` and the sort bounds. `upper = None` means "to the end of
    /// the run" (only possible when there are no equality columns and the
    /// upper sort bound is unbounded, or when the successor overflows).
    pub fn query_range(
        &self,
        eq_values: &[Datum],
        lower: &SortBound,
        upper: &SortBound,
    ) -> Result<(Vec<u8>, Option<Vec<u8>>)> {
        let prefix = self.equality_prefix(eq_values)?;

        let lower_key = match lower {
            SortBound::Unbounded => prefix.clone(),
            SortBound::Included(vals) => {
                self.check_sort_prefix(vals)?;
                let mut k = prefix.clone();
                for v in vals {
                    encode_datum(v, &mut k);
                }
                k
            }
            SortBound::Excluded(vals) => {
                self.check_sort_prefix(vals)?;
                let mut k = prefix.clone();
                for v in vals {
                    encode_datum(v, &mut k);
                }
                // First key past every key starting with this prefix.
                match prefix_successor(&k) {
                    Some(s) => s,
                    None => vec![0xFF; k.len() + 1], // degenerate: nothing above
                }
            }
        };

        let upper_key = match upper {
            SortBound::Unbounded => {
                if prefix.is_empty() {
                    None
                } else {
                    prefix_successor(&prefix)
                }
            }
            SortBound::Included(vals) => {
                self.check_sort_prefix(vals)?;
                let mut k = prefix.clone();
                for v in vals {
                    encode_datum(v, &mut k);
                }
                prefix_successor(&k)
            }
            SortBound::Excluded(vals) => {
                self.check_sort_prefix(vals)?;
                let mut k = prefix;
                for v in vals {
                    encode_datum(v, &mut k);
                }
                Some(k)
            }
        };

        Ok((lower_key, upper_key))
    }

    fn check_sort_prefix(&self, vals: &[Datum]) -> Result<()> {
        let cols = self.def.sort_columns();
        if vals.len() > cols.len() {
            return Err(RunError::Encoding(
                umzi_encoding::EncodingError::InvalidIndexDef(format!(
                    "{} sort bound values but only {} sort columns",
                    vals.len(),
                    cols.len()
                )),
            ));
        }
        for (c, v) in cols.iter().zip(vals) {
            if c.ty != v.kind() {
                return Err(RunError::Encoding(
                    umzi_encoding::EncodingError::KindMismatch {
                        expected: c.ty,
                        actual: v.kind(),
                    },
                ));
            }
        }
        Ok(())
    }

    /// Split a stored key into per-key-column encoded byte ranges
    /// (equality columns first, then sort columns). Used for synopsis
    /// maintenance during run builds and for decoding query results.
    pub fn split_key_columns(&self, key: &[u8]) -> Result<Vec<Range<usize>>> {
        let mut pos = if self.def.has_hash() { 8 } else { 0 };
        let mut ranges = Vec::with_capacity(self.def.key_column_count());
        for col in self.def.key_columns() {
            let len = encoded_len(col.ty, &key[pos..])?;
            ranges.push(pos..pos + len);
            pos += len;
        }
        Ok(ranges)
    }

    /// Decode the typed key-column values from a stored key.
    pub fn decode_key_columns(&self, key: &[u8]) -> Result<Vec<Datum>> {
        let ranges = self.split_key_columns(key)?;
        let mut out = Vec::with_capacity(ranges.len());
        for (col, r) in self.def.key_columns().zip(ranges) {
            let (d, _) = decode_datum(col.ty, &key[r])?;
            out.push(d);
        }
        Ok(out)
    }

    /// Hash arbitrary equality values (helper for external batching code).
    pub fn hash_equality(&self, eq_values: &[Datum]) -> Result<u64> {
        Ok(self.def.hash_equality(eq_values)?)
    }
}

/// Compute the encoded length of one datum of `kind` at the front of `buf`.
fn encoded_len(kind: DatumKind, buf: &[u8]) -> Result<usize> {
    if let Some(w) = kind.fixed_width() {
        if buf.len() < w {
            return Err(RunError::Corrupt {
                context: "key truncated mid-column".into(),
            });
        }
        return Ok(w);
    }
    // Variable-width: scan for the 0x00 0x00 terminator, skipping escapes.
    let mut i = 0;
    loop {
        match buf.get(i) {
            None => {
                return Err(RunError::Corrupt {
                    context: "unterminated string column".into(),
                })
            }
            Some(0x00) => match buf.get(i + 1) {
                Some(0x00) => return Ok(i + 2),
                Some(0xFF) => i += 2,
                _ => {
                    return Err(RunError::Corrupt {
                        context: "bad escape in key".into(),
                    })
                }
            },
            Some(_) => i += 1,
        }
    }
}

/// The smallest byte string strictly greater than every string starting with
/// `prefix`: increments the last non-0xFF byte and truncates. `None` when the
/// prefix is all `0xFF` (no upper bound exists).
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(&last) = out.last() {
        if last == 0xFF {
            out.pop();
        } else {
            *out.last_mut().expect("non-empty") = last + 1;
            return Some(out);
        }
    }
    None
}

/// Re-export: deterministic hash used across the key layout.
pub use umzi_encoding::hash64 as key_hash64;

#[allow(unused_imports)]
use hash64 as _; // referenced by doc text

#[cfg(test)]
mod tests {
    use super::*;
    use umzi_encoding::ColumnType;

    fn layout() -> KeyLayout {
        let def = IndexDef::builder("iot")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .included("val", ColumnType::Int64)
            .build()
            .unwrap();
        KeyLayout::new(Arc::new(def))
    }

    #[test]
    fn key_roundtrip_and_order() {
        let l = layout();
        let k1 = l
            .build_key(&[Datum::Int64(4)], &[Datum::Int64(1)], 100)
            .unwrap();
        let k2 = l
            .build_key(&[Datum::Int64(4)], &[Datum::Int64(1)], 97)
            .unwrap();
        let k3 = l
            .build_key(&[Datum::Int64(4)], &[Datum::Int64(2)], 50)
            .unwrap();

        // Same logical key, newer version first (Figure 2: beginTS desc).
        assert_eq!(KeyLayout::logical_key(&k1), KeyLayout::logical_key(&k2));
        assert!(k1 < k2, "beginTS 100 must sort before 97");
        assert!(k2 < k3, "msg=1 sorts before msg=2 regardless of ts");

        assert_eq!(KeyLayout::begin_ts_of(&k1).unwrap(), 100);
        assert_eq!(KeyLayout::begin_ts_of(&k2).unwrap(), 97);
        assert_eq!(
            l.decode_key_columns(&k1).unwrap(),
            vec![Datum::Int64(4), Datum::Int64(1)]
        );
    }

    #[test]
    fn same_device_shares_hash_prefix() {
        let l = layout();
        let k1 = l
            .build_key(&[Datum::Int64(4)], &[Datum::Int64(1)], 1)
            .unwrap();
        let k2 = l
            .build_key(&[Datum::Int64(4)], &[Datum::Int64(9)], 2)
            .unwrap();
        assert_eq!(l.hash_of(&k1), l.hash_of(&k2));
        assert_eq!(k1[..8], k2[..8]);
    }

    #[test]
    fn query_range_brackets_exactly_the_matches() {
        let l = layout();
        // Paper's example query: device = 4, 1 <= msg <= 3.
        let (lo, hi) = l
            .query_range(
                &[Datum::Int64(4)],
                &SortBound::Included(vec![Datum::Int64(1)]),
                &SortBound::Included(vec![Datum::Int64(3)]),
            )
            .unwrap();
        let hi = hi.unwrap();

        for (msg, expect_in) in [(0i64, false), (1, true), (2, true), (3, true), (4, false)] {
            let k = l
                .build_key(&[Datum::Int64(4)], &[Datum::Int64(msg)], 100)
                .unwrap();
            let inside = k.as_slice() >= lo.as_slice() && k.as_slice() < hi.as_slice();
            assert_eq!(inside, expect_in, "msg={msg}");
        }
        // A different device never falls in the range (hash differs).
        let other = l
            .build_key(&[Datum::Int64(5)], &[Datum::Int64(2)], 100)
            .unwrap();
        assert!(
            !(other.as_slice() >= lo.as_slice() && other.as_slice() < hi.as_slice()),
            "device=5 must be outside"
        );
    }

    #[test]
    fn exclusive_bounds() {
        let l = layout();
        let (lo, hi) = l
            .query_range(
                &[Datum::Int64(4)],
                &SortBound::Excluded(vec![Datum::Int64(1)]),
                &SortBound::Excluded(vec![Datum::Int64(3)]),
            )
            .unwrap();
        let hi = hi.unwrap();
        for (msg, expect_in) in [(1i64, false), (2, true), (3, false)] {
            let k = l
                .build_key(&[Datum::Int64(4)], &[Datum::Int64(msg)], 7)
                .unwrap();
            let inside = k.as_slice() >= lo.as_slice() && k.as_slice() < hi.as_slice();
            assert_eq!(inside, expect_in, "msg={msg}");
        }
    }

    #[test]
    fn unbounded_sort_covers_all_of_one_device() {
        let l = layout();
        let (lo, hi) = l
            .query_range(
                &[Datum::Int64(4)],
                &SortBound::Unbounded,
                &SortBound::Unbounded,
            )
            .unwrap();
        let hi = hi.unwrap();
        for msg in [i64::MIN, -1, 0, 12345, i64::MAX] {
            let k = l
                .build_key(&[Datum::Int64(4)], &[Datum::Int64(msg)], 3)
                .unwrap();
            assert!(k.as_slice() >= lo.as_slice() && k.as_slice() < hi.as_slice());
        }
    }

    #[test]
    fn prefix_successor_cases() {
        assert_eq!(prefix_successor(&[1, 2, 3]), Some(vec![1, 2, 4]));
        assert_eq!(prefix_successor(&[1, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_successor(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_successor(&[]), None);
    }

    #[test]
    fn split_with_string_columns() {
        let def = IndexDef::builder("s")
            .equality("name", ColumnType::Str)
            .sort("seq", ColumnType::Int64)
            .build()
            .unwrap();
        let l = KeyLayout::new(Arc::new(def));
        let k = l
            .build_key(&[Datum::Str("ab\0c".into())], &[Datum::Int64(7)], 1)
            .unwrap();
        let cols = l.decode_key_columns(&k).unwrap();
        assert_eq!(cols, vec![Datum::Str("ab\0c".into()), Datum::Int64(7)]);
    }

    #[test]
    fn pure_range_index_has_no_hash() {
        let def = IndexDef::builder("r")
            .sort("ts", ColumnType::Int64)
            .build()
            .unwrap();
        let l = KeyLayout::new(Arc::new(def));
        let k = l.build_key(&[], &[Datum::Int64(5)], 9).unwrap();
        assert_eq!(k.len(), 8 + 8); // sort col + beginTS, no hash
        assert_eq!(l.hash_of(&k), None);
        let (lo, hi) = l
            .query_range(&[], &SortBound::Unbounded, &SortBound::Unbounded)
            .unwrap();
        assert!(lo.is_empty());
        assert!(hi.is_none());
    }

    #[test]
    fn sort_bound_arity_checked() {
        let l = layout();
        let err = l.query_range(
            &[Datum::Int64(1)],
            &SortBound::Included(vec![Datum::Int64(1), Datum::Int64(2)]),
            &SortBound::Unbounded,
        );
        assert!(err.is_err(), "more bound values than sort columns");
    }
}
