//! Record identifiers.
//!
//! Footnote 2 of the paper: *"In Wildfire, an RID is identified by the
//! combination of zone, block ID, and record offset."* RIDs are **not**
//! stable across zones — when data evolves from the groomed to the
//! post-groomed zone it gets a new RID, which is precisely why Umzi cannot
//! use a WiscKey-style fixed-RID design and needs the evolve operation (§3).

use crate::error::RunError;
use crate::Result;

/// The zone a record (or index run) belongs to.
///
/// The paper presents two indexed zones; the representation supports up to
/// 256 so Umzi can be configured for *"other HTAP systems with arbitrary
/// number of zones"* (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneId(pub u8);

impl ZoneId {
    /// The groomed zone (transaction-friendly organization).
    pub const GROOMED: ZoneId = ZoneId(0);
    /// The post-groomed zone (analytics-friendly organization).
    pub const POST_GROOMED: ZoneId = ZoneId(1);
}

impl std::fmt::Display for ZoneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ZoneId::GROOMED => write!(f, "groomed"),
            ZoneId::POST_GROOMED => write!(f, "post-groomed"),
            ZoneId(n) => write!(f, "zone-{n}"),
        }
    }
}

/// Encoded length of a [`Rid`].
pub const RID_LEN: usize = 13;

/// A record identifier: `(zone, data block ID, record offset within block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Zone holding the data block.
    pub zone: ZoneId,
    /// Data-block ID within the zone.
    pub block_id: u64,
    /// Record offset (row number) within the block.
    pub offset: u32,
}

impl Rid {
    /// Construct a RID.
    pub fn new(zone: ZoneId, block_id: u64, offset: u32) -> Self {
        Self {
            zone,
            block_id,
            offset,
        }
    }

    /// Serialize into exactly [`RID_LEN`] bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.zone.0);
        out.extend_from_slice(&self.block_id.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
    }

    /// Deserialize from the front of `input`.
    pub fn decode(input: &[u8]) -> Result<Rid> {
        if input.len() < RID_LEN {
            return Err(RunError::Corrupt {
                context: "truncated RID".into(),
            });
        }
        Ok(Rid {
            zone: ZoneId(input[0]),
            block_id: u64::from_le_bytes(input[1..9].try_into().expect("8 bytes")),
            offset: u32::from_le_bytes(input[9..13].try_into().expect("4 bytes")),
        })
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.zone, self.block_id, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rid = Rid::new(ZoneId::POST_GROOMED, 0xDEAD_BEEF_CAFE, 42);
        let mut buf = Vec::new();
        rid.encode_into(&mut buf);
        assert_eq!(buf.len(), RID_LEN);
        assert_eq!(Rid::decode(&buf).unwrap(), rid);
    }

    #[test]
    fn truncated_rid_rejected() {
        assert!(Rid::decode(&[0u8; RID_LEN - 1]).is_err());
    }

    #[test]
    fn zone_display() {
        assert_eq!(ZoneId::GROOMED.to_string(), "groomed");
        assert_eq!(ZoneId::POST_GROOMED.to_string(), "post-groomed");
        assert_eq!(ZoneId(5).to_string(), "zone-5");
    }
}
