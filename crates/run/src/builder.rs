//! Building index runs (§5.2).
//!
//! *"This is done by simply scanning the data block and sorting index
//! entries ... Along with writing sorted index entries back to data blocks,
//! the offset array can be computed on-the-fly."*
//!
//! [`RunBuilder`] accepts entries in ascending key order (callers sort; the
//! builder verifies) and streams them into fixed-size data blocks while
//! accumulating the offset array, per-block entry counts and the synopsis in
//! one pass. `finish` assembles `header ∥ blocks` and writes the object
//! through [`TieredStorage`] with the durability the level requires.

use std::sync::Arc;

use bytes::Bytes;
use umzi_encoding::{hash64, hash_prefix};
use umzi_storage::{Durability, TieredStorage};

use crate::entry::IndexEntry;
use crate::error::RunError;
use crate::format::RunHeader;
use crate::key::KeyLayout;
use crate::reader::Run;
use crate::rid::ZoneId;
use crate::synopsis::Synopsis;
use crate::Result;

/// Identity and placement of the run being built.
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Unique run ID within the index instance.
    pub run_id: u64,
    /// Zone the run belongs to.
    pub zone: ZoneId,
    /// Merge level within the zone.
    pub level: u32,
    /// Smallest covered groomed-block ID.
    pub groomed_lo: u64,
    /// Largest covered groomed-block ID.
    pub groomed_hi: u64,
    /// Post-groom sequence number (post-groomed runs; 0 otherwise).
    pub psn: u64,
    /// Offset-array width in bits; forced to 0 for indexes without equality
    /// columns.
    pub offset_bits: u8,
    /// Persisted ancestor runs to record (§6.1); empty for ordinary runs.
    pub ancestors: Vec<String>,
}

/// Framing overhead per entry inside a data block: two u16 length fields.
const ENTRY_FRAME: usize = 4;
/// Per-entry trailer cost (one u16 offset) plus the block's u16 count field.
const TRAILER_SLOT: usize = 2;

/// Streaming builder for one index run.
pub struct RunBuilder {
    layout: KeyLayout,
    params: RunParams,
    chunk_size: usize,
    /// Finished data blocks (each exactly `chunk_size` bytes).
    blocks: Vec<Bytes>,
    /// Cumulative entry counts per finished block.
    prefix_counts: Vec<u64>,
    /// First key of each finished block (the fence index).
    fence_keys: Vec<Vec<u8>>,
    /// `hash64` of each finished block, for read-path integrity checks.
    block_checksums: Vec<u64>,
    cur_data: Vec<u8>,
    cur_offsets: Vec<u16>,
    /// First key of the block currently being filled.
    cur_first_key: Vec<u8>,
    /// Entries per offset-array bucket.
    bucket_counts: Vec<u64>,
    synopsis: Synopsis,
    last_key: Vec<u8>,
    count: u64,
}

impl RunBuilder {
    /// Start building a run. `chunk_size` must match the storage hierarchy's
    /// chunk size (data blocks are cache-residency units).
    pub fn new(layout: KeyLayout, mut params: RunParams, chunk_size: usize) -> Self {
        if !layout.def().has_hash() {
            params.offset_bits = 0; // no hash column ⇒ no offset array
        }
        let buckets = if params.offset_bits > 0 {
            1usize << params.offset_bits
        } else {
            0
        };
        let n_key_cols = layout.def().key_column_count();
        Self {
            layout,
            params,
            chunk_size,
            blocks: Vec::new(),
            prefix_counts: Vec::new(),
            fence_keys: Vec::new(),
            block_checksums: Vec::new(),
            cur_data: Vec::with_capacity(chunk_size),
            cur_offsets: Vec::new(),
            cur_first_key: Vec::new(),
            bucket_counts: vec![0; buckets],
            synopsis: Synopsis::empty(n_key_cols),
            last_key: Vec::new(),
            count: 0,
        }
    }

    /// Number of entries pushed so far.
    pub fn entry_count(&self) -> u64 {
        self.count
    }

    /// Push a fully-encoded entry. Keys must arrive in ascending order
    /// (equal keys are tolerated: identical versions may legitimately meet
    /// in cross-zone merges).
    pub fn push_raw(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.count > 0 && key < self.last_key.as_slice() {
            return Err(RunError::OutOfOrder {
                ordinal: self.count,
            });
        }

        let need = ENTRY_FRAME + key.len() + value.len();
        let trailer = (self.cur_offsets.len() + 1) * TRAILER_SLOT + 2;
        if self.cur_data.len() + need + trailer > self.chunk_size {
            if self.cur_offsets.is_empty() {
                return Err(RunError::EntryTooLarge {
                    size: need,
                    capacity: self.chunk_size - TRAILER_SLOT - 2,
                });
            }
            self.seal_block();
        }

        if self.cur_offsets.is_empty() {
            self.cur_first_key.clear();
            self.cur_first_key.extend_from_slice(key);
        }
        self.cur_offsets.push(self.cur_data.len() as u16);
        self.cur_data
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.cur_data.extend_from_slice(key);
        self.cur_data
            .extend_from_slice(&(value.len() as u16).to_le_bytes());
        self.cur_data.extend_from_slice(value);

        // Offset array, synopsis and timestamp range, all on the fly.
        if self.params.offset_bits > 0 {
            let bucket = self
                .layout
                .bucket_of(key, self.params.offset_bits)
                .expect("hash present when offset_bits > 0");
            self.bucket_counts[bucket as usize] += 1;
        }
        let ranges = self.layout.split_key_columns(key)?;
        let col_slices: Vec<&[u8]> = ranges.iter().map(|r| &key[r.clone()]).collect();
        let begin_ts = KeyLayout::begin_ts_of(key)?;
        self.synopsis.observe(&col_slices, begin_ts);

        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.count += 1;
        Ok(())
    }

    /// Push an owned [`IndexEntry`].
    pub fn push(&mut self, entry: &IndexEntry) -> Result<()> {
        self.push_raw(&entry.key, &entry.value)
    }

    fn seal_block(&mut self) {
        let mut block = std::mem::replace(&mut self.cur_data, Vec::with_capacity(self.chunk_size));
        let offsets = std::mem::take(&mut self.cur_offsets);
        let trailer_len = offsets.len() * TRAILER_SLOT + 2;
        // Entries at the front, trailer at the back, zero padding between.
        block.resize(self.chunk_size - trailer_len, 0);
        for &o in &offsets {
            block.extend_from_slice(&o.to_le_bytes());
        }
        block.extend_from_slice(&(offsets.len() as u16).to_le_bytes());
        debug_assert_eq!(block.len(), self.chunk_size);

        let prev = self.prefix_counts.last().copied().unwrap_or(0);
        self.prefix_counts.push(prev + offsets.len() as u64);
        self.fence_keys
            .push(std::mem::take(&mut self.cur_first_key));
        self.block_checksums.push(hash64(&block));
        self.blocks.push(Bytes::from(block));
    }

    /// Finalize: write the run object named `name` and return an opened
    /// [`Run`]. `write_through` populates the SSD cache with the data blocks
    /// (§6.2 write-through policy below the current cached level).
    pub fn finish(
        mut self,
        storage: &Arc<TieredStorage>,
        name: &str,
        durability: Durability,
        write_through: bool,
    ) -> Result<Run> {
        if !self.cur_offsets.is_empty() {
            self.seal_block();
        }

        // Offset array: bucket_counts → first-ordinal-per-bucket, i.e.
        // offset[i] = #entries with bucket < i (cf. Figure 2b).
        let offset_array = if self.params.offset_bits > 0 {
            let mut out = Vec::with_capacity(self.bucket_counts.len());
            let mut acc = 0u64;
            for &c in &self.bucket_counts {
                out.push(acc);
                acc += c;
            }
            out
        } else {
            Vec::new()
        };

        let header = RunHeader {
            run_id: self.params.run_id,
            index_fingerprint: self.layout.def().fingerprint(),
            zone: self.params.zone,
            level: self.params.level,
            groomed_lo: self.params.groomed_lo,
            groomed_hi: self.params.groomed_hi,
            psn: self.params.psn,
            entry_count: self.count,
            data_block_size: self.chunk_size as u32,
            n_data_blocks: self.blocks.len() as u32,
            header_chunks: 0, // computed during serialization
            offset_bits: self.params.offset_bits,
            offset_array,
            block_prefix_counts: self.prefix_counts.clone(),
            fence_keys: std::mem::take(&mut self.fence_keys),
            block_checksums: std::mem::take(&mut self.block_checksums),
            synopsis: self.synopsis.clone(),
            ancestors: self.params.ancestors.clone(),
        };

        let header_bytes = header.serialize(self.chunk_size);
        let header_chunks = (header_bytes.len() / self.chunk_size) as u32;
        let mut object =
            Vec::with_capacity(header_bytes.len() + self.blocks.len() * self.chunk_size);
        object.extend_from_slice(&header_bytes);
        for b in &self.blocks {
            object.extend_from_slice(b);
        }

        let handle = storage.create_object(
            name,
            Bytes::from(object),
            durability,
            header_chunks,
            write_through,
        )?;

        // Re-parse so the opened header carries the computed header_chunks.
        let mut final_header = header;
        final_header.header_chunks = header_chunks;
        Ok(Run::from_parts(
            Arc::clone(storage),
            handle,
            final_header,
            self.layout,
            name,
        ))
    }
}

#[allow(unused_imports)]
use hash_prefix as _; // hash_prefix is used via KeyLayout::bucket_of

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rid::Rid;
    use umzi_encoding::{ColumnType, Datum, IndexDef};

    fn layout() -> KeyLayout {
        let def = IndexDef::builder("iot")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .build()
            .unwrap();
        KeyLayout::new(Arc::new(def))
    }

    fn params() -> RunParams {
        RunParams {
            run_id: 1,
            zone: ZoneId::GROOMED,
            level: 0,
            groomed_lo: 0,
            groomed_hi: 0,
            psn: 0,
            offset_bits: 4,
            ancestors: Vec::new(),
        }
    }

    fn entry(l: &KeyLayout, device: i64, msg: i64, ts: u64) -> IndexEntry {
        IndexEntry::new(
            l,
            &[Datum::Int64(device)],
            &[Datum::Int64(msg)],
            ts,
            Rid::new(ZoneId::GROOMED, 0, 0),
            &[],
        )
        .unwrap()
    }

    fn sorted_entries(l: &KeyLayout, n: i64) -> Vec<IndexEntry> {
        let mut es: Vec<IndexEntry> = (0..n)
            .map(|i| entry(l, i % 16, i / 16, 100 + i as u64))
            .collect();
        es.sort_by(|a, b| a.key.cmp(&b.key));
        es
    }

    #[test]
    fn build_and_reopen() {
        let storage = Arc::new(TieredStorage::in_memory());
        let l = layout();
        let mut b = RunBuilder::new(l.clone(), params(), storage.chunk_size());
        for e in sorted_entries(&l, 1000) {
            b.push(&e).unwrap();
        }
        assert_eq!(b.entry_count(), 1000);
        let run = b
            .finish(&storage, "runs/r1", Durability::Persisted, true)
            .unwrap();
        assert_eq!(run.entry_count(), 1000);
        assert!(run.data_block_count() >= 1);

        // Reopen from storage and compare headers.
        let reopened = Run::open(Arc::clone(&storage), "runs/r1", l).unwrap();
        assert_eq!(reopened.header(), run.header());
    }

    #[test]
    fn rejects_out_of_order() {
        let storage = Arc::new(TieredStorage::in_memory());
        let l = layout();
        let mut b = RunBuilder::new(l.clone(), params(), storage.chunk_size());
        b.push(&entry(&l, 5, 5, 1)).unwrap();
        let smaller = entry(&l, 5, 4, 1);
        // Only fails if the key actually sorts lower (hash order), so force
        // a guaranteed-lower key: same entry with higher beginTS sorts lower,
        // so pushing the SAME entry again after it must fail.
        let first = entry(&l, 5, 5, 2); // newer ts ⇒ sorts before ts=1
        let err = b.push(&first);
        assert!(matches!(err, Err(RunError::OutOfOrder { .. })));
        let _ = smaller;
    }

    #[test]
    fn equal_keys_tolerated() {
        let storage = Arc::new(TieredStorage::in_memory());
        let l = layout();
        let mut b = RunBuilder::new(l.clone(), params(), storage.chunk_size());
        let e = entry(&l, 1, 1, 7);
        b.push(&e).unwrap();
        b.push(&e).unwrap();
        assert_eq!(b.entry_count(), 2);
    }

    #[test]
    fn entry_too_large_rejected() {
        let def = IndexDef::builder("s")
            .sort("blob", ColumnType::Bytes)
            .build()
            .unwrap();
        let l = KeyLayout::new(Arc::new(def));
        let storage = Arc::new(TieredStorage::in_memory());
        let mut b = RunBuilder::new(l.clone(), params(), storage.chunk_size());
        let huge = vec![1u8; storage.chunk_size()];
        let key = l.build_key(&[], &[Datum::Bytes(huge)], 1).unwrap();
        assert!(matches!(
            b.push_raw(&key, b"v"),
            Err(RunError::EntryTooLarge { .. })
        ));
    }

    #[test]
    fn empty_run_is_valid() {
        let storage = Arc::new(TieredStorage::in_memory());
        let l = layout();
        let b = RunBuilder::new(l.clone(), params(), storage.chunk_size());
        let run = b
            .finish(&storage, "runs/empty", Durability::Persisted, false)
            .unwrap();
        assert_eq!(run.entry_count(), 0);
        assert_eq!(run.data_block_count(), 0);
    }

    #[test]
    fn offset_array_is_cumulative() {
        let storage = Arc::new(TieredStorage::in_memory());
        let l = layout();
        let mut b = RunBuilder::new(l.clone(), params(), storage.chunk_size());
        for e in sorted_entries(&l, 256) {
            b.push(&e).unwrap();
        }
        let run = b
            .finish(&storage, "runs/oa", Durability::Persisted, true)
            .unwrap();
        let oa = &run.header().offset_array;
        assert_eq!(oa.len(), 16);
        assert_eq!(oa[0], 0);
        assert!(oa.windows(2).all(|w| w[0] <= w[1]), "monotonic");
        // Every entry's bucket range must contain its ordinal.
        for ord in 0..run.entry_count() {
            let e = run.entry(ord).unwrap();
            let bucket = l.bucket_of(&e.key, 4).unwrap() as usize;
            let lo = oa[bucket];
            let hi = if bucket + 1 < oa.len() {
                oa[bucket + 1]
            } else {
                run.entry_count()
            };
            assert!(
                (lo..hi).contains(&ord),
                "ordinal {ord} outside bucket {bucket} range [{lo},{hi})"
            );
        }
    }

    #[test]
    fn non_persisted_run_never_hits_shared() {
        let storage = Arc::new(TieredStorage::in_memory());
        let l = layout();
        let mut b = RunBuilder::new(l.clone(), params(), storage.chunk_size());
        for e in sorted_entries(&l, 100) {
            b.push(&e).unwrap();
        }
        let run = b
            .finish(&storage, "runs/np", Durability::NonPersisted, false)
            .unwrap();
        assert_eq!(storage.stats().shared.writes, 0);
        assert!(!run.entry(0).unwrap().key.is_empty());
    }
}
