//! On-disk run header serialization.
//!
//! Hand-rolled little-endian binary format — self-describing (magic +
//! version), checksummed, and stable. Layout:
//!
//! ```text
//! magic "UMZIRN01"            8 B
//! header_len                  u32   total header bytes incl. checksum
//! version                     u16
//! flags                       u16   bit 0: has offset array
//! index_fingerprint           u64
//! run_id                      u64
//! zone                        u8
//! level                       u32
//! groomed_lo, groomed_hi      u64 × 2   covered groomed-block-ID range
//! psn                         u64   post-groom sequence number (PG runs)
//! entry_count                 u64
//! data_block_size             u32
//! n_data_blocks               u32
//! header_chunks               u32   chunks occupied by this header
//! offset_bits                 u8
//! offset_array                u64 × 2^offset_bits (if flag set)
//! block_prefix_counts         u64 × n_data_blocks (cumulative entries)
//! fence_keys                  len-prefixed bytes × n_data_blocks (if flag
//!                             set): the first key of each data block
//! block_checksums             u64 × n_data_blocks (if flag set): hash64 of
//!                             each raw data block, for read-path integrity
//! synopsis                    min/max beginTS + per-column byte ranges
//! ancestors                   persisted ancestor run names (§6.1)
//! checksum                    u64   hash64 of all preceding bytes
//! ```
//!
//! The fence index (flag bit 1) lets a searcher pick the one data block that
//! can contain the first key ≥ a bound without touching storage; headers
//! written before the flag existed parse fine (empty `fence_keys`) and the
//! reader reconstructs the fences lazily from block first-entries.

use umzi_encoding::hash64;

use crate::error::RunError;
use crate::rid::ZoneId;
use crate::synopsis::{ColumnRange, Synopsis};
use crate::Result;

/// Current run-format version.
pub const FORMAT_VERSION: u16 = 1;

const MAGIC: &[u8; 8] = b"UMZIRN01";
const FLAG_HAS_OFFSET_ARRAY: u16 = 1;
const FLAG_HAS_FENCE_INDEX: u16 = 2;
const FLAG_HAS_BLOCK_CHECKSUMS: u16 = 4;
/// Byte offset of the `header_len` field.
const HEADER_LEN_OFFSET: usize = 8;

/// Parsed run header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunHeader {
    /// Unique run ID within the index instance.
    pub run_id: u64,
    /// Fingerprint of the index definition the run was built with.
    pub index_fingerprint: u64,
    /// Zone the run belongs to.
    pub zone: ZoneId,
    /// Merge level within the zone.
    pub level: u32,
    /// Smallest groomed-block ID covered.
    pub groomed_lo: u64,
    /// Largest groomed-block ID covered.
    pub groomed_hi: u64,
    /// Post-groom sequence number that produced this run (post-groomed runs
    /// only; 0 for groomed-zone runs).
    pub psn: u64,
    /// Number of entries.
    pub entry_count: u64,
    /// Data-block size in bytes (== the storage chunk size).
    pub data_block_size: u32,
    /// Number of data blocks.
    pub n_data_blocks: u32,
    /// Number of leading storage chunks occupied by this header.
    pub header_chunks: u32,
    /// Offset-array width in bits (0 = none).
    pub offset_bits: u8,
    /// Offset array: entry ordinal of the first key whose hash prefix is
    /// ≥ the bucket index; length `2^offset_bits` (empty when no hash).
    pub offset_array: Vec<u64>,
    /// `block_prefix_counts[b]` = total entries in blocks `0..=b`.
    pub block_prefix_counts: Vec<u64>,
    /// `fence_keys[b]` = full key of the first entry in block `b`. Empty for
    /// runs serialized before the fence index existed (the reader rebuilds
    /// them lazily); otherwise length `n_data_blocks`.
    pub fence_keys: Vec<Vec<u8>>,
    /// `block_checksums[b]` = `hash64` of raw data block `b`, verified on
    /// every cache-miss block read. Empty for runs serialized before block
    /// checksums existed (those runs skip verification); otherwise length
    /// `n_data_blocks`.
    pub block_checksums: Vec<u64>,
    /// Key-column min/max synopsis.
    pub synopsis: Synopsis,
    /// Persisted ancestor runs (non-persisted-level recovery, §6.1).
    pub ancestors: Vec<String>,
}

impl RunHeader {
    /// Serialize, computing `header_chunks` for the given chunk size and
    /// padding the output to a chunk boundary.
    pub fn serialize(&self, chunk_size: usize) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes_raw(MAGIC);
        w.u32(0); // header_len patched below
        w.u16(FORMAT_VERSION);
        let mut flags = if self.offset_bits > 0 {
            FLAG_HAS_OFFSET_ARRAY
        } else {
            0
        };
        if !self.fence_keys.is_empty() {
            flags |= FLAG_HAS_FENCE_INDEX;
        }
        if !self.block_checksums.is_empty() {
            flags |= FLAG_HAS_BLOCK_CHECKSUMS;
        }
        w.u16(flags);
        w.u64(self.index_fingerprint);
        w.u64(self.run_id);
        w.u8(self.zone.0);
        w.u32(self.level);
        w.u64(self.groomed_lo);
        w.u64(self.groomed_hi);
        w.u64(self.psn);
        w.u64(self.entry_count);
        w.u32(self.data_block_size);
        w.u32(self.n_data_blocks);
        let header_chunks_at = w.len();
        w.u32(0); // header_chunks patched below
        w.u8(self.offset_bits);
        if self.offset_bits > 0 {
            debug_assert_eq!(self.offset_array.len(), 1usize << self.offset_bits);
            for &o in &self.offset_array {
                w.u64(o);
            }
        }
        debug_assert_eq!(self.block_prefix_counts.len(), self.n_data_blocks as usize);
        for &c in &self.block_prefix_counts {
            w.u64(c);
        }
        if !self.fence_keys.is_empty() {
            debug_assert_eq!(self.fence_keys.len(), self.n_data_blocks as usize);
            for k in &self.fence_keys {
                w.bytes(k);
            }
        }
        if !self.block_checksums.is_empty() {
            debug_assert_eq!(self.block_checksums.len(), self.n_data_blocks as usize);
            for &c in &self.block_checksums {
                w.u64(c);
            }
        }
        // Synopsis.
        w.u64(self.synopsis.min_begin_ts());
        w.u64(self.synopsis.max_begin_ts());
        w.u64(self.synopsis.entry_count());
        w.u16(self.synopsis.columns().len() as u16);
        for col in self.synopsis.columns() {
            w.bytes(&col.min);
            w.bytes(&col.max);
        }
        // Ancestors.
        w.u32(self.ancestors.len() as u32);
        for a in &self.ancestors {
            w.bytes(a.as_bytes());
        }

        let mut buf = w.finish();
        let total_len = buf.len() + 8; // + checksum
        let header_chunks = total_len.div_ceil(chunk_size) as u32;
        buf[HEADER_LEN_OFFSET..HEADER_LEN_OFFSET + 4]
            .copy_from_slice(&(total_len as u32).to_le_bytes());
        buf[header_chunks_at..header_chunks_at + 4].copy_from_slice(&header_chunks.to_le_bytes());
        let checksum = hash64(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        // Pad to the chunk boundary so data block 0 starts on a chunk.
        buf.resize(header_chunks as usize * chunk_size, 0);
        buf
    }

    /// Peek at the total header length (pre-padding) from the first bytes of
    /// an object, so callers know how many chunks to fetch before parsing.
    pub fn peek_len(first_chunk: &[u8]) -> Result<usize> {
        if first_chunk.len() < HEADER_LEN_OFFSET + 4 {
            return Err(RunError::Corrupt {
                context: "object shorter than magic".into(),
            });
        }
        if &first_chunk[..8] != MAGIC {
            return Err(RunError::Corrupt {
                context: "bad magic".into(),
            });
        }
        let len = u32::from_le_bytes(
            first_chunk[HEADER_LEN_OFFSET..HEADER_LEN_OFFSET + 4]
                .try_into()
                .expect("4 bytes"),
        );
        Ok(len as usize)
    }

    /// Parse a header from `buf` (which must contain at least `peek_len`
    /// bytes).
    pub fn deserialize(buf: &[u8]) -> Result<RunHeader> {
        let total_len = Self::peek_len(buf)?;
        if buf.len() < total_len || total_len < 8 + 4 + 8 {
            return Err(RunError::Corrupt {
                context: "truncated header".into(),
            });
        }
        let body = &buf[..total_len - 8];
        let stored_checksum =
            u64::from_le_bytes(buf[total_len - 8..total_len].try_into().expect("8 bytes"));
        if hash64(body) != stored_checksum {
            return Err(RunError::Corrupt {
                context: "header checksum mismatch".into(),
            });
        }

        let mut r = Reader { buf: body, pos: 8 };
        let _header_len = r.u32()?;
        let version = r.u16()?;
        if version != FORMAT_VERSION {
            return Err(RunError::Corrupt {
                context: format!("unsupported run format version {version}"),
            });
        }
        let flags = r.u16()?;
        let index_fingerprint = r.u64()?;
        let run_id = r.u64()?;
        let zone = ZoneId(r.u8()?);
        let level = r.u32()?;
        let groomed_lo = r.u64()?;
        let groomed_hi = r.u64()?;
        let psn = r.u64()?;
        let entry_count = r.u64()?;
        let data_block_size = r.u32()?;
        let n_data_blocks = r.u32()?;
        let header_chunks = r.u32()?;
        let offset_bits = r.u8()?;
        let offset_array = if flags & FLAG_HAS_OFFSET_ARRAY != 0 {
            if offset_bits == 0 || offset_bits > 24 {
                return Err(RunError::Corrupt {
                    context: format!("implausible offset_bits {offset_bits}"),
                });
            }
            let n = 1usize << offset_bits;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u64()?);
            }
            v
        } else {
            Vec::new()
        };
        let mut block_prefix_counts = Vec::with_capacity(n_data_blocks as usize);
        for _ in 0..n_data_blocks {
            block_prefix_counts.push(r.u64()?);
        }
        let fence_keys = if flags & FLAG_HAS_FENCE_INDEX != 0 {
            let mut v = Vec::with_capacity(n_data_blocks as usize);
            for _ in 0..n_data_blocks {
                v.push(r.bytes()?.to_vec());
            }
            v
        } else {
            Vec::new()
        };
        let block_checksums = if flags & FLAG_HAS_BLOCK_CHECKSUMS != 0 {
            let mut v = Vec::with_capacity(n_data_blocks as usize);
            for _ in 0..n_data_blocks {
                v.push(r.u64()?);
            }
            v
        } else {
            Vec::new()
        };
        let min_begin_ts = r.u64()?;
        let max_begin_ts = r.u64()?;
        let syn_count = r.u64()?;
        let n_cols = r.u16()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let min = r.bytes()?.to_vec();
            let max = r.bytes()?.to_vec();
            columns.push(ColumnRange { min, max });
        }
        let synopsis = Synopsis::from_parts(columns, min_begin_ts, max_begin_ts, syn_count);
        let n_ancestors = r.u32()? as usize;
        let mut ancestors = Vec::with_capacity(n_ancestors);
        for _ in 0..n_ancestors {
            let name = std::str::from_utf8(r.bytes()?)
                .map_err(|_| RunError::Corrupt {
                    context: "ancestor name not UTF-8".into(),
                })?
                .to_owned();
            ancestors.push(name);
        }

        Ok(RunHeader {
            run_id,
            index_fingerprint,
            zone,
            level,
            groomed_lo,
            groomed_hi,
            psn,
            entry_count,
            data_block_size,
            n_data_blocks,
            header_chunks,
            offset_bits,
            offset_array,
            block_prefix_counts,
            fence_keys,
            block_checksums,
            synopsis,
            ancestors,
        })
    }
}

/// Little-endian byte writer.
#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn len(&self) -> usize {
        self.buf.len()
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Length-prefixed byte string.
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    /// Raw bytes, no prefix.
    fn bytes_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian byte reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(RunError::Corrupt {
                context: "header field truncated".into(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> RunHeader {
        let mut synopsis = Synopsis::empty(2);
        synopsis.observe(&[b"aa".as_slice(), b"x".as_slice()], 100);
        synopsis.observe(&[b"zz".as_slice(), b"y".as_slice()], 200);
        RunHeader {
            run_id: 7,
            index_fingerprint: 0xABCD,
            zone: ZoneId::GROOMED,
            level: 2,
            groomed_lo: 11,
            groomed_hi: 15,
            psn: 0,
            entry_count: 1234,
            data_block_size: 4096,
            n_data_blocks: 3,
            header_chunks: 0, // computed by serialize
            offset_bits: 3,
            offset_array: vec![0, 1, 2, 2, 2, 6, 6, 6],
            block_prefix_counts: vec![500, 1000, 1234],
            fence_keys: vec![b"aaa".to_vec(), b"mmm".to_vec(), b"zzz".to_vec()],
            block_checksums: vec![0x1111, 0x2222, 0x3333],
            synopsis,
            ancestors: vec!["runs/old-1".into(), "runs/old-2".into()],
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample_header();
        let buf = h.serialize(4096);
        assert_eq!(buf.len() % 4096, 0, "padded to chunk boundary");
        let parsed = RunHeader::deserialize(&buf).unwrap();
        assert_eq!(parsed.run_id, 7);
        assert_eq!(parsed.offset_array, h.offset_array);
        assert_eq!(parsed.block_prefix_counts, h.block_prefix_counts);
        assert_eq!(parsed.fence_keys, h.fence_keys);
        assert_eq!(parsed.block_checksums, h.block_checksums);
        assert_eq!(parsed.synopsis, h.synopsis);
        assert_eq!(parsed.ancestors, h.ancestors);
        assert_eq!(parsed.header_chunks, 1);
        assert_eq!(parsed.groomed_lo, 11);
        assert_eq!(parsed.groomed_hi, 15);
    }

    #[test]
    fn header_spanning_multiple_chunks() {
        let mut h = sample_header();
        h.offset_bits = 12; // 4096 × 8 B = 32 KiB offset array
        h.offset_array = (0..4096u64).collect();
        let chunk = 4096;
        let buf = h.serialize(chunk);
        let parsed = RunHeader::deserialize(&buf).unwrap();
        assert!(parsed.header_chunks > 1);
        assert_eq!(buf.len(), parsed.header_chunks as usize * chunk);
        assert_eq!(parsed.offset_array.len(), 4096);
    }

    #[test]
    fn legacy_header_without_fence_keys_roundtrips() {
        // Runs serialized before the fence index existed carry no fence
        // section; the flag bit stays clear and parsing yields empty fences.
        let mut h = sample_header();
        h.fence_keys = Vec::new();
        let buf = h.serialize(4096);
        let parsed = RunHeader::deserialize(&buf).unwrap();
        assert!(parsed.fence_keys.is_empty());
        assert_eq!(parsed.block_prefix_counts, h.block_prefix_counts);
        assert_eq!(parsed.synopsis, h.synopsis);
        assert_eq!(parsed.ancestors, h.ancestors);
    }

    #[test]
    fn legacy_header_without_block_checksums_roundtrips() {
        // Runs serialized before block checksums existed carry no checksum
        // section; the flag bit stays clear and the reader simply skips
        // verification for them.
        let mut h = sample_header();
        h.block_checksums = Vec::new();
        let buf = h.serialize(4096);
        let parsed = RunHeader::deserialize(&buf).unwrap();
        assert!(parsed.block_checksums.is_empty());
        assert_eq!(parsed.fence_keys, h.fence_keys);
        assert_eq!(parsed.synopsis, h.synopsis);
        assert_eq!(parsed.ancestors, h.ancestors);
    }

    #[test]
    fn peek_len_matches() {
        let h = sample_header();
        let buf = h.serialize(4096);
        let len = RunHeader::peek_len(&buf).unwrap();
        assert!(len <= buf.len());
        // The checksum sits at the end of the unpadded header.
        assert!(RunHeader::deserialize(&buf[..len]).is_ok());
    }

    #[test]
    fn corruption_detected() {
        let h = sample_header();
        let mut buf = h.serialize(4096);
        // Flip a byte inside the synopsis region.
        buf[200] ^= 0xFF;
        assert!(matches!(
            RunHeader::deserialize(&buf),
            Err(RunError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = sample_header().serialize(4096);
        buf[0] = b'X';
        assert!(RunHeader::peek_len(&buf).is_err());
    }

    #[test]
    fn version_check() {
        let mut buf = sample_header().serialize(4096);
        // version field at offset 12; bump it and fix checksum so only the
        // version check can fire.
        buf[12] = 99;
        let len = RunHeader::peek_len(&buf).unwrap();
        let body_len = len - 8;
        let sum = hash64(&buf[..body_len]);
        buf[body_len..len].copy_from_slice(&sum.to_le_bytes());
        let err = RunHeader::deserialize(&buf).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
