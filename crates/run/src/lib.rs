//! The Umzi index-run format (§4.2 of the paper).
//!
//! A run is a sorted table of index entries, physically stored as one
//! *header block* plus one or more *fixed-size data blocks*:
//!
//! ```text
//! object = [ header (padded to chunk boundary) ][ data block 0 ][ data block 1 ] …
//! ```
//!
//! Each entry is a memcmp-comparable key plus a value:
//!
//! ```text
//! key   = hash(equality cols)   8 bytes, iff the index has equality columns
//!       ∥ enc(equality cols)    order-preserving
//!       ∥ enc(sort cols)        order-preserving
//!       ∥ ¬beginTS              8 bytes — DESCENDING, newest version first
//! value = RID (13 bytes) ∥ enc(included cols)
//! ```
//!
//! The header carries (§4.2): the number of data blocks, the merge level and
//! zone, the covered groomed-block-ID range, a per-key-column min/max
//! *synopsis* used to prune runs during queries, and — when equality columns
//! exist — an *offset array* of `2^n` entry ordinals mapping the most
//! significant `n` bits of the hash to a narrowed binary-search range
//! (Figure 2). It also records *ancestor runs* for the non-persisted-level
//! recovery protocol (§6.1).
//!
//! Data blocks are sized to the storage chunk so cache residency is decided
//! block-by-block, and each carries an offset trailer for O(1) in-block slot
//! addressing; the header's per-block entry-count prefix sums map a global
//! entry ordinal to `(block, slot)` in `O(log #blocks)`.
//!
//! ```
//! use std::sync::Arc;
//! use umzi_encoding::{ColumnType, Datum, IndexDef};
//! use umzi_run::{IndexEntry, KeyLayout, Rid, RunBuilder, RunParams, RunSearcher, ZoneId};
//! use umzi_storage::{Durability, TieredStorage};
//!
//! let storage = Arc::new(TieredStorage::in_memory());
//! let def = IndexDef::builder("iot")
//!     .equality("device", ColumnType::Int64)
//!     .sort("msg", ColumnType::Int64)
//!     .build()
//!     .unwrap();
//! let layout = KeyLayout::new(Arc::new(def));
//!
//! let mut entries: Vec<IndexEntry> = (0..100)
//!     .map(|i| {
//!         IndexEntry::new(
//!             &layout,
//!             &[Datum::Int64(i % 4)],
//!             &[Datum::Int64(i)],
//!             100 + i as u64,
//!             Rid::new(ZoneId::GROOMED, 1, i as u32),
//!             &[],
//!         )
//!         .unwrap()
//!     })
//!     .collect();
//! entries.sort_by(|a, b| a.key.cmp(&b.key));
//!
//! let params = RunParams {
//!     run_id: 1, zone: ZoneId::GROOMED, level: 0,
//!     groomed_lo: 1, groomed_hi: 1, psn: 0, offset_bits: 4, ancestors: vec![],
//! };
//! let mut builder = RunBuilder::new(layout.clone(), params, storage.chunk_size());
//! for e in &entries { builder.push(e).unwrap(); }
//! let run = builder.finish(&storage, "runs/demo", Durability::Persisted, true).unwrap();
//!
//! // Point lookup for (device = 2, msg = 6) at snapshot 200.
//! let prefix = {
//!     let mut p = layout.equality_prefix(&[Datum::Int64(2)]).unwrap();
//!     umzi_encoding::encode_datum(&Datum::Int64(6), &mut p);
//!     p
//! };
//! let hit = RunSearcher::new(&run).lookup(&prefix, None, 200).unwrap().unwrap();
//! assert_eq!(hit.begin_ts, 106);
//! ```

pub mod builder;
pub mod entry;
pub mod error;
pub mod format;
pub mod key;
pub mod reader;
pub mod rid;
pub mod search;
pub mod synopsis;

pub use builder::{RunBuilder, RunParams};
pub use entry::{EntryRef, IndexEntry};
pub use error::RunError;
pub use format::{RunHeader, FORMAT_VERSION};
pub use key::{KeyLayout, SortBound};
pub use reader::{DataBlock, LocatedBlock, Run};
pub use rid::{Rid, ZoneId, RID_LEN};
pub use search::{RunRangeIter, RunSearcher, SearchHit};
pub use synopsis::Synopsis;
pub use umzi_storage::AccessPattern;

/// Result alias for run-format operations.
pub type Result<T> = std::result::Result<T, RunError>;
