//! Property-based tests for the order-preserving key codec.
//!
//! The codec's contract is the foundation of the whole index: binary search,
//! synopsis pruning and reconciliation all assume `memcmp(enc(a), enc(b))`
//! equals the natural order of `(a, b)`.

use proptest::prelude::*;
use umzi_encoding::{
    decode_datum, encode_datum, encode_datums, hash64, hash_prefix, Datum, DatumKind,
};

fn arb_datum() -> impl Strategy<Value = Datum> {
    prop_oneof![
        any::<i64>().prop_map(Datum::Int64),
        any::<u64>().prop_map(Datum::UInt64),
        any::<f64>().prop_map(Datum::Float64),
        ".{0,24}".prop_map(Datum::Str),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Datum::Bytes),
        any::<bool>().prop_map(Datum::Bool),
        any::<i64>().prop_map(Datum::Timestamp),
    ]
}

/// A pair of datums of the same kind, for order-preservation checks.
fn arb_same_kind_pair() -> impl Strategy<Value = (Datum, Datum)> {
    prop_oneof![
        (any::<i64>(), any::<i64>()).prop_map(|(a, b)| (Datum::Int64(a), Datum::Int64(b))),
        (any::<u64>(), any::<u64>()).prop_map(|(a, b)| (Datum::UInt64(a), Datum::UInt64(b))),
        (any::<f64>(), any::<f64>()).prop_map(|(a, b)| (Datum::Float64(a), Datum::Float64(b))),
        (".{0,16}", ".{0,16}").prop_map(|(a, b)| (Datum::Str(a), Datum::Str(b))),
        (
            proptest::collection::vec(any::<u8>(), 0..16),
            proptest::collection::vec(any::<u8>(), 0..16)
        )
            .prop_map(|(a, b)| (Datum::Bytes(a), Datum::Bytes(b))),
    ]
}

fn enc(d: &Datum) -> Vec<u8> {
    let mut out = Vec::new();
    encode_datum(d, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip(d in arb_datum()) {
        let e = enc(&d);
        let (back, used) = decode_datum(d.kind(), &e).unwrap();
        prop_assert_eq!(used, e.len());
        prop_assert_eq!(back, d);
    }

    #[test]
    fn order_preserved((a, b) in arb_same_kind_pair()) {
        prop_assert_eq!(enc(&a).cmp(&enc(&b)), a.cmp(&b));
    }

    #[test]
    fn composite_order_preserved(
        a in proptest::collection::vec(any::<i64>().prop_map(Datum::Int64), 1..4),
        b in proptest::collection::vec(any::<i64>().prop_map(Datum::Int64), 1..4),
    ) {
        // For equal-length tuples, concatenated encodings must order like tuples.
        if a.len() == b.len() {
            prop_assert_eq!(encode_datums(&a).cmp(&encode_datums(&b)), a.cmp(&b));
        }
    }

    #[test]
    fn string_composites_are_unambiguous(
        a1 in ".{0,8}", a2 in ".{0,8}",
        b1 in ".{0,8}", b2 in ".{0,8}",
    ) {
        let ka = encode_datums(&[Datum::Str(a1.clone()), Datum::Str(a2.clone())]);
        let kb = encode_datums(&[Datum::Str(b1.clone()), Datum::Str(b2.clone())]);
        let ta = (a1, a2);
        let tb = (b1, b2);
        prop_assert_eq!(ka.cmp(&kb), ta.cmp(&tb));
    }

    #[test]
    fn decode_never_panics_on_garbage(kind_sel in 0u8..7, bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let kind = match kind_sel {
            0 => DatumKind::Int64,
            1 => DatumKind::UInt64,
            2 => DatumKind::Float64,
            3 => DatumKind::Str,
            4 => DatumKind::Bytes,
            5 => DatumKind::Bool,
            _ => DatumKind::Timestamp,
        };
        // Must return Ok or Err, never panic.
        let _ = decode_datum(kind, &bytes);
    }

    #[test]
    fn hash_prefix_is_high_bits(h in any::<u64>(), bits in 1u8..=32) {
        let p = hash_prefix(h, bits);
        prop_assert_eq!(u64::from(p), h >> (64 - u32::from(bits)));
    }

    #[test]
    fn hash_is_pure(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(hash64(&data), hash64(&data));
    }
}
