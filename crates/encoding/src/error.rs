//! Error type for encoding and schema operations.

use std::fmt;

use crate::datum::DatumKind;

/// Errors produced while encoding/decoding datums or validating schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// The byte stream ended before a complete value could be decoded.
    UnexpectedEof {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// A decoded tag or terminator byte was not valid for the expected type.
    Corrupt {
        /// Description of the corruption.
        context: &'static str,
    },
    /// A datum of one kind was supplied where another kind was required.
    KindMismatch {
        /// The kind required by the schema.
        expected: DatumKind,
        /// The kind that was actually supplied.
        actual: DatumKind,
    },
    /// An index definition failed validation.
    InvalidIndexDef(String),
    /// A string contained invalid UTF-8 after decoding.
    InvalidUtf8,
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            EncodingError::Corrupt { context } => {
                write!(f, "corrupt encoding: {context}")
            }
            EncodingError::KindMismatch { expected, actual } => {
                write!(
                    f,
                    "datum kind mismatch: expected {expected:?}, got {actual:?}"
                )
            }
            EncodingError::InvalidIndexDef(msg) => write!(f, "invalid index definition: {msg}"),
            EncodingError::InvalidUtf8 => write!(f, "decoded string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for EncodingError {}
