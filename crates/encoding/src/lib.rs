//! Order-preserving key encoding, hashing and index schemas for the Umzi index.
//!
//! Umzi (Luo et al., EDBT 2019, §4.2) stores all ordering columns — the hash
//! column, equality columns, sort columns and the (descending) `beginTS` — in
//! *lexicographically comparable* formats, so that index keys can be compared
//! with plain `memcmp` during query processing. This crate provides:
//!
//! * [`Datum`] / [`ColumnType`] — the typed values Umzi indexes,
//! * [`keycodec`] — the order-preserving (memcmp-comparable) encoding,
//! * [`hash`] — the 64-bit hash applied to equality columns, whose most
//!   significant bits feed the per-run offset array,
//! * [`IndexDef`] — index definitions combining equality columns, sort
//!   columns and included columns (§4.1).
//!
//! The codec guarantees, for any two values `a`, `b` of the same type:
//! `encode(a).cmp(&encode(b)) == a.cmp(&b)`, and for composite keys the
//! concatenation of per-column encodings preserves tuple ordering (each
//! column's encoding is *prefix-free* within its type).

pub mod datum;
pub mod error;
pub mod hash;
pub mod keycodec;
pub mod schema;

pub use datum::{Datum, DatumKind};
pub use error::EncodingError;
pub use hash::{hash64, hash_prefix, HASH_LEN};
pub use keycodec::{
    decode_datum, encode_datum, encode_datum_desc, encode_datums, KeyReader, KeyWriter,
};
pub use schema::{ColumnDef, ColumnType, IndexDef, IndexDefBuilder};

/// Result alias for encoding operations.
pub type Result<T> = std::result::Result<T, EncodingError>;
