//! Typed values indexed by Umzi.
//!
//! The paper's experiments use 8-byte `long` columns (§8.1); a production
//! index additionally needs strings, floats, booleans and timestamps, all of
//! which are supported by the order-preserving codec in [`crate::keycodec`].

use std::cmp::Ordering;
use std::fmt;

/// The type of a column value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatumKind {
    /// Signed 64-bit integer (the paper's `long`).
    Int64,
    /// Unsigned 64-bit integer.
    UInt64,
    /// IEEE-754 double. Total order with NaN sorted last (like `f64::total_cmp`).
    Float64,
    /// UTF-8 string.
    Str,
    /// Raw byte string.
    Bytes,
    /// Boolean.
    Bool,
    /// Microseconds since the Unix epoch; distinct from `Int64` only for
    /// self-documentation in table schemas.
    Timestamp,
}

impl DatumKind {
    /// Whether values of this kind have a fixed-width encoding.
    pub fn is_fixed_width(self) -> bool {
        !matches!(self, DatumKind::Str | DatumKind::Bytes)
    }

    /// The encoded width in bytes for fixed-width kinds.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DatumKind::Int64 | DatumKind::UInt64 | DatumKind::Float64 | DatumKind::Timestamp => {
                Some(8)
            }
            DatumKind::Bool => Some(1),
            DatumKind::Str | DatumKind::Bytes => None,
        }
    }
}

/// A single column value.
///
/// `Datum` implements a *total* order consistent with the order-preserving
/// byte encoding: integers numerically, floats via `total_cmp`, strings and
/// bytes lexicographically. Values of different kinds are ordered by kind —
/// this situation never arises inside a single column but keeps the `Ord`
/// impl total, which `sort` and `BTreeMap`-based test oracles rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// Signed 64-bit integer.
    Int64(i64),
    /// Unsigned 64-bit integer.
    UInt64(u64),
    /// IEEE-754 double.
    Float64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Boolean.
    Bool(bool),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
}

impl Datum {
    /// The kind of this datum.
    pub fn kind(&self) -> DatumKind {
        match self {
            Datum::Int64(_) => DatumKind::Int64,
            Datum::UInt64(_) => DatumKind::UInt64,
            Datum::Float64(_) => DatumKind::Float64,
            Datum::Str(_) => DatumKind::Str,
            Datum::Bytes(_) => DatumKind::Bytes,
            Datum::Bool(_) => DatumKind::Bool,
            Datum::Timestamp(_) => DatumKind::Timestamp,
        }
    }

    /// Convenience accessor for `Int64`/`Timestamp` payloads.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::Int64(v) | Datum::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor for `UInt64` payloads.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Datum::UInt64(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor for string payloads.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order datums of *different* kinds (never compared in
    /// well-formed columns, but keeps `Ord` total).
    fn kind_rank(&self) -> u8 {
        match self {
            Datum::Bool(_) => 0,
            Datum::Int64(_) => 1,
            Datum::UInt64(_) => 2,
            Datum::Float64(_) => 3,
            Datum::Timestamp(_) => 4,
            Datum::Str(_) => 5,
            Datum::Bytes(_) => 6,
        }
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    fn cmp(&self, other: &Self) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Int64(a), Int64(b)) => a.cmp(b),
            (UInt64(a), UInt64(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl std::hash::Hash for Datum {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.kind_rank().hash(state);
        match self {
            Datum::Int64(v) | Datum::Timestamp(v) => v.hash(state),
            Datum::UInt64(v) => v.hash(state),
            // total_cmp-consistent hashing: hash the bit pattern.
            Datum::Float64(v) => v.to_bits().hash(state),
            Datum::Str(s) => s.hash(state),
            Datum::Bytes(b) => b.hash(state),
            Datum::Bool(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int64(v) => write!(f, "{v}"),
            Datum::UInt64(v) => write!(f, "{v}"),
            Datum::Float64(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "{s:?}"),
            Datum::Bytes(b) => write!(f, "0x{}", hex(b)),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Timestamp(v) => write!(f, "ts:{v}"),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int64(v)
    }
}

impl From<u64> for Datum {
    fn from(v: u64) -> Self {
        Datum::UInt64(v)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float64(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Str(v.to_owned())
    }
}

impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Str(v)
    }
}

impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}

impl From<Vec<u8>> for Datum {
    fn from(v: Vec<u8>) -> Self {
        Datum::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_reporting() {
        assert_eq!(Datum::Int64(3).kind(), DatumKind::Int64);
        assert_eq!(Datum::Str("a".into()).kind(), DatumKind::Str);
        assert_eq!(Datum::Timestamp(9).kind(), DatumKind::Timestamp);
    }

    #[test]
    fn ordering_within_kind() {
        assert!(Datum::Int64(-5) < Datum::Int64(3));
        assert!(Datum::UInt64(1) < Datum::UInt64(u64::MAX));
        assert!(Datum::Str("abc".into()) < Datum::Str("abd".into()));
        assert!(Datum::Bool(false) < Datum::Bool(true));
    }

    #[test]
    fn float_total_order_handles_nan_and_zero() {
        assert!(Datum::Float64(f64::NEG_INFINITY) < Datum::Float64(-0.0));
        assert!(Datum::Float64(-0.0) < Datum::Float64(0.0));
        assert!(Datum::Float64(f64::INFINITY) < Datum::Float64(f64::NAN));
        assert_eq!(
            Datum::Float64(f64::NAN).cmp(&Datum::Float64(f64::NAN)),
            Ordering::Equal
        );
    }

    #[test]
    fn fixed_width_reporting() {
        assert_eq!(DatumKind::Int64.fixed_width(), Some(8));
        assert_eq!(DatumKind::Bool.fixed_width(), Some(1));
        assert_eq!(DatumKind::Str.fixed_width(), None);
        assert!(!DatumKind::Bytes.is_fixed_width());
    }

    #[test]
    fn conversions() {
        assert_eq!(Datum::from(42i64), Datum::Int64(42));
        assert_eq!(Datum::from("x"), Datum::Str("x".into()));
        assert_eq!(Datum::from(true), Datum::Bool(true));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Datum::Int64(7).to_string(), "7");
        assert_eq!(Datum::Bytes(vec![0xab, 0x01]).to_string(), "0xab01");
    }
}
