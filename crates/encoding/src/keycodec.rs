//! Order-preserving ("memcmp-comparable") byte encoding of datums.
//!
//! §4.2 of the paper: *"All ordering columns ... are stored in
//! lexicographically comparable formats, similar to LevelDB, so that keys can
//! be compared by simply using memory compare operations."*
//!
//! Encodings, all chosen so unsigned byte-wise comparison of the encodings
//! matches the natural value order, and so every column encoding is
//! prefix-free *within its type* (required for composite keys):
//!
//! | type     | encoding |
//! |----------|----------|
//! | `UInt64` | 8 bytes big-endian |
//! | `Int64` / `Timestamp` | sign bit flipped, then 8 bytes big-endian |
//! | `Float64`| if sign bit set flip all bits, else flip sign bit; big-endian |
//! | `Bool`   | one byte, 0 or 1 |
//! | `Str` / `Bytes` | `0x00` escaped as `0x00 0xFF`, terminated by `0x00 0x00` |
//!
//! Descending order (used for `beginTS`, §4.2: *"We sort the beginTS column
//! in descending order to facilitate the access of more recent versions"*) is
//! obtained by complementing every encoded byte.

use crate::datum::{Datum, DatumKind};
use crate::error::EncodingError;
use crate::Result;

/// Escape byte for embedded zeros in byte-string encodings.
const ESCAPE: u8 = 0x00;
/// Marker following an escape byte for a literal `0x00`.
const ESCAPED_00: u8 = 0xFF;
/// Marker following an escape byte that terminates the byte string.
const TERMINATOR: u8 = 0x00;

/// Append the order-preserving encoding of `datum` to `out`.
pub fn encode_datum(datum: &Datum, out: &mut Vec<u8>) {
    match datum {
        Datum::UInt64(v) => out.extend_from_slice(&v.to_be_bytes()),
        Datum::Int64(v) | Datum::Timestamp(v) => {
            out.extend_from_slice(&((*v as u64) ^ (1 << 63)).to_be_bytes())
        }
        Datum::Float64(v) => out.extend_from_slice(&order_f64(*v).to_be_bytes()),
        Datum::Bool(v) => out.push(*v as u8),
        Datum::Str(s) => encode_bytes(s.as_bytes(), out),
        Datum::Bytes(b) => encode_bytes(b, out),
    }
}

/// Append the *descending* order-preserving encoding of `datum` to `out`
/// (every byte complemented).
pub fn encode_datum_desc(datum: &Datum, out: &mut Vec<u8>) {
    let start = out.len();
    encode_datum(datum, out);
    for b in &mut out[start..] {
        *b = !*b;
    }
}

/// Encode a slice of datums as one concatenated composite key fragment.
pub fn encode_datums(datums: &[Datum]) -> Vec<u8> {
    let mut out = Vec::with_capacity(datums.len() * 9);
    for d in datums {
        encode_datum(d, &mut out);
    }
    out
}

/// Map an `f64` onto a `u64` whose unsigned order equals `total_cmp` order.
fn order_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        // Negative: flip everything so more-negative sorts lower.
        !bits
    } else {
        // Positive: set the sign bit so positives sort above negatives.
        bits ^ (1 << 63)
    }
}

fn unorder_f64(enc: u64) -> f64 {
    if enc >> 63 == 1 {
        f64::from_bits(enc ^ (1 << 63))
    } else {
        f64::from_bits(!enc)
    }
}

fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        if b == ESCAPE {
            out.push(ESCAPE);
            out.push(ESCAPED_00);
        } else {
            out.push(b);
        }
    }
    out.push(ESCAPE);
    out.push(TERMINATOR);
}

/// Decode a single datum of the given kind from the front of `input`,
/// returning the datum and the number of bytes consumed.
pub fn decode_datum(kind: DatumKind, input: &[u8]) -> Result<(Datum, usize)> {
    match kind {
        DatumKind::UInt64 => {
            let v = take8(input, "u64")?;
            Ok((Datum::UInt64(u64::from_be_bytes(v)), 8))
        }
        DatumKind::Int64 => {
            let v = take8(input, "i64")?;
            Ok((Datum::Int64((u64::from_be_bytes(v) ^ (1 << 63)) as i64), 8))
        }
        DatumKind::Timestamp => {
            let v = take8(input, "timestamp")?;
            Ok((
                Datum::Timestamp((u64::from_be_bytes(v) ^ (1 << 63)) as i64),
                8,
            ))
        }
        DatumKind::Float64 => {
            let v = take8(input, "f64")?;
            Ok((Datum::Float64(unorder_f64(u64::from_be_bytes(v))), 8))
        }
        DatumKind::Bool => {
            let b = *input
                .first()
                .ok_or(EncodingError::UnexpectedEof { context: "bool" })?;
            match b {
                0 => Ok((Datum::Bool(false), 1)),
                1 => Ok((Datum::Bool(true), 1)),
                _ => Err(EncodingError::Corrupt {
                    context: "bool byte out of range",
                }),
            }
        }
        DatumKind::Str => {
            let (raw, used) = decode_bytes(input)?;
            let s = String::from_utf8(raw).map_err(|_| EncodingError::InvalidUtf8)?;
            Ok((Datum::Str(s), used))
        }
        DatumKind::Bytes => {
            let (raw, used) = decode_bytes(input)?;
            Ok((Datum::Bytes(raw), used))
        }
    }
}

fn take8(input: &[u8], context: &'static str) -> Result<[u8; 8]> {
    input
        .get(..8)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .ok_or(EncodingError::UnexpectedEof { context })
}

fn decode_bytes(input: &[u8]) -> Result<(Vec<u8>, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        let b = *input.get(i).ok_or(EncodingError::UnexpectedEof {
            context: "byte string",
        })?;
        if b != ESCAPE {
            out.push(b);
            i += 1;
            continue;
        }
        let marker = *input.get(i + 1).ok_or(EncodingError::UnexpectedEof {
            context: "byte string escape",
        })?;
        match marker {
            TERMINATOR => return Ok((out, i + 2)),
            ESCAPED_00 => {
                out.push(0x00);
                i += 2;
            }
            _ => {
                return Err(EncodingError::Corrupt {
                    context: "bad escape marker",
                })
            }
        }
    }
}

/// Incremental writer for composite keys.
///
/// Collects per-column encodings into one memcmp-comparable buffer. Used by
/// the run format to build `hash ∥ equality ∥ sort ∥ ¬beginTS` keys.
#[derive(Debug, Default)]
pub struct KeyWriter {
    buf: Vec<u8>,
}

impl KeyWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Create a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append raw, already-comparable bytes (e.g. a big-endian hash).
    pub fn put_raw(&mut self, raw: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(raw);
        self
    }

    /// Append an ascending-encoded datum.
    pub fn put(&mut self, datum: &Datum) -> &mut Self {
        encode_datum(datum, &mut self.buf);
        self
    }

    /// Append a descending-encoded datum.
    pub fn put_desc(&mut self, datum: &Datum) -> &mut Self {
        encode_datum_desc(datum, &mut self.buf);
        self
    }

    /// Append a big-endian `u64` (already order-preserving).
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a `u64` encoded so the byte order is *descending* in `v`.
    pub fn put_u64_desc(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&(!v).to_be_bytes());
        self
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the key bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Incremental reader over a composite key produced by [`KeyWriter`].
#[derive(Debug)]
pub struct KeyReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> KeyReader<'a> {
    /// Wrap a key byte slice.
    pub fn new(input: &'a [u8]) -> Self {
        Self { input, pos: 0 }
    }

    /// Decode the next datum of the given kind.
    pub fn read(&mut self, kind: DatumKind) -> Result<Datum> {
        let (d, used) = decode_datum(kind, &self.input[self.pos..])?;
        self.pos += used;
        Ok(d)
    }

    /// Decode the next datum that was encoded descending.
    pub fn read_desc(&mut self, kind: DatumKind) -> Result<Datum> {
        // Complement into a scratch buffer, then decode normally.
        let rest = &self.input[self.pos..];
        let flipped: Vec<u8> = rest.iter().map(|b| !b).collect();
        let (d, used) = decode_datum(kind, &flipped)?;
        self.pos += used;
        Ok(d)
    }

    /// Read a raw big-endian `u64` (e.g. the hash column).
    pub fn read_u64(&mut self) -> Result<u64> {
        let v = take8(&self.input[self.pos..], "raw u64")?;
        self.pos += 8;
        Ok(u64::from_be_bytes(v))
    }

    /// Read a `u64` written with [`KeyWriter::put_u64_desc`].
    pub fn read_u64_desc(&mut self) -> Result<u64> {
        Ok(!self.read_u64()?)
    }

    /// Current byte offset within the key.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> &'a [u8] {
        &self.input[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(d: &Datum) -> Vec<u8> {
        let mut v = Vec::new();
        encode_datum(d, &mut v);
        v
    }

    #[test]
    fn u64_order_preserved() {
        let vals = [0u64, 1, 255, 256, u64::MAX / 2, u64::MAX];
        for a in vals {
            for b in vals {
                assert_eq!(
                    enc(&Datum::UInt64(a)).cmp(&enc(&Datum::UInt64(b))),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn i64_order_preserved_across_sign() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 7, i64::MAX];
        for a in vals {
            for b in vals {
                assert_eq!(
                    enc(&Datum::Int64(a)).cmp(&enc(&Datum::Int64(b))),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn f64_order_preserved_including_nan() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1.5,
            1e300,
            f64::INFINITY,
            f64::NAN,
        ];
        for a in vals {
            for b in vals {
                assert_eq!(
                    enc(&Datum::Float64(a)).cmp(&enc(&Datum::Float64(b))),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn strings_with_embedded_zeros_order_and_roundtrip() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x00],
            vec![0x00, 0x00],
            vec![0x00, 0x01],
            vec![0x01],
            vec![0x01, 0x00],
            vec![0xFF],
            b"hello".to_vec(),
            b"hello world".to_vec(),
        ];
        for a in &cases {
            for b in &cases {
                assert_eq!(
                    enc(&Datum::Bytes(a.clone())).cmp(&enc(&Datum::Bytes(b.clone()))),
                    a.cmp(b),
                    "{a:?} vs {b:?}"
                );
            }
            let e = enc(&Datum::Bytes(a.clone()));
            let (d, used) = decode_datum(DatumKind::Bytes, &e).unwrap();
            assert_eq!(used, e.len());
            assert_eq!(d, Datum::Bytes(a.clone()));
        }
    }

    #[test]
    fn bytes_prefix_free_in_composites() {
        // "a" ∥ "b" must not be confusable with "ab" ∥ "".
        let k1 = encode_datums(&[Datum::Str("a".into()), Datum::Str("b".into())]);
        let k2 = encode_datums(&[Datum::Str("ab".into()), Datum::Str("".into())]);
        assert_ne!(k1, k2);
        // And ordering of composites must follow tuple ordering.
        assert!(k1 < k2); // ("a","b") < ("ab","")
    }

    #[test]
    fn roundtrip_all_kinds() {
        let datums = vec![
            Datum::Int64(-42),
            Datum::UInt64(42),
            Datum::Float64(-2.75),
            Datum::Str("héllo".into()),
            Datum::Bytes(vec![1, 0, 2]),
            Datum::Bool(true),
            Datum::Timestamp(1_700_000_000_000),
        ];
        for d in datums {
            let e = enc(&d);
            let (back, used) = decode_datum(d.kind(), &e).unwrap();
            assert_eq!(used, e.len());
            assert_eq!(back, d);
        }
    }

    #[test]
    fn descending_encoding_reverses_order() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_datum_desc(&Datum::Int64(1), &mut a);
        encode_datum_desc(&Datum::Int64(2), &mut b);
        assert!(a > b, "descending: enc(1) must sort after enc(2)");
    }

    #[test]
    fn key_writer_reader_roundtrip() {
        let mut w = KeyWriter::new();
        w.put_u64(0xDEAD_BEEF)
            .put(&Datum::Int64(-3))
            .put(&Datum::Str("k".into()))
            .put_u64_desc(100);
        let key = w.finish();

        let mut r = KeyReader::new(&key);
        assert_eq!(r.read_u64().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read(DatumKind::Int64).unwrap(), Datum::Int64(-3));
        assert_eq!(r.read(DatumKind::Str).unwrap(), Datum::Str("k".into()));
        assert_eq!(r.read_u64_desc().unwrap(), 100);
        assert!(r.remaining().is_empty());
    }

    #[test]
    fn u64_desc_ordering() {
        let mut w1 = KeyWriter::new();
        let mut w2 = KeyWriter::new();
        w1.put_u64_desc(5);
        w2.put_u64_desc(9);
        // Larger timestamps must sort FIRST (descending).
        assert!(w2.finish() < w1.finish());
    }

    #[test]
    fn decode_errors() {
        assert!(matches!(
            decode_datum(DatumKind::Int64, &[1, 2, 3]),
            Err(EncodingError::UnexpectedEof { .. })
        ));
        assert!(matches!(
            decode_datum(DatumKind::Bool, &[9]),
            Err(EncodingError::Corrupt { .. })
        ));
        // Unterminated byte string.
        assert!(matches!(
            decode_datum(DatumKind::Bytes, b"ab"),
            Err(EncodingError::UnexpectedEof { .. })
        ));
        // Bad escape marker.
        assert!(matches!(
            decode_datum(DatumKind::Bytes, &[0x00, 0x42]),
            Err(EncodingError::Corrupt { .. })
        ));
    }
}
