//! Index definitions (§4.1).
//!
//! An Umzi index is defined by *key columns* — a composition of **equality
//! columns** (for equality predicates) and **sort columns** (for range
//! predicates) — plus optional **included columns** that enable index-only
//! query plans. When equality columns are present, a hash of their values is
//! stored as the leading ordering column, making Umzi a combined hash/range
//! index; with no equality columns it degenerates to a pure range index, and
//! with no sort columns to a pure hash index.

use crate::datum::{Datum, DatumKind};
use crate::error::EncodingError;
use crate::hash::hash64;
use crate::keycodec::encode_datum;
use crate::Result;

/// Column type — an alias of [`DatumKind`] used in schema positions.
pub type ColumnType = DatumKind;

/// A named, typed column in an index definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the index definition).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Create a column definition.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// The role a column plays in an index definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnRole {
    /// Equality predicate column (hashed).
    Equality,
    /// Range predicate column (sorted).
    Sort,
    /// Included (payload) column for index-only access.
    Included,
}

/// An Umzi index definition (§4.1).
///
/// Immutable once built; construct with [`IndexDef::builder`]. The definition
/// determines the key layout of every run of the index:
///
/// ```text
/// key   = hash(equality values)  — 8 bytes, present iff equality columns exist
///       ∥ enc(equality values)   — order-preserving
///       ∥ enc(sort values)       — order-preserving
///       ∥ ¬beginTS               — 8 bytes, descending
/// value = RID ∥ enc(included values)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    name: String,
    equality: Vec<ColumnDef>,
    sort: Vec<ColumnDef>,
    included: Vec<ColumnDef>,
}

impl IndexDef {
    /// Start building an index definition.
    pub fn builder(name: impl Into<String>) -> IndexDefBuilder {
        IndexDefBuilder {
            name: name.into(),
            equality: Vec::new(),
            sort: Vec::new(),
            included: Vec::new(),
        }
    }

    /// The index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Equality columns, in key order.
    pub fn equality_columns(&self) -> &[ColumnDef] {
        &self.equality
    }

    /// Sort columns, in key order.
    pub fn sort_columns(&self) -> &[ColumnDef] {
        &self.sort
    }

    /// Included columns.
    pub fn included_columns(&self) -> &[ColumnDef] {
        &self.included
    }

    /// Whether a hash column is stored (true iff equality columns exist).
    pub fn has_hash(&self) -> bool {
        !self.equality.is_empty()
    }

    /// Number of key columns (equality + sort), excluding hash and beginTS.
    pub fn key_column_count(&self) -> usize {
        self.equality.len() + self.sort.len()
    }

    /// All key columns in ordering position: equality then sort.
    pub fn key_columns(&self) -> impl Iterator<Item = &ColumnDef> {
        self.equality.iter().chain(self.sort.iter())
    }

    /// Hash the given equality values (must match the equality columns).
    ///
    /// Hashing is performed over the order-preserving encoding so that it is
    /// insensitive to how callers produced the datums.
    pub fn hash_equality(&self, values: &[Datum]) -> Result<u64> {
        self.check_values(&self.equality, values, "equality")?;
        let mut buf = Vec::with_capacity(values.len() * 9);
        for v in values {
            encode_datum(v, &mut buf);
        }
        Ok(hash64(&buf))
    }

    /// Validate that `values` matches the column list in arity and kinds.
    pub fn check_values(&self, columns: &[ColumnDef], values: &[Datum], what: &str) -> Result<()> {
        if columns.len() != values.len() {
            return Err(EncodingError::InvalidIndexDef(format!(
                "index {:?}: expected {} {what} values, got {}",
                self.name,
                columns.len(),
                values.len()
            )));
        }
        for (c, v) in columns.iter().zip(values) {
            if c.ty != v.kind() {
                return Err(EncodingError::KindMismatch {
                    expected: c.ty,
                    actual: v.kind(),
                });
            }
        }
        Ok(())
    }

    /// A stable fingerprint of the definition, persisted in run headers so
    /// that a run can never be opened under a different definition.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = Vec::new();
        buf.extend_from_slice(self.name.as_bytes());
        for (tag, cols) in [(1u8, &self.equality), (2, &self.sort), (3, &self.included)] {
            for c in cols {
                buf.push(tag);
                buf.push(c.ty as u8);
                buf.extend_from_slice(c.name.as_bytes());
                buf.push(0);
            }
        }
        hash64(&buf)
    }
}

/// Builder for [`IndexDef`]; validates on [`IndexDefBuilder::build`].
#[derive(Debug)]
pub struct IndexDefBuilder {
    name: String,
    equality: Vec<ColumnDef>,
    sort: Vec<ColumnDef>,
    included: Vec<ColumnDef>,
}

impl IndexDefBuilder {
    /// Add an equality column.
    pub fn equality(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.equality.push(ColumnDef::new(name, ty));
        self
    }

    /// Add a sort column.
    pub fn sort(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.sort.push(ColumnDef::new(name, ty));
        self
    }

    /// Add an included column.
    pub fn included(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.included.push(ColumnDef::new(name, ty));
        self
    }

    /// Validate and build the definition.
    ///
    /// Rules: at least one key column (equality or sort) and unique column
    /// names across all roles. (§4.1: either role may be omitted, not both.)
    pub fn build(self) -> Result<IndexDef> {
        if self.equality.is_empty() && self.sort.is_empty() {
            return Err(EncodingError::InvalidIndexDef(format!(
                "index {:?} has no key columns",
                self.name
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for c in self.equality.iter().chain(&self.sort).chain(&self.included) {
            if !seen.insert(c.name.as_str()) {
                return Err(EncodingError::InvalidIndexDef(format!(
                    "duplicate column name {:?}",
                    c.name
                )));
            }
        }
        Ok(IndexDef {
            name: self.name,
            equality: self.equality,
            sort: self.sort,
            included: self.included,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iot_def() -> IndexDef {
        // The paper's running example: deviceID equality, msg sort.
        IndexDef::builder("iot")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .included("payload", ColumnType::Int64)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_reports_shape() {
        let def = iot_def();
        assert!(def.has_hash());
        assert_eq!(def.key_column_count(), 2);
        assert_eq!(def.equality_columns().len(), 1);
        assert_eq!(def.sort_columns().len(), 1);
        assert_eq!(def.included_columns().len(), 1);
        assert_eq!(def.key_columns().count(), 2);
    }

    #[test]
    fn pure_range_and_pure_hash_indexes_allowed() {
        let range_only = IndexDef::builder("r")
            .sort("ts", ColumnType::Timestamp)
            .build()
            .unwrap();
        assert!(!range_only.has_hash());

        let hash_only = IndexDef::builder("h")
            .equality("pk", ColumnType::UInt64)
            .build()
            .unwrap();
        assert!(hash_only.has_hash());
        assert!(hash_only.sort_columns().is_empty());
    }

    #[test]
    fn rejects_empty_and_duplicate() {
        assert!(IndexDef::builder("none").build().is_err());
        assert!(IndexDef::builder("dup")
            .equality("a", ColumnType::Int64)
            .sort("a", ColumnType::Int64)
            .build()
            .is_err());
    }

    #[test]
    fn hash_equality_checks_kinds() {
        let def = iot_def();
        let ok = def.hash_equality(&[Datum::Int64(4)]);
        assert!(ok.is_ok());
        assert!(def.hash_equality(&[Datum::Str("4".into())]).is_err());
        assert!(def.hash_equality(&[]).is_err());
        // Deterministic.
        assert_eq!(
            def.hash_equality(&[Datum::Int64(4)]).unwrap(),
            def.hash_equality(&[Datum::Int64(4)]).unwrap()
        );
    }

    #[test]
    fn fingerprint_sensitive_to_structure() {
        let a = iot_def();
        let b = IndexDef::builder("iot")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint(), "included col must matter");
        // Role matters: same columns, different roles.
        let c = IndexDef::builder("iot")
            .equality("msg", ColumnType::Int64)
            .sort("device", ColumnType::Int64)
            .included("payload", ColumnType::Int64)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), iot_def().fingerprint());
    }
}
