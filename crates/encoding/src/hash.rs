//! The 64-bit hash applied to equality-column values.
//!
//! §4.1: *"If equality columns are specified, we also store the hash value of
//! equality column values to speed-up index queries"*; §4.2 stores the hash
//! as the leading key column, and the header's offset array maps the *most
//! significant n bits* of the hash to entry offsets (§4.2, Figure 2b).
//!
//! The hash must therefore (a) be deterministic across processes and
//! restarts — it is persisted inside index runs — and (b) distribute its
//! *high* bits well, since those select offset-array buckets. We implement a
//! self-contained 64-bit hash (xxHash64-style mixing; no external crates,
//! no process-random seeds) over the order-preserving encoding of the
//! equality columns, which makes hashing independent of how callers group
//! their datum values.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Width of the stored hash column in bytes.
pub const HASH_LEN: usize = 8;

/// Deterministic seed: runs persist hash values, so the seed is a format
/// constant (changing it is a breaking format change).
const SEED: u64 = 0x554D_5A49_2019_0326; // "UMZI" + EDBT 2019 dates

/// Hash an arbitrary byte string to 64 bits (xxHash64 algorithm).
pub fn hash64(input: &[u8]) -> u64 {
    let len = input.len() as u64;
    let mut rest = input;
    let mut acc: u64;

    if rest.len() >= 32 {
        let mut v1 = SEED.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = SEED.wrapping_add(PRIME64_2);
        let mut v3 = SEED;
        let mut v4 = SEED.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..8]));
            v2 = round(v2, read_u64(&rest[8..16]));
            v3 = round(v3, read_u64(&rest[16..24]));
            v4 = round(v4, read_u64(&rest[24..32]));
            rest = &rest[32..];
        }
        acc = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        acc = merge_round(acc, v1);
        acc = merge_round(acc, v2);
        acc = merge_round(acc, v3);
        acc = merge_round(acc, v4);
    } else {
        acc = SEED.wrapping_add(PRIME64_5);
    }

    acc = acc.wrapping_add(len);

    while rest.len() >= 8 {
        let k = round(0, read_u64(&rest[0..8]));
        acc ^= k;
        acc = acc
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        let k = u64::from(read_u32(&rest[0..4]));
        acc ^= k.wrapping_mul(PRIME64_1);
        acc = acc
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        acc ^= u64::from(b).wrapping_mul(PRIME64_5);
        acc = acc.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    // Final avalanche.
    acc ^= acc >> 33;
    acc = acc.wrapping_mul(PRIME64_2);
    acc ^= acc >> 29;
    acc = acc.wrapping_mul(PRIME64_3);
    acc ^= acc >> 32;
    acc
}

#[inline]
fn round(mut acc: u64, input: u64) -> u64 {
    acc = acc.wrapping_add(input.wrapping_mul(PRIME64_2));
    acc = acc.rotate_left(31);
    acc.wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(mut acc: u64, val: u64) -> u64 {
    acc ^= round(0, val);
    acc.wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8-byte slice"))
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4-byte slice"))
}

/// Extract the most significant `bits` bits of a hash — the offset-array
/// bucket index (§4.2, Figure 2b). `bits` must be in `1..=32`.
#[inline]
pub fn hash_prefix(hash: u64, bits: u8) -> u32 {
    debug_assert!((1..=32).contains(&bits), "offset array width out of range");
    (hash >> (64 - u32::from(bits))) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"device-42"), hash64(b"device-42"));
        assert_ne!(hash64(b"device-42"), hash64(b"device-43"));
    }

    #[test]
    fn empty_and_small_inputs() {
        // Exercise all tail paths: 0, 1..3, 4..7, 8..31, >=32 bytes.
        let lens = [0usize, 1, 3, 4, 7, 8, 15, 31, 32, 33, 64, 100];
        let mut seen = std::collections::HashSet::new();
        for l in lens {
            let data = vec![0xABu8; l];
            assert!(seen.insert(hash64(&data)), "collision at len {l}");
        }
    }

    #[test]
    fn prefix_extraction() {
        let h = 0b1001_0001u64 << 56; // top byte = 1001 0001 as in Figure 2
        assert_eq!(hash_prefix(h, 3), 0b100);
        assert_eq!(hash_prefix(h, 8), 0b1001_0001);
        assert_eq!(hash_prefix(u64::MAX, 1), 1);
        assert_eq!(hash_prefix(0, 32), 0);
    }

    #[test]
    fn high_bits_distribute() {
        // The offset array uses high bits: check they spread over buckets.
        let n_buckets = 256u32;
        let mut counts = vec![0u32; n_buckets as usize];
        let n = 64 * n_buckets;
        for i in 0..n {
            let h = hash64(&(i as u64).to_be_bytes());
            counts[hash_prefix(h, 8) as usize] += 1;
        }
        let expected = (n / n_buckets) as f64;
        // Chi-squared statistic; for 255 dof, < 400 is a very loose bound
        // that still catches a hash which clumps high bits.
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 400.0, "high bits poorly distributed: chi2={chi2}");
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        let a = hash64(b"abcdefgh");
        let b = hash64(b"abcdefgi");
        let differing = (a ^ b).count_ones();
        assert!(differing >= 16, "only {differing} bits changed");
    }
}
