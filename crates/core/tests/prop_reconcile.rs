//! Property harness: the partitioned parallel reconcile must be
//! byte-for-byte equivalent to the sequential priority-queue merge — the
//! correctness heart of the read path (newest-run-wins, cross-zone dedup,
//! snapshot filtering) must survive the key-range split.
//!
//! Two layers:
//!
//! 1. **Generic streams** — random overlapping multi-run workloads
//!    (duplicate keys across zones, newer-run-wins conflicts, empty runs,
//!    partition counts beyond the distinct-key count) split at arbitrary
//!    logical boundaries and merged with [`reconcile_partitioned`], against
//!    the [`reconcile_pq`] oracle over the unsplit streams.
//! 2. **End-to-end** — the same random workload built into *real* runs in
//!    two identical indexes, one forced onto the partitioned scan path and
//!    one pinned to the sequential merge; `range_scan` outputs (including
//!    single-key and empty ranges, and mid-history snapshots) must agree
//!    byte-for-byte, which exercises the boundary planner, the fence-index
//!    ordinal resolution and the iterator sub-range splitting.

use std::collections::BTreeSet;
use std::sync::Arc;

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;
use umzi_core::reconcile::{reconcile_partitioned, reconcile_pq};
use umzi_core::{RangeQuery, ReconcileStrategy, UmziConfig, UmziIndex};
use umzi_encoding::{ColumnType, Datum, IndexDef};
use umzi_run::{IndexEntry, Result as RunResult, Rid, SearchHit, SortBound, ZoneId};
use umzi_storage::{SharedStorage, TieredConfig, TieredStorage};

/// Fabricate a hit with `key = logical ∥ ¬ts`, like the run format.
fn hit(logical: &[u8], ts: u64) -> SearchHit {
    let mut key = logical.to_vec();
    key.extend_from_slice(&(!ts).to_be_bytes());
    SearchHit {
        key: Bytes::from(key),
        value: Bytes::from(vec![logical.first().copied().unwrap_or(0), ts as u8]),
        begin_ts: ts,
    }
}

fn bytes_of(hits: &[SearchHit]) -> Vec<(Vec<u8>, Vec<u8>, u64)> {
    hits.iter()
        .map(|h| (h.key.to_vec(), h.value.to_vec(), h.begin_ts))
        .collect()
}

/// One run's stream: deduped by full key, sorted ascending (groups newest
/// version first via the ¬ts suffix).
fn run_stream(entries: &[(u8, u64)]) -> Vec<SearchHit> {
    let mut hits: Vec<SearchHit> = entries
        .iter()
        .map(|&(k, ts)| hit(&[b'a' + k], 1 + ts % 30))
        .collect();
    hits.sort_by(|a, b| a.key.cmp(&b.key));
    hits.dedup_by(|a, b| a.key == b.key);
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Layer 1: arbitrary splits of arbitrary streams.
    #[test]
    fn partitioned_matches_pq_oracle(
        raw_runs in vec(vec((0u8..6, 0u64..30), 0..12), 0..5),
        raw_bounds in vec(0u8..8, 0..7),
    ) {
        let runs: Vec<Vec<SearchHit>> = raw_runs.iter().map(|r| run_stream(r)).collect();

        // Sorted, deduped logical boundaries; may exceed the distinct-key
        // count (6) and may coincide with real keys or miss them entirely.
        let bounds: Vec<Vec<u8>> = raw_bounds
            .iter()
            .map(|&b| vec![b'a' + b])
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();

        let seq = reconcile_pq(
            runs.iter()
                .map(|r| r.iter().cloned().map(Ok).collect::<Vec<RunResult<SearchHit>>>().into_iter())
                .collect(),
        )
        .unwrap();

        // Split every run at the same logical boundaries, exactly like the
        // production cut rule (all versions of a group land on one side).
        let mut partitions = Vec::with_capacity(bounds.len() + 1);
        for p in 0..=bounds.len() {
            let mut streams = Vec::with_capacity(runs.len());
            for run in &runs {
                let lo = if p == 0 {
                    0
                } else {
                    run.partition_point(|h| h.logical_key() < bounds[p - 1].as_slice())
                };
                let hi = if p == bounds.len() {
                    run.len()
                } else {
                    run.partition_point(|h| h.logical_key() < bounds[p].as_slice())
                };
                streams.push(
                    run[lo..hi]
                        .iter()
                        .cloned()
                        .map(Ok)
                        .collect::<Vec<RunResult<SearchHit>>>()
                        .into_iter(),
                );
            }
            partitions.push(streams);
        }
        let par = reconcile_partitioned(partitions).unwrap();
        prop_assert_eq!(bytes_of(&par), bytes_of(&seq));
    }
}

fn index_with(partitions: usize, name: &str) -> Arc<UmziIndex> {
    // Tiny chunks so even small runs span several data blocks — otherwise
    // the planner would rarely find interior fences to cut at.
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            chunk_size: 256,
            ..TieredConfig::default()
        },
    ));
    let def = Arc::new(
        IndexDef::builder("t")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .build()
            .unwrap(),
    );
    let mut cfg = UmziConfig::two_zone(name);
    cfg.scan.max_scan_partitions = partitions;
    cfg.scan.parallel_row_threshold = if partitions > 1 { 1 } else { u64::MAX };
    UmziIndex::create(storage, def, cfg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Layer 2: real runs, real planner, real iterator splitting.
    #[test]
    fn parallel_range_scan_matches_sequential(
        raw_runs in vec(vec((0i64..3, 0i64..8, 1u64..40), 1..30), 1..5),
        p in 1usize..9,
        device in 0i64..3,
        a in 0i64..8,
        b in 0i64..8,
        snapshot in prop_oneof![Just(15u64), Just(u64::MAX)],
    ) {
        let seq = index_with(1, "prop-seq");
        let par = index_with(p, "prop-par");
        for (r, entries) in raw_runs.iter().enumerate() {
            // Dedupe by full key within one run, as groom/merge guarantee.
            let specs: BTreeSet<(i64, i64, u64)> = entries.iter().cloned().collect();
            for idx in [&seq, &par] {
                let run_entries: Vec<IndexEntry> = specs
                    .iter()
                    .map(|&(d, m, ts)| {
                        IndexEntry::new(
                            idx.layout(),
                            &[Datum::Int64(d)],
                            &[Datum::Int64(m)],
                            ts,
                            Rid::new(ZoneId::GROOMED, r as u64 + 1, (d * 8 + m) as u32),
                            &[],
                        )
                        .unwrap()
                    })
                    .collect();
                idx.build_groomed_run(run_entries, r as u64 + 1, r as u64 + 1).unwrap();
            }
        }
        let (lo, hi) = (a.min(b), a.max(b)); // includes single-key ranges
        let query = RangeQuery {
            equality: vec![Datum::Int64(device)],
            lower: SortBound::Included(vec![Datum::Int64(lo)]),
            upper: SortBound::Included(vec![Datum::Int64(hi)]),
            query_ts: snapshot,
        };
        let want = seq.range_scan(&query, ReconcileStrategy::PriorityQueue).unwrap();
        let got = par.range_scan(&query, ReconcileStrategy::PriorityQueue).unwrap();
        let flat = |o: &[umzi_core::QueryOutput]| -> Vec<(Vec<u8>, Vec<u8>, u64)> {
            o.iter()
                .map(|x| (x.key.to_vec(), x.value.to_vec(), x.begin_ts))
                .collect()
        };
        prop_assert_eq!(flat(&got), flat(&want));
    }
}
