//! Scan-washout regression test (the HTAP interference problem).
//!
//! Scenario: a point-lookup working set is warmed into the decoded-block
//! cache, then a full-table analytical scan over a dataset ≥ 4× the cache
//! capacity sweeps through. Under the scan-resistant policy the warmed
//! working set sits in the protected segment and keeps hitting afterwards;
//! under the plain-LRU fallback the scan washes it out and the same
//! lookups go back to cold-block reads. The acceptance bar: the
//! scan-resistant post-scan point hit rate must be at least **2×** the
//! plain-LRU hit rate in the identical scenario.

use std::sync::Arc;

use umzi_core::{RangeQuery, ReconcileStrategy, UmziConfig, UmziIndex};
use umzi_encoding::{ColumnType, Datum, IndexDef};
use umzi_run::{IndexEntry, Rid, SortBound, ZoneId};
use umzi_storage::{
    CachePolicy, DecodedCacheConfig, PatternCounters, SharedStorage, TieredConfig, TieredStorage,
};

/// Decoded-cache capacity for the experiment.
const CACHE_BYTES: u64 = 256 << 10;
/// Entries per run; two runs make the dataset ≥ 4× the cache.
const PER_RUN: i64 = 16_000;
/// Hot point-lookup keys (each maps to one or two distinct blocks).
const HOT_KEYS: i64 = 8;

fn small_cache(policy: CachePolicy) -> DecodedCacheConfig {
    DecodedCacheConfig {
        capacity_bytes: CACHE_BYTES,
        shards: 1, // deterministic segment accounting
        policy,
        ..DecodedCacheConfig::default()
    }
}

/// One-device dataset (all keys share the hash bucket, like an analytical
/// fact table): two full-range runs, newest first, ≥ 4× the cache.
fn build_index(name: &str, policy: CachePolicy) -> Arc<UmziIndex> {
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::in_memory(),
        TieredConfig {
            decoded_cache: small_cache(policy),
            ..TieredConfig::default()
        },
    ));
    let def = Arc::new(
        IndexDef::builder("washout")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .build()
            .unwrap(),
    );
    let mut config = UmziConfig::two_zone(name);
    // Exercise the per-index override path too (create → reconfigure; the
    // shard count is fixed by the TieredConfig above).
    config.cache.decoded_cache = Some(small_cache(policy));
    let idx = UmziIndex::create(storage, def, config).unwrap();
    for r in 0..2u64 {
        let entries: Vec<IndexEntry> = (0..PER_RUN)
            .map(|m| {
                IndexEntry::new(
                    idx.layout(),
                    &[Datum::Int64(0)],
                    &[Datum::Int64(m)],
                    10 + r,
                    Rid::new(ZoneId::GROOMED, r + 1, m as u32),
                    &[],
                )
                .unwrap()
            })
            .collect();
        idx.build_groomed_run(entries, r + 1, r + 1).unwrap();
    }
    idx
}

fn hot_keys() -> Vec<(Vec<Datum>, Vec<Datum>)> {
    (0..HOT_KEYS)
        .map(|j| {
            (
                vec![Datum::Int64(0)],
                vec![Datum::Int64(j * (PER_RUN / HOT_KEYS))],
            )
        })
        .collect()
}

fn point_counters(idx: &UmziIndex) -> PatternCounters {
    idx.stats().storage.decoded.point
}

/// Run the warm → scan → re-measure scenario, returning the post-scan
/// point-lookup hit rate at *lookup granularity*: a lookup counts as a hit
/// only when the decoded cache serves it entirely (zero chunk reads).
/// Per-access counters would flatter the washed-out cache — the first miss
/// of a lookup re-warms the block for its own later touches — so this is
/// the honest measure of "did the warmed working set survive".
fn post_scan_point_hit_rate(idx: &UmziIndex) -> f64 {
    let hot = hot_keys();
    // Warm: repeated passes promote the working set (second touch moves a
    // block from probation into the protected segment).
    for _ in 0..3 {
        for (eq, sort) in &hot {
            idx.point_lookup(eq, sort, u64::MAX).unwrap().unwrap();
        }
    }
    // The analytical sweep: a full-table scan over ~5× the cache capacity.
    let scanned = idx
        .range_scan(
            &RangeQuery {
                equality: vec![Datum::Int64(0)],
                lower: SortBound::Unbounded,
                upper: SortBound::Unbounded,
                query_ts: u64::MAX,
            },
            ReconcileStrategy::PriorityQueue,
        )
        .unwrap();
    assert_eq!(scanned.len() as i64, PER_RUN, "scan must cover the table");

    // Re-measure the warmed lookups.
    let pat_before = point_counters(idx);
    let mut served_cached = 0;
    for (eq, sort) in &hot {
        let before = idx.stats().storage.chunk_reads;
        idx.point_lookup(eq, sort, u64::MAX).unwrap().unwrap();
        if idx.stats().storage.chunk_reads == before {
            served_cached += 1;
        }
    }
    let pat_after = point_counters(idx);
    assert!(
        pat_after.hits + pat_after.misses > pat_before.hits + pat_before.misses,
        "lookups must be labelled point traffic"
    );
    served_cached as f64 / hot.len() as f64
}

#[test]
fn scan_resistant_cache_survives_full_table_scan() {
    // Sanity: dataset really is ≥ 4× the cache (the run objects hold the
    // same blocks the decoded cache would).
    let sr = build_index("washout-sr", CachePolicy::ScanResistant);
    let data_bytes: u64 = sr
        .zones()
        .iter()
        .flat_map(|z| z.list.snapshot())
        .map(|r| r.size_bytes())
        .sum();
    assert!(
        data_bytes >= 4 * CACHE_BYTES,
        "dataset must be ≥ 4× cache: {data_bytes} vs {CACHE_BYTES}"
    );

    let sr_rate = post_scan_point_hit_rate(&sr);
    let lru = build_index("washout-lru", CachePolicy::Lru);
    let lru_rate = post_scan_point_hit_rate(&lru);

    eprintln!("post-scan point hit rate: scan-resistant {sr_rate:.3}, plain LRU {lru_rate:.3}");

    // The headline acceptance bar: ≥ 2× the plain-LRU hit rate.
    assert!(
        sr_rate >= 2.0 * lru_rate,
        "scan-resistant must at least double the post-scan hit rate: {sr_rate:.3} vs {lru_rate:.3}"
    );
    // Absolute floor: the warmed working set stays essentially resident.
    assert!(
        sr_rate >= 0.6,
        "warmed working set must survive the scan: hit rate {sr_rate:.3}"
    );
    // Documented washout: plain LRU loses the working set in this scenario
    // (this is the behaviour the policy exists to fix, and what keeps the
    // 2× bar honest).
    assert!(
        lru_rate <= 0.3,
        "plain LRU unexpectedly survived the sweep: {lru_rate:.3}"
    );

    // The scan itself must have been admitted probation-only: the protected
    // segment still holds (only) the point working set.
    let d = sr.stats().storage.decoded;
    assert!(
        d.protected_bytes <= (CACHE_BYTES as f64 * 0.8) as u64,
        "protected segment exceeded its cap: {d:?}"
    );
    assert!(d.scan.hits + d.scan.misses > 0, "scan traffic was labelled");
}
