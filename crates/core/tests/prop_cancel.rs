//! Cancellation-safety property harness: a query aborted at an *arbitrary*
//! cooperative checkpoint — mid-partition merge, mid-prefetch batch, even
//! mid-retry backoff against a faulted store — must come back as a typed
//! query-abort error (`Cancelled` / `DeadlineExceeded`), never a panic and
//! never a partial result presented as complete. And the very next
//! uncancelled query over the same index must return byte-identical results:
//! an abort may leave caches warm or cold, but never wrong.
//!
//! The trip point is deterministic: [`CancelToken::trip_after`] counts
//! cooperative checkpoints (block positioning, block advance, reconcile
//! ticks, retry pre/post-sleep checks) and fires on the n-th observation, so
//! proptest shrinking walks the abort backward through the read path one
//! checkpoint at a time.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use umzi_core::{RangeQuery, ReconcileStrategy, UmziConfig, UmziIndex};
use umzi_encoding::{ColumnType, Datum, IndexDef};
use umzi_run::{IndexEntry, Rid, SortBound, ZoneId};
use umzi_storage::{
    context, CancelToken, FaultInjectingStore, FaultOp, FaultPlan, InMemoryObjectStore,
    LatencyModel, ObjectStore, PrefetchConfig, QueryContext, RetryConfig, SharedStorage,
    StorageError, TieredConfig, TieredStorage,
};

/// A query abort (deadline / cancellation) surfaced through the core error
/// chain, however deeply wrapped.
fn is_query_abort(e: &umzi_core::UmziError) -> bool {
    let storage: Option<&StorageError> = match e {
        umzi_core::UmziError::Storage(s) => Some(s),
        umzi_core::UmziError::Run(umzi_run::RunError::Storage(s)) => Some(s),
        _ => None,
    };
    storage.is_some_and(|s| s.is_query_abort())
}

struct Fixture {
    index: Arc<UmziIndex>,
    faults: Arc<FaultInjectingStore>,
}

/// An index over a fault-injectable store with tiny chunks (multi-block
/// runs), readahead pipelining armed, and the partitioned scan path enabled
/// — every cooperative checkpoint class is reachable.
fn fixture(partitions: usize, raw_runs: &[Vec<(i64, i64, u64)>]) -> Fixture {
    let inner: Arc<dyn ObjectStore> = Arc::new(InMemoryObjectStore::new());
    let faults = Arc::new(FaultInjectingStore::new(
        inner,
        // Chunked reads go through `get_range`; fault both read ops so the
        // armed store is sick for every read path.
        FaultPlan::none()
            .with_transient(FaultOp::Get, 1.0)
            .with_transient(FaultOp::GetRange, 1.0),
    ));
    faults.set_armed(false);
    let storage = Arc::new(TieredStorage::new(
        SharedStorage::new(
            Arc::clone(&faults) as Arc<dyn ObjectStore>,
            LatencyModel::off(),
        ),
        TieredConfig {
            chunk_size: 256,
            // Starve the warm tiers and disable the decoded cache so scans
            // keep going back to (fault-injectable) shared storage — every
            // checkpoint class stays reachable on every scan, without
            // invalidating live object handles.
            mem_capacity: 1024,
            ssd_capacity: 1024,
            decoded_cache: umzi_storage::DecodedCacheConfig {
                capacity_bytes: 0,
                ..umzi_storage::DecodedCacheConfig::default()
            },
            prefetch: PrefetchConfig {
                depth: 2,
                ..PrefetchConfig::default()
            },
            retry: RetryConfig {
                max_retries: 2,
                base_backoff: std::time::Duration::from_millis(5),
                max_backoff: std::time::Duration::from_millis(10),
            },
            ..TieredConfig::default()
        },
    ));
    let def = Arc::new(
        IndexDef::builder("t")
            .equality("device", ColumnType::Int64)
            .sort("msg", ColumnType::Int64)
            .build()
            .unwrap(),
    );
    let mut cfg = UmziConfig::two_zone("prop-cancel");
    cfg.scan.max_scan_partitions = partitions;
    cfg.scan.parallel_row_threshold = if partitions > 1 { 1 } else { u64::MAX };
    let index = UmziIndex::create(storage, def, cfg).unwrap();
    for (r, entries) in raw_runs.iter().enumerate() {
        let specs: BTreeSet<(i64, i64, u64)> = entries.iter().cloned().collect();
        let run_entries: Vec<IndexEntry> = specs
            .iter()
            .map(|&(d, m, ts)| {
                IndexEntry::new(
                    index.layout(),
                    &[Datum::Int64(d)],
                    &[Datum::Int64(m)],
                    ts,
                    Rid::new(ZoneId::GROOMED, r as u64 + 1, (d * 16 + m) as u32),
                    &[],
                )
                .unwrap()
            })
            .collect();
        index
            .build_groomed_run(run_entries, r as u64 + 1, r as u64 + 1)
            .unwrap();
    }
    Fixture { index, faults }
}

fn flat(o: &[umzi_core::QueryOutput]) -> Vec<(Vec<u8>, Vec<u8>, u64)> {
    o.iter()
        .map(|x| (x.key.to_vec(), x.value.to_vec(), x.begin_ts))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cancel at the n-th cooperative checkpoint of a cold partitioned
    /// scan: either the scan finished before the trip (byte-identical to
    /// the oracle) or it aborted with a typed `Cancelled` error. The
    /// follow-up uncancelled scan is byte-identical either way.
    #[test]
    fn cancel_at_arbitrary_checkpoint_is_typed_and_leaves_no_residue(
        raw_runs in vec(vec((0i64..3, 0i64..16, 1u64..40), 8..40), 1..4),
        p in 1usize..5,
        trip in 0u32..64,
        device in 0i64..3,
    ) {
        let fx = fixture(p, &raw_runs);
        let query = RangeQuery {
            equality: vec![Datum::Int64(device)],
            lower: SortBound::Unbounded,
            upper: SortBound::Unbounded,
            query_ts: u64::MAX,
        };
        let oracle = flat(&fx.index.range_scan(&query, ReconcileStrategy::PriorityQueue).unwrap());

        let token = CancelToken::trip_after(trip as u64);
        let out = {
            let _g = context::enter(
                QueryContext::unbounded().with_cancel(token.clone()),
            );
            fx.index.range_scan(&query, ReconcileStrategy::PriorityQueue)
        };
        match out {
            Ok(hits) => prop_assert_eq!(flat(&hits), oracle.clone()),
            Err(e) => {
                prop_assert!(is_query_abort(&e), "untyped abort: {e}");
                prop_assert!(token.is_cancelled());
            }
        }

        // The immediately following uncancelled query sees the exact same
        // data, whatever state the abort left caches and prefetch in.
        let again = fx.index.range_scan(&query, ReconcileStrategy::PriorityQueue).unwrap();
        prop_assert_eq!(flat(&again), oracle);
    }

    /// Deadline expiry against a *sick* store: every shared get faults, so
    /// a cold scan lives inside retry backoff — the deadline must abort the
    /// sleep (typed, promptly), and healing the store restores exact
    /// results.
    #[test]
    fn deadline_mid_retry_backoff_is_typed_and_recoverable(
        raw_runs in vec(vec((0i64..3, 0i64..16, 1u64..40), 8..30), 1..3),
        p in 1usize..4,
        budget_micros in 0u64..3000,
    ) {
        let fx = fixture(p, &raw_runs);
        let query = RangeQuery {
            equality: vec![Datum::Int64(0)],
            lower: SortBound::Unbounded,
            upper: SortBound::Unbounded,
            query_ts: u64::MAX,
        };
        let oracle = flat(&fx.index.range_scan(&query, ReconcileStrategy::PriorityQueue).unwrap());

        fx.faults.set_armed(true);
        let out = {
            let _g = context::enter(QueryContext::with_deadline(
                std::time::Duration::from_micros(budget_micros),
            ));
            fx.index.range_scan(&query, ReconcileStrategy::PriorityQueue)
        };
        // With every get faulting, a scan that touches storage either dies
        // on its deadline inside/around backoff (typed) or exhausts retries
        // (also typed, but a storage failure, not an abort). A scan that
        // needed no storage at all may still succeed.
        match out {
            Ok(hits) => prop_assert_eq!(flat(&hits), oracle.clone()),
            Err(e) => {
                // No panic, and the failure shape is from the known
                // taxonomy: a query abort (deadline killed the backoff) or
                // a storage/run error (the sick store exhausted retries
                // before the deadline fired).
                let typed = is_query_abort(&e)
                    || matches!(
                        &e,
                        umzi_core::UmziError::Storage(_) | umzi_core::UmziError::Run(_)
                    );
                prop_assert!(typed, "unexpected failure shape: {e}");
            }
        }

        fx.faults.set_armed(false);
        let healed = fx.index.range_scan(&query, ReconcileStrategy::PriorityQueue).unwrap();
        prop_assert_eq!(flat(&healed), oracle);
    }
}
