//! Error type for the Umzi index.

use std::fmt;

/// Errors from index operations.
#[derive(Debug)]
pub enum UmziError {
    /// Underlying storage failure.
    Storage(umzi_storage::StorageError),
    /// Run-format failure.
    Run(umzi_run::RunError),
    /// Encoding failure.
    Encoding(umzi_encoding::EncodingError),
    /// Invalid configuration.
    Config(String),
    /// An evolve operation arrived out of order (PSN gaps are not allowed;
    /// §5.4 requires the index to evolve in PSN order).
    PsnOutOfOrder {
        /// The PSN the index expects next.
        expected: u64,
        /// The PSN that was submitted.
        got: u64,
    },
    /// A merge lost the race with a concurrent structural change (its input
    /// runs are no longer consecutive in the list); the merge was abandoned
    /// and can simply be retried.
    MergeConflict,
    /// Manifest missing or unreadable during recovery.
    ManifestCorrupt(String),
}

impl fmt::Display for UmziError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UmziError::Storage(e) => write!(f, "storage error: {e}"),
            UmziError::Run(e) => write!(f, "run error: {e}"),
            UmziError::Encoding(e) => write!(f, "encoding error: {e}"),
            UmziError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            UmziError::PsnOutOfOrder { expected, got } => {
                write!(
                    f,
                    "post-groom sequence out of order: expected {expected}, got {got}"
                )
            }
            UmziError::MergeConflict => {
                write!(f, "merge abandoned: input runs changed concurrently")
            }
            UmziError::ManifestCorrupt(msg) => write!(f, "manifest corrupt: {msg}"),
        }
    }
}

impl std::error::Error for UmziError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UmziError::Storage(e) => Some(e),
            UmziError::Run(e) => Some(e),
            UmziError::Encoding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<umzi_storage::StorageError> for UmziError {
    fn from(e: umzi_storage::StorageError) -> Self {
        UmziError::Storage(e)
    }
}

impl From<umzi_run::RunError> for UmziError {
    fn from(e: umzi_run::RunError) -> Self {
        UmziError::Run(e)
    }
}

impl From<umzi_encoding::EncodingError> for UmziError {
    fn from(e: umzi_encoding::EncodingError) -> Self {
        UmziError::Encoding(e)
    }
}
