//! SSD cache management (§6.2).
//!
//! *"Umzi keeps track of the current cached level that separates cached and
//! purged runs ... When the SSD is nearly full, the index maintenance thread
//! purges some index runs and decrements the current cached level ... When
//! purging an index run, Umzi drops all data blocks from the SSD while only
//! keeps the header block for queries to locate data blocks. On the
//! contrary, when the SSD has free space, Umzi loads recent runs (in the
//! reverse direction of purging) into SSD, and increments the current cached
//! level."* New runs are written through to the SSD iff their level is below
//! the current cached level (handled in [`crate::build`]).
//!
//! Levels are global across zones (Figure 7), so purging proceeds from the
//! highest (oldest) level of the last zone downward. Non-persisted runs are
//! never purged — the SSD tier is their only home.

use std::sync::atomic::Ordering;

use crate::index::UmziIndex;
use crate::Result;

/// What one maintenance pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMaintainReport {
    /// Runs whose data blocks were dropped from the cache.
    pub purged_runs: usize,
    /// Runs loaded back into the cache.
    pub loaded_runs: usize,
    /// The cached level after the pass.
    pub cached_level: u32,
}

impl UmziIndex {
    /// The current cached level: runs at levels ≤ this are kept in the SSD
    /// cache.
    pub fn current_cached_level(&self) -> u32 {
        self.cached_level.load(Ordering::Acquire)
    }

    /// Purge every persisted run at exactly `level`. Returns runs purged.
    pub fn purge_level(&self, level: u32) -> Result<usize> {
        let Some(zi) = self.config.zone_of_level(level) else {
            return Ok(0);
        };
        let mut purged = 0;
        for run in self.zones[zi].list.snapshot() {
            if run.level() == level && self.config.is_persisted_level(level) {
                self.storage.purge_object(run.handle())?;
                purged += 1;
            }
        }
        Ok(purged)
    }

    /// Load every run at exactly `level` fully into the SSD cache.
    pub fn load_level(&self, level: u32) -> Result<usize> {
        let Some(zi) = self.config.zone_of_level(level) else {
            return Ok(0);
        };
        let mut loaded = 0;
        for run in self.zones[zi].list.snapshot() {
            if run.level() == level {
                self.storage.load_object(run.handle())?;
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Force the cached level to `target`, purging all runs above it (and
    /// loading runs at or below it). Used by operators and by the purge-level
    /// experiments (Figure 14).
    pub fn set_cached_level(&self, target: u32) -> Result<CacheMaintainReport> {
        let max = self.config.max_level();
        let target = target.min(max);
        let mut report = CacheMaintainReport {
            cached_level: target,
            ..Default::default()
        };
        for level in 0..=max {
            if level <= target {
                report.loaded_runs += self.load_level(level)?;
            } else {
                report.purged_runs += self.purge_level(level)?;
            }
        }
        self.cached_level.store(target, Ordering::Release);
        Ok(report)
    }

    /// One adaptive maintenance pass against the configured SSD watermarks:
    /// purge level by level (highest first) while utilization exceeds the
    /// high watermark; load back (lowest purged first) while below the low
    /// watermark.
    pub fn cache_maintain(&self) -> Result<CacheMaintainReport> {
        let capacity = self.storage.ssd_tier().capacity() as f64;
        let mut report = CacheMaintainReport {
            cached_level: self.current_cached_level(),
            ..Default::default()
        };
        if capacity <= 0.0 {
            return Ok(report);
        }
        let used = || self.storage.ssd_tier().used_bytes() as f64;

        // Purge while over the high watermark.
        while used() / capacity > self.config.cache.ssd_high_watermark {
            let level = self.cached_level.load(Ordering::Acquire);
            if level == 0 {
                break; // level 0 always stays cached
            }
            report.purged_runs += self.purge_level(level)?;
            self.cached_level.store(level - 1, Ordering::Release);
        }

        // Load while comfortably under the low watermark.
        while used() / capacity < self.config.cache.ssd_low_watermark {
            let level = self.cached_level.load(Ordering::Acquire);
            if level >= self.config.max_level() {
                break;
            }
            let loaded = self.load_level(level + 1)?;
            report.loaded_runs += loaded;
            self.cached_level.store(level + 1, Ordering::Release);
            if used() / capacity > self.config.cache.ssd_high_watermark {
                break; // the load overshot; stop here
            }
        }
        report.cached_level = self.current_cached_level();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UmziConfig;
    use std::sync::Arc;
    use umzi_encoding::{ColumnType, Datum, IndexDef};
    use umzi_run::{IndexEntry, Rid, ZoneId};
    use umzi_storage::{SharedStorage, TieredConfig, TieredStorage};

    fn setup(ssd_capacity: u64) -> Arc<UmziIndex> {
        let storage = Arc::new(TieredStorage::new(
            SharedStorage::in_memory(),
            TieredConfig {
                ssd_capacity,
                mem_capacity: 1 << 20,
                ..TieredConfig::default()
            },
        ));
        let def = Arc::new(
            IndexDef::builder("t")
                .equality("device", ColumnType::Int64)
                .sort("msg", ColumnType::Int64)
                .build()
                .unwrap(),
        );
        let mut cfg = UmziConfig::two_zone("idx");
        cfg.offset_bits = 4;
        UmziIndex::create(storage, def, cfg).unwrap()
    }

    fn add_run(idx: &UmziIndex, block: u64, n: i64) {
        let es: Vec<IndexEntry> = (0..n)
            .map(|i| {
                IndexEntry::new(
                    idx.layout(),
                    &[Datum::Int64(i % 7)],
                    &[Datum::Int64(i)],
                    block * 100 + i as u64,
                    Rid::new(ZoneId::GROOMED, block, i as u32),
                    &[],
                )
                .unwrap()
            })
            .collect();
        idx.build_groomed_run(es, block, block).unwrap();
    }

    #[test]
    fn set_cached_level_purges_and_loads() {
        let idx = setup(1 << 30);
        for b in 1..=3 {
            add_run(&idx, b, 2000);
        }
        let runs = idx.zones()[0].list.snapshot();
        for r in &runs {
            assert!(idx.storage().is_fully_cached(r.handle()).unwrap());
        }
        // Purge everything above level... level-0 runs: purging to a level
        // below 0 is impossible, so purge to 0 keeps them; force level-0
        // purge via purge_level directly.
        let purged = idx.purge_level(0).unwrap();
        assert_eq!(purged, 3);
        for r in &runs {
            assert!(!idx.storage().is_fully_cached(r.handle()).unwrap());
        }
        // Queries still work (blocks come back from shared storage).
        let hit = idx
            .point_lookup(&[Datum::Int64(1)], &[Datum::Int64(1)], u64::MAX)
            .unwrap();
        assert!(hit.is_some());
        // Load back.
        let loaded = idx.load_level(0).unwrap();
        assert_eq!(loaded, 3);
        for r in &runs {
            assert!(idx.storage().is_fully_cached(r.handle()).unwrap());
        }
    }

    #[test]
    fn maintain_purges_under_pressure() {
        // Tiny SSD: two 2000-entry runs exceed it.
        let idx = setup(100 * 1024);
        for b in 1..=4 {
            add_run(&idx, b, 2000);
        }
        // Push runs to level 1 so there is something above level 0.
        idx.drain_merges().unwrap();
        let report = idx.cache_maintain().unwrap();
        // Utilization was over the watermark: cached level must have dropped.
        assert!(
            report.cached_level < idx.config().max_level(),
            "cached level should decrease under pressure: {report:?}"
        );
    }

    #[test]
    fn maintain_loads_when_spacious() {
        let idx = setup(1 << 30);
        add_run(&idx, 1, 100);
        idx.set_cached_level(0).unwrap();
        assert_eq!(idx.current_cached_level(), 0);
        let report = idx.cache_maintain().unwrap();
        assert_eq!(
            report.cached_level,
            idx.config().max_level(),
            "plenty of space: load all"
        );
    }

    #[test]
    fn write_through_respects_cached_level() {
        let idx = setup(1 << 30);
        idx.set_cached_level(0).unwrap();
        // cached_level = 0 ⇒ a new level-0 run IS written through…
        add_run(&idx, 1, 500);
        let run = &idx.zones()[0].list.snapshot()[0];
        assert!(idx.storage().is_fully_cached(run.handle()).unwrap());
    }
}
