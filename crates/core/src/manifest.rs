//! Persisted index metadata (§5.5).
//!
//! *"After each index evolve operation, the maximum groomed blocked ID for
//! the post-groomed run list and IndexedPSN are also persisted."*
//!
//! Shared storage offers no atomic rename, so manifests are written as new
//! immutable objects with a monotonically increasing sequence number in the
//! name; recovery picks the highest-sequence manifest whose checksum
//! verifies, and older manifests are garbage collected. Runs themselves are
//! self-describing — the manifest only carries state that cannot be derived
//! from run headers.
//!
//! One watermark is stored per zone *boundary* (the paper's two-zone layout
//! has a single groomed→post-groomed watermark; §3's arbitrary-zone
//! extension needs one per adjacent pair).

use bytes::Bytes;
use umzi_encoding::hash64;
use umzi_storage::TieredStorage;

use crate::error::UmziError;
use crate::Result;

const MAGIC: &[u8; 8] = b"UMZIMAN1";
const VERSION: u16 = 1;

/// Durable index state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic manifest sequence number.
    pub seq: u64,
    /// Last post-groom sequence number whose evolve completed.
    pub indexed_psn: u64,
    /// Next run ID to allocate.
    pub next_run_id: u64,
    /// Cache-manager state: the current cached level (§6.2).
    pub current_cached_level: u32,
    /// Per-zone-boundary watermarks: `watermarks[i]` is the maximum groomed
    /// block ID already covered by zones `> i`; runs of zone `i` whose end
    /// ID is ≤ it are ignored by queries (§5.4).
    pub watermarks: Vec<u64>,
}

impl Manifest {
    fn serialize(&self) -> Bytes {
        let mut buf = Vec::with_capacity(64 + self.watermarks.len() * 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.indexed_psn.to_le_bytes());
        buf.extend_from_slice(&self.next_run_id.to_le_bytes());
        buf.extend_from_slice(&self.current_cached_level.to_le_bytes());
        buf.extend_from_slice(&(self.watermarks.len() as u16).to_le_bytes());
        for w in &self.watermarks {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        let checksum = hash64(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        Bytes::from(buf)
    }

    fn deserialize(buf: &[u8]) -> Result<Manifest> {
        let min_len = 8 + 2 + 8 * 3 + 4 + 2 + 8;
        if buf.len() < min_len {
            return Err(UmziError::ManifestCorrupt(format!(
                "too short: {} bytes",
                buf.len()
            )));
        }
        if &buf[..8] != MAGIC {
            return Err(UmziError::ManifestCorrupt("bad magic".into()));
        }
        let body = &buf[..buf.len() - 8];
        let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
        if hash64(body) != stored {
            return Err(UmziError::ManifestCorrupt("checksum mismatch".into()));
        }
        let version = u16::from_le_bytes(buf[8..10].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(UmziError::ManifestCorrupt(format!(
                "unsupported version {version}"
            )));
        }
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().expect("8 bytes"));
        let seq = u64_at(10);
        let indexed_psn = u64_at(18);
        let next_run_id = u64_at(26);
        let current_cached_level = u32::from_le_bytes(buf[34..38].try_into().expect("4 bytes"));
        let n = u16::from_le_bytes(buf[38..40].try_into().expect("2 bytes")) as usize;
        if buf.len() != min_len + n * 8 - 8 + 8 {
            return Err(UmziError::ManifestCorrupt(
                "length/watermark-count mismatch".into(),
            ));
        }
        let mut watermarks = Vec::with_capacity(n);
        for i in 0..n {
            watermarks.push(u64_at(40 + i * 8));
        }
        Ok(Manifest {
            seq,
            indexed_psn,
            next_run_id,
            current_cached_level,
            watermarks,
        })
    }

    /// Persist this manifest as the object `name`. The put runs under the
    /// storage retry policy: a transient shared-storage hiccup must not fail
    /// an otherwise-complete groom or evolve.
    pub fn persist(&self, storage: &TieredStorage, name: &str) -> Result<()> {
        let data = self.serialize();
        let tel = storage.telemetry();
        let t0 = tel.start();
        let out = storage.with_retry_as(umzi_storage::OpClass::Manifest, || {
            storage.shared().put(name, data.clone())
        });
        tel.record_since(&tel.ops().manifest_io, t0);
        Ok(out?)
    }

    /// Load the newest valid manifest under `prefix`. Invalid (truncated or
    /// checksum-failing) manifests are **deleted**, not just skipped: shared
    /// storage is create-once, so a torn manifest left under its name would
    /// permanently block the recovered index from reusing that sequence
    /// number.
    pub fn load_latest(storage: &TieredStorage, prefix: &str) -> Result<Option<Manifest>> {
        let tel = storage.telemetry();
        let t0 = tel.start();
        let out = Self::load_latest_inner(storage, prefix);
        tel.record_since(&tel.ops().manifest_io, t0);
        out
    }

    fn load_latest_inner(storage: &TieredStorage, prefix: &str) -> Result<Option<Manifest>> {
        let mut names = storage.with_retry_as(umzi_storage::OpClass::Manifest, || {
            storage.shared().list(prefix)
        })?;
        names.sort();
        for name in names.iter().rev() {
            let data = storage.with_retry_as(umzi_storage::OpClass::Manifest, || {
                storage.shared().get(name)
            })?;
            if let Ok(m) = Manifest::deserialize(&data) {
                return Ok(Some(m));
            }
            // Torn manifest: free the create-once name. A failed delete is
            // counted and parked for the janitor instead of leaking.
            if let Err(e) =
                storage.with_retry_as(umzi_storage::OpClass::Gc, || storage.shared().delete(name))
            {
                if !matches!(e, umzi_storage::StorageError::NotFound { .. }) {
                    storage.note_gc_delete_failure(name);
                }
            }
        }
        Ok(None)
    }

    /// Delete all manifests under `prefix` except the `keep` newest.
    pub fn gc(storage: &TieredStorage, prefix: &str, keep: usize) -> Result<usize> {
        let mut names = storage.with_retry_as(umzi_storage::OpClass::Manifest, || {
            storage.shared().list(prefix)
        })?;
        names.sort();
        let n = names.len().saturating_sub(keep);
        for name in &names[..n] {
            if let Err(e) =
                storage.with_retry_as(umzi_storage::OpClass::Gc, || storage.shared().delete(name))
            {
                if !matches!(e, umzi_storage::StorageError::NotFound { .. }) {
                    storage.note_gc_delete_failure(name);
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> Manifest {
        Manifest {
            seq,
            indexed_psn: 3,
            next_run_id: 42,
            current_cached_level: 7,
            watermarks: vec![18],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample(5);
        assert_eq!(Manifest::deserialize(&m.serialize()).unwrap(), m);
        // Multiple watermarks (three-zone config).
        let m3 = Manifest {
            watermarks: vec![18, 7, 0],
            ..sample(6)
        };
        assert_eq!(Manifest::deserialize(&m3.serialize()).unwrap(), m3);
        // No watermarks (single-zone config).
        let m0 = Manifest {
            watermarks: vec![],
            ..sample(7)
        };
        assert_eq!(Manifest::deserialize(&m0.serialize()).unwrap(), m0);
    }

    #[test]
    fn persist_and_load_latest() {
        let storage = TieredStorage::in_memory();
        for seq in 1..=3 {
            sample(seq)
                .persist(&storage, &format!("idx/manifest/manifest-{seq:020}"))
                .unwrap();
        }
        let latest = Manifest::load_latest(&storage, "idx/manifest/")
            .unwrap()
            .unwrap();
        assert_eq!(latest.seq, 3);
    }

    #[test]
    fn corrupt_latest_falls_back_and_is_deleted() {
        let storage = TieredStorage::in_memory();
        sample(1).persist(&storage, "m/manifest-01").unwrap();
        storage
            .shared()
            .put("m/manifest-02", Bytes::from_static(b"garbage"))
            .unwrap();
        let latest = Manifest::load_latest(&storage, "m/").unwrap().unwrap();
        assert_eq!(latest.seq, 1, "corrupt newest manifest must be skipped");
        assert!(
            !storage.shared().exists("m/manifest-02"),
            "torn manifest must be deleted so its name can be reused"
        );
    }

    #[test]
    fn empty_prefix_gives_none() {
        let storage = TieredStorage::in_memory();
        assert!(Manifest::load_latest(&storage, "nothing/")
            .unwrap()
            .is_none());
    }

    #[test]
    fn gc_keeps_newest() {
        let storage = TieredStorage::in_memory();
        for seq in 1..=5 {
            sample(seq)
                .persist(&storage, &format!("m/manifest-{seq:020}"))
                .unwrap();
        }
        let deleted = Manifest::gc(&storage, "m/", 2).unwrap();
        assert_eq!(deleted, 3);
        assert_eq!(storage.shared().list("m/").unwrap().len(), 2);
    }

    #[test]
    fn tampering_detected() {
        let mut buf = sample(9).serialize().to_vec();
        buf[20] ^= 1;
        assert!(Manifest::deserialize(&buf).is_err());
    }
}
