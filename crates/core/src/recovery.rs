//! Index recovery (§5.5).
//!
//! *"To recover an index, we mainly need to reconstruct run lists based on
//! runs stored in shared storage, and cleanup merged and incomplete runs if
//! any. ... Runs are first sorted in descending order of end groomed block
//! IDs, and are added to the run list one by one. If multiple runs have
//! overlapping groomed block IDs, the one with largest range is selected,
//! while the rest are simply deleted since they have already been merged."*
//!
//! Non-persisted levels (§6.1) are simply *absent* after a crash; their
//! persisted ancestor runs are still in shared storage, are no longer
//! covered by any surviving run, and therefore re-enter the lists through
//! the same overlap rule. Level 0 being always persisted guarantees no run
//! ever needs rebuilding from groomed data blocks.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use umzi_encoding::IndexDef;
use umzi_run::{KeyLayout, Run};
use umzi_storage::TieredStorage;

use crate::config::UmziConfig;
use crate::index::UmziIndex;
use crate::manifest::Manifest;
use crate::Result;

impl UmziIndex {
    /// Rebuild an index instance from shared storage after a crash.
    pub fn recover(
        storage: Arc<TieredStorage>,
        def: Arc<IndexDef>,
        config: UmziConfig,
    ) -> Result<Arc<UmziIndex>> {
        config.validate()?;
        if let Some(dc) = &config.cache.decoded_cache {
            storage
                .decoded_cache()
                .reconfigure(dc)
                .map_err(|e| crate::error::UmziError::Config(e.to_string()))?;
        }
        if let Some(retry) = config.retry {
            storage.set_retry_config(retry);
        }
        if let Some(tc) = &config.telemetry {
            storage.telemetry().configure(tc);
        }
        if let Some(pf) = config.prefetch {
            storage.set_prefetch_config(pf);
        }
        let index = Self::empty(Arc::clone(&storage), def, config);

        // Durable state from the newest valid manifest.
        if let Some(m) = Manifest::load_latest(&storage, &index.config.manifest_prefix())? {
            index.indexed_psn.store(m.indexed_psn, Ordering::Release);
            index
                .next_run_id
                .store(m.next_run_id.max(1), Ordering::Release);
            index.manifest_seq.store(m.seq, Ordering::Release);
            index
                .cached_level
                .store(m.current_cached_level, Ordering::Release);
            for (i, w) in m.watermarks.iter().enumerate() {
                if let Some(slot) = index.watermarks.get(i) {
                    slot.store(*w, Ordering::Release);
                }
            }
        }

        // Open every run under the prefix; delete unreadable (incomplete)
        // objects — a crash mid-write leaves a torn run that the checksum
        // rejects.
        let layout = KeyLayout::new(Arc::clone(&index.def));
        let names = storage.with_retry_as(umzi_storage::OpClass::Manifest, || {
            storage.shared().list(&index.config.run_prefix())
        })?;
        let mut per_zone: Vec<Vec<Arc<Run>>> = index.zones.iter().map(|_| Vec::new()).collect();
        let mut max_run_id = 0u64;
        for name in names {
            // A torn put lands a strict prefix whose header may still parse;
            // verify_tail proves the data blocks the header promises are
            // actually there before the run is trusted.
            let opened = Run::open(Arc::clone(&storage), &name, layout.clone()).and_then(|run| {
                run.verify_tail()?;
                Ok(run)
            });
            match opened {
                Ok(run) => {
                    max_run_id = max_run_id.max(run.run_id());
                    match index.config.zone_of_level(run.level()) {
                        Some(zi) => per_zone[zi].push(Arc::new(run)),
                        None => {
                            // Level no longer configured: treat as obsolete.
                            let _ = storage.delete_object(
                                storage.open_object(&name, 0).expect("object exists"),
                            );
                        }
                    }
                }
                Err(e) if e.indicates_bad_object() => {
                    // Incomplete/corrupt run: clean it up (also frees the
                    // name — shared storage is create-once).
                    if let Ok(h) = storage.open_object(&name, 0) {
                        let _ = storage.delete_object(h);
                    }
                }
                // Storage is sick (transient budget exhausted, store down) or
                // the definition doesn't match: deleting would lose data —
                // fail the recovery instead.
                Err(e) => return Err(e.into()),
            }
        }
        index
            .next_run_id
            .fetch_max(max_run_id + 1, Ordering::AcqRel);

        // Per-zone overlap resolution: widest run wins.
        let mut kept_per_zone: Vec<Vec<Arc<Run>>> = Vec::with_capacity(per_zone.len());
        for runs in per_zone.iter_mut() {
            // Descending end ID; ties broken by widest range first.
            runs.sort_by(|a, b| {
                let (alo, ahi) = a.groomed_range();
                let (blo, bhi) = b.groomed_range();
                bhi.cmp(&ahi).then_with(|| (bhi - blo).cmp(&(ahi - alo)))
            });
            let mut kept: Vec<Arc<Run>> = Vec::new();
            let mut min_lo_kept = u64::MAX;
            for run in runs.drain(..) {
                let (lo, hi) = run.groomed_range();
                let first = kept.is_empty();
                if first || hi < min_lo_kept {
                    min_lo_kept = min_lo_kept.min(lo);
                    kept.push(run);
                } else {
                    // Covered by an already-kept (wider) run: it was merged.
                    storage.delete_object(run.handle())?;
                }
            }
            kept_per_zone.push(kept);
        }

        // Heal the crash window between evolve steps 1 and 2: surviving
        // later-zone runs may carry watermarks/PSNs newer than the manifest.
        for (zi, kept) in kept_per_zone.iter().enumerate().skip(1) {
            if let Some(max_hi) = kept.iter().map(|r| r.groomed_range().1).max() {
                for boundary in 0..zi.min(index.watermarks.len()) {
                    // Watermarks are exclusive bounds.
                    index.watermarks[boundary].fetch_max(max_hi + 1, Ordering::AcqRel);
                }
            }
            let max_psn = kept.iter().map(|r| r.header().psn).max().unwrap_or(0);
            index.indexed_psn.fetch_max(max_psn, Ordering::AcqRel);
        }

        // Apply the (possibly healed) watermark GC to earlier zones, then
        // publish the lists (oldest first so the head ends newest).
        for (zi, kept) in kept_per_zone.into_iter().enumerate() {
            let watermark = if zi < index.watermarks.len() {
                index.watermark(zi)
            } else {
                0
            };
            for run in kept.into_iter().rev() {
                if zi < index.watermarks.len() && run.groomed_range().1 < watermark {
                    storage.delete_object(run.handle())?;
                    continue;
                }
                // Merge-policy state is not persisted; sealing everything is
                // safe (the policy simply opens fresh active runs).
                run.seal();
                index.zones[zi].list.push_front(run);
            }
        }

        index.persist_manifest()?;
        Ok(Arc::new(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MergePolicy, UmziConfig};
    use crate::evolve::EvolveNotice;
    use crate::query::RangeQuery;
    use crate::reconcile::ReconcileStrategy;
    use umzi_encoding::{ColumnType, Datum};
    use umzi_run::{IndexEntry, Rid, SortBound, ZoneId};

    fn def() -> Arc<IndexDef> {
        Arc::new(
            IndexDef::builder("t")
                .equality("device", ColumnType::Int64)
                .sort("msg", ColumnType::Int64)
                .build()
                .unwrap(),
        )
    }

    fn cfg(non_persisted: Vec<u32>) -> UmziConfig {
        let mut c = UmziConfig::two_zone("idx");
        c.merge = MergePolicy { k: 2, t: 2 };
        c.non_persisted_levels = non_persisted;
        c
    }

    fn entry(idx: &UmziIndex, d: i64, m: i64, ts: u64) -> IndexEntry {
        IndexEntry::new(
            idx.layout(),
            &[Datum::Int64(d)],
            &[Datum::Int64(m)],
            ts,
            Rid::new(ZoneId::GROOMED, ts, 0),
            &[],
        )
        .unwrap()
    }

    fn total_visible_keys(idx: &UmziIndex, device: i64) -> usize {
        idx.range_scan(
            &RangeQuery {
                equality: vec![Datum::Int64(device)],
                lower: SortBound::Unbounded,
                upper: SortBound::Unbounded,
                query_ts: u64::MAX,
            },
            ReconcileStrategy::PriorityQueue,
        )
        .unwrap()
        .len()
    }

    #[test]
    fn recover_empty_index() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        drop(idx);
        storage.simulate_crash();
        let idx = UmziIndex::recover(storage, def(), cfg(vec![])).unwrap();
        assert_eq!(idx.run_count(), 0);
    }

    #[test]
    fn recover_rebuilds_lists_and_queries_match() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        for b in 1..=5u64 {
            let es = (0..20)
                .map(|i| entry(&idx, i % 4, b as i64 * 100 + i, b * 10))
                .collect();
            idx.build_groomed_run(es, b, b).unwrap();
        }
        idx.drain_merges().unwrap();
        idx.collect_garbage().unwrap();
        let before: Vec<(u64, u64)> = idx.zones()[0]
            .list
            .snapshot()
            .iter()
            .map(|r| r.groomed_range())
            .collect();
        let keys_before = total_visible_keys(&idx, 1);
        drop(idx);

        storage.simulate_crash();
        let idx = UmziIndex::recover(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        let after: Vec<(u64, u64)> = idx.zones()[0]
            .list
            .snapshot()
            .iter()
            .map(|r| r.groomed_range())
            .collect();
        assert_eq!(before, after, "run list structure must survive recovery");
        assert_eq!(total_visible_keys(&idx, 1), keys_before);
    }

    #[test]
    fn merged_leftovers_are_deleted_on_recovery() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        for b in 1..=2u64 {
            idx.build_groomed_run(vec![entry(&idx, 1, b as i64, b * 10)], b, b)
                .unwrap();
        }
        idx.merge_at(0).unwrap().unwrap();
        // Crash BEFORE garbage collection: inputs still in shared storage.
        assert_eq!(idx.graveyard_len(), 2);
        drop(idx);
        storage.simulate_crash();

        let idx = UmziIndex::recover(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        // Only the merged run survives; covered inputs were deleted.
        assert_eq!(idx.run_count(), 1);
        let runs = storage.shared().list("idx/runs/").unwrap();
        assert_eq!(runs.len(), 1, "covered inputs deleted: {runs:?}");
        assert_eq!(total_visible_keys(&idx, 1), 2);
    }

    #[test]
    fn non_persisted_runs_recover_via_ancestors() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(Arc::clone(&storage), def(), cfg(vec![1])).unwrap();
        for b in 1..=2u64 {
            idx.build_groomed_run(vec![entry(&idx, 1, b as i64, b * 10)], b, b)
                .unwrap();
        }
        idx.merge_at(0).unwrap().unwrap(); // → non-persisted level-1 run
        assert_eq!(idx.run_count(), 1);
        drop(idx);
        storage.simulate_crash(); // the level-1 run is gone

        let idx = UmziIndex::recover(Arc::clone(&storage), def(), cfg(vec![1])).unwrap();
        // The two persisted ancestors are back.
        assert_eq!(idx.run_count(), 2);
        assert_eq!(total_visible_keys(&idx, 1), 2, "no data lost");
    }

    #[test]
    fn evolve_state_recovers() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        idx.build_groomed_run(vec![entry(&idx, 1, 1, 10)], 1, 1)
            .unwrap();
        idx.build_groomed_run(vec![entry(&idx, 1, 2, 20)], 2, 2)
            .unwrap();
        idx.evolve(EvolveNotice {
            psn: 1,
            groomed_lo: 1,
            groomed_hi: 1,
            entries: vec![IndexEntry::new(
                idx.layout(),
                &[Datum::Int64(1)],
                &[Datum::Int64(1)],
                10,
                Rid::new(ZoneId::POST_GROOMED, 1, 0),
                &[],
            )
            .unwrap()],
        })
        .unwrap();
        idx.collect_garbage().unwrap();
        drop(idx);
        storage.simulate_crash();

        let idx = UmziIndex::recover(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        assert_eq!(idx.indexed_psn(), 1);
        assert_eq!(idx.covered_groomed_hi(0), Some(1));
        assert_eq!(idx.zones()[1].list.len(), 1);
        assert_eq!(total_visible_keys(&idx, 1), 2);
    }

    #[test]
    fn torn_run_object_is_cleaned_up() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        idx.build_groomed_run(vec![entry(&idx, 1, 1, 10)], 1, 1)
            .unwrap();
        drop(idx);
        // Simulate a torn write: a garbage object under the runs prefix.
        storage
            .shared()
            .put(
                "idx/runs/run-99999999999999999999",
                bytes::Bytes::from_static(b"torn"),
            )
            .unwrap();
        storage.simulate_crash();

        let idx = UmziIndex::recover(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        assert_eq!(idx.run_count(), 1);
        assert!(!storage.shared().exists("idx/runs/run-99999999999999999999"));
    }

    #[test]
    fn recovered_run_ids_do_not_collide() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        idx.build_groomed_run(vec![entry(&idx, 1, 1, 10)], 1, 1)
            .unwrap();
        drop(idx);
        storage.simulate_crash();
        let idx = UmziIndex::recover(Arc::clone(&storage), def(), cfg(vec![])).unwrap();
        // A new build must not clash with the recovered run's object name.
        idx.build_groomed_run(vec![entry(&idx, 1, 2, 20)], 2, 2)
            .unwrap();
        assert_eq!(idx.run_count(), 2);
    }
}
