//! The Umzi index instance — one per table shard (§3).
//!
//! Owns the multi-zone run lists, the evolve watermarks, run-ID allocation,
//! manifest persistence and the deferred-deletion graveyard. The maintenance
//! operations live in sibling modules as `impl UmziIndex` blocks:
//! [`crate::build`], [`crate::merge`], [`crate::evolve`],
//! [`crate::recovery`], [`crate::query`], [`crate::cache_mgr`].

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use umzi_encoding::IndexDef;
use umzi_run::{KeyLayout, Run, ZoneId};
use umzi_storage::TieredStorage;

use crate::config::{UmziConfig, ZoneConfig};
use crate::manifest::Manifest;
use crate::runlist::RunList;
use crate::Result;

/// A zone's state: its configuration and lock-free run list.
pub struct ZoneState {
    /// Level range and identity.
    pub config: ZoneConfig,
    /// The zone's run list, newest first.
    pub list: RunList,
}

/// What an index operation just did — fired through the maintenance hook so
/// an attached daemon can enqueue follow-up work from the ingest path
/// instead of polling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintEvent {
    /// A run was published at `level` (a groom build at level 0, or an
    /// evolve build at the receiving zone's entry level).
    RunBuilt {
        /// The new run's level.
        level: u32,
    },
    /// An evolve completed: a run entered the next zone at `level` and
    /// `gc_runs` covered runs were unlinked.
    EvolveApplied {
        /// Entry level of the receiving zone.
        level: u32,
        /// Covered runs garbage-collected by step 3.
        gc_runs: usize,
    },
}

/// Callback an attached maintenance daemon registers to learn about index
/// operations. Must be cheap and non-blocking (it runs on the ingest path).
pub type MaintenanceHook = Arc<dyn Fn(MaintEvent) + Send + Sync>;

/// Operation counters (monotonic).
#[derive(Debug, Default)]
pub struct IndexCounters {
    /// Index-build operations (level-0 runs created).
    pub builds: AtomicU64,
    /// Merge operations completed.
    pub merges: AtomicU64,
    /// Evolve operations completed.
    pub evolves: AtomicU64,
    /// Runs garbage-collected (unlinked and eventually deleted).
    pub gc_runs: AtomicU64,
    /// Merge conflicts (abandoned merges).
    pub merge_conflicts: AtomicU64,
    /// Range scans that took the partitioned parallel-reconcile path.
    pub parallel_scans: AtomicU64,
    /// Total partitions executed across all parallel scans (so
    /// `scan_partitions / parallel_scans` is the average fan-out).
    pub scan_partitions: AtomicU64,
}

/// The Umzi unified multi-zone index.
pub struct UmziIndex {
    pub(crate) config: UmziConfig,
    pub(crate) def: Arc<IndexDef>,
    pub(crate) layout: KeyLayout,
    pub(crate) storage: Arc<TieredStorage>,
    pub(crate) zones: Vec<ZoneState>,
    /// `watermarks[i]`: *exclusive* upper bound of groomed-block IDs covered
    /// by zones `> i` (0 = nothing evolved yet). Stored exclusive so that a
    /// legitimate groomed block 0 is representable; the paper's "maximum
    /// groomed block ID covered" is `watermarks[i] − 1`.
    pub(crate) watermarks: Vec<AtomicU64>,
    pub(crate) indexed_psn: AtomicU64,
    pub(crate) next_run_id: AtomicU64,
    pub(crate) manifest_seq: AtomicU64,
    /// Cache-manager state (§6.2): runs at levels ≤ this are kept in the
    /// SSD cache.
    pub(crate) cached_level: AtomicU32,
    /// Unlinked runs awaiting deletion once no reader holds them.
    pub(crate) graveyard: Mutex<Vec<Arc<Run>>>,
    /// Persisted runs that became merge *ancestors* of non-persisted runs
    /// (§6.1): unlinked from the lists but kept alive (and in shared
    /// storage) until the chain re-enters a persisted level.
    pub(crate) ancestor_pool: Mutex<std::collections::HashMap<String, Arc<Run>>>,
    /// One lock per level serializing that level's maintenance (§5.1:
    /// "each level is assigned a dedicated index maintenance thread").
    pub(crate) level_locks: Vec<Mutex<()>>,
    pub(crate) counters: IndexCounters,
    /// Daemon notification hook; `None` when no daemon is attached.
    pub(crate) maintenance_hook: Mutex<Option<MaintenanceHook>>,
}

impl std::fmt::Debug for UmziIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UmziIndex")
            .field("name", &self.config.name)
            .field("zones", &self.zones.len())
            .field(
                "runs",
                &self.zones.iter().map(|z| z.list.len()).sum::<usize>(),
            )
            .finish()
    }
}

impl UmziIndex {
    /// Create a fresh index instance, writing its initial manifest.
    pub fn create(
        storage: Arc<TieredStorage>,
        def: Arc<IndexDef>,
        config: UmziConfig,
    ) -> Result<Arc<UmziIndex>> {
        config.validate()?;
        if let Some(dc) = &config.cache.decoded_cache {
            storage
                .decoded_cache()
                .reconfigure(dc)
                .map_err(|e| crate::error::UmziError::Config(e.to_string()))?;
        }
        if let Some(retry) = config.retry {
            storage.set_retry_config(retry);
        }
        if let Some(tc) = &config.telemetry {
            storage.telemetry().configure(tc);
        }
        if let Some(pf) = config.prefetch {
            storage.set_prefetch_config(pf);
        }
        let index = Self::empty(storage, def, config);
        index.persist_manifest()?;
        Ok(Arc::new(index))
    }

    pub(crate) fn empty(
        storage: Arc<TieredStorage>,
        def: Arc<IndexDef>,
        config: UmziConfig,
    ) -> UmziIndex {
        let zones: Vec<ZoneState> = config
            .zones
            .iter()
            .map(|z| ZoneState {
                config: z.clone(),
                list: RunList::new(),
            })
            .collect();
        let n_boundaries = zones.len().saturating_sub(1);
        let max_level = config.max_level();
        UmziIndex {
            layout: KeyLayout::new(Arc::clone(&def)),
            def,
            storage,
            watermarks: (0..n_boundaries).map(|_| AtomicU64::new(0)).collect(),
            indexed_psn: AtomicU64::new(0),
            next_run_id: AtomicU64::new(1),
            manifest_seq: AtomicU64::new(0),
            cached_level: AtomicU32::new(max_level),
            graveyard: Mutex::new(Vec::new()),
            ancestor_pool: Mutex::new(std::collections::HashMap::new()),
            level_locks: (0..=max_level).map(|_| Mutex::new(())).collect(),
            counters: IndexCounters::default(),
            maintenance_hook: Mutex::new(None),
            zones,
            config,
        }
    }

    /// Register (or clear) the maintenance hook a daemon uses to receive
    /// [`MaintEvent`]s from the build and evolve paths.
    pub fn set_maintenance_hook(&self, hook: Option<MaintenanceHook>) {
        *self.maintenance_hook.lock() = hook;
    }

    /// Fire the maintenance hook, if any.
    pub(crate) fn notify_maintenance(&self, event: MaintEvent) {
        let hook = self.maintenance_hook.lock().clone();
        if let Some(h) = hook {
            h(event);
        }
    }

    /// The index definition.
    pub fn def(&self) -> &Arc<IndexDef> {
        &self.def
    }

    /// The key layout.
    pub fn layout(&self) -> &KeyLayout {
        &self.layout
    }

    /// The configuration.
    pub fn config(&self) -> &UmziConfig {
        &self.config
    }

    /// The storage hierarchy.
    pub fn storage(&self) -> &Arc<TieredStorage> {
        &self.storage
    }

    /// The zones (ordered by data age; index 0 receives fresh builds).
    pub fn zones(&self) -> &[ZoneState] {
        &self.zones
    }

    /// The *exclusive* evolve watermark for zone boundary `i` (zone `i` →
    /// zone `i+1`): groomed blocks with ID `< watermark` are covered by
    /// later zones; `0` means nothing has evolved yet.
    pub fn watermark(&self, boundary: usize) -> u64 {
        self.watermarks
            .get(boundary)
            .map(|w| w.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// The paper's "maximum groomed block ID covered by the post-groomed run
    /// list": `None` before the first evolve.
    pub fn covered_groomed_hi(&self, boundary: usize) -> Option<u64> {
        let w = self.watermark(boundary);
        (w > 0).then(|| w - 1)
    }

    /// The last evolved post-groom sequence number (IndexedPSN, §5.4).
    pub fn indexed_psn(&self) -> u64 {
        self.indexed_psn.load(Ordering::Acquire)
    }

    /// Operation counters.
    pub fn counters(&self) -> &IndexCounters {
        &self.counters
    }

    /// Allocate the next run ID.
    pub(crate) fn alloc_run_id(&self) -> u64 {
        self.next_run_id.fetch_add(1, Ordering::AcqRel)
    }

    /// Zone index owning `zone_id`, if configured.
    pub fn zone_index_of(&self, zone_id: ZoneId) -> Option<usize> {
        self.zones.iter().position(|z| z.config.zone == zone_id)
    }

    /// Persist the current durable state as a new manifest and GC old ones.
    pub fn persist_manifest(&self) -> Result<()> {
        let seq = self.manifest_seq.fetch_add(1, Ordering::AcqRel) + 1;
        let manifest = Manifest {
            seq,
            indexed_psn: self.indexed_psn.load(Ordering::Acquire),
            next_run_id: self.next_run_id.load(Ordering::Acquire),
            current_cached_level: self.cached_level.load(Ordering::Acquire),
            watermarks: self
                .watermarks
                .iter()
                .map(|w| w.load(Ordering::Acquire))
                .collect(),
        };
        manifest.persist(&self.storage, &self.config.manifest_object_name(seq))?;
        Manifest::gc(&self.storage, &self.config.manifest_prefix(), 2)?;
        Ok(())
    }

    /// Move unlinked runs to the graveyard for deferred deletion.
    pub(crate) fn bury(&self, runs: impl IntoIterator<Item = Arc<Run>>) {
        let mut g = self.graveyard.lock();
        for r in runs {
            self.counters.gc_runs.fetch_add(1, Ordering::Relaxed);
            g.push(r);
        }
    }

    /// Delete graveyard runs that no reader references any more. Returns the
    /// number of run objects deleted. Runs still referenced by in-flight
    /// queries stay buried — the paper's non-blocking guarantee means a
    /// query may keep reading a replaced run after a merge or evolve.
    pub fn collect_garbage(&self) -> Result<usize> {
        // Run-list nodes hold `Arc<Run>` clones only while linked or while a
        // snapshot is alive, so the strong-count check below observes
        // ownership directly.
        let candidates: Vec<Arc<Run>> = {
            let mut g = self.graveyard.lock();
            let (free, busy): (Vec<_>, Vec<_>) =
                g.drain(..).partition(|r| Arc::strong_count(r) == 1);
            *g = busy;
            free
        };
        let mut deleted = 0;
        for run in candidates {
            self.storage.delete_object(run.handle())?;
            deleted += 1;
        }
        Ok(deleted)
    }

    /// Number of runs currently buried (observability / tests).
    pub fn graveyard_len(&self) -> usize {
        self.graveyard.lock().len()
    }

    /// Total number of live runs across all zones.
    pub fn run_count(&self) -> usize {
        self.zones.iter().map(|z| z.list.len()).sum()
    }

    /// Live level-0 runs — the quantity the ingest backpressure gate
    /// watches (every groom adds one; merges and evolve GC remove them).
    /// Allocation-free: this runs on the upsert hot path.
    pub fn level0_run_count(&self) -> usize {
        self.zones[0].list.count_matching(|r| r.level() == 0)
    }

    /// Serialized bytes held in live level-0 runs — the byte-denominated
    /// companion to [`UmziIndex::level0_run_count`], and the primary signal
    /// of the ingest gate's bytes-outstanding watermark: run *count* is
    /// blind to run size (ten 100-byte runs gate like ten 100 MB ones),
    /// while bytes track the actual un-merged backlog maintenance still has
    /// to chew through. Allocation-free (one lock-free list walk).
    pub fn level0_run_bytes(&self) -> u64 {
        self.zones[0]
            .list
            .sum_matching(|r| r.level() == 0, |r| r.size_bytes())
    }

    /// Groomed-block ranges still covered by *unlinked but undeleted* runs
    /// in the graveyard. The janitor must treat these as live coverage: an
    /// in-flight query holding a pre-GC run list can still hand out RIDs
    /// into the groomed blocks such a run spans.
    pub fn graveyard_groomed_ranges(&self) -> Vec<(u64, u64)> {
        self.graveyard
            .lock()
            .iter()
            .filter(|r| r.zone() == ZoneId::GROOMED)
            .map(|r| r.groomed_range())
            .collect()
    }

    /// Snapshot of every live run, zone by zone (newest first within each).
    pub fn all_runs(&self) -> Vec<Vec<Arc<Run>>> {
        self.zones.iter().map(|z| z.list.snapshot()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umzi_encoding::ColumnType;

    fn def() -> Arc<IndexDef> {
        Arc::new(
            IndexDef::builder("t")
                .equality("device", ColumnType::Int64)
                .sort("msg", ColumnType::Int64)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn create_writes_manifest() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(storage.clone(), def(), UmziConfig::two_zone("i")).unwrap();
        assert_eq!(idx.run_count(), 0);
        assert_eq!(idx.indexed_psn(), 0);
        assert_eq!(idx.watermark(0), 0);
        let manifests = storage.shared().list("i/manifest/").unwrap();
        assert_eq!(manifests.len(), 1);
    }

    #[test]
    fn invalid_config_rejected() {
        let storage = Arc::new(TieredStorage::in_memory());
        let mut cfg = UmziConfig::two_zone("i");
        cfg.non_persisted_levels = vec![0];
        assert!(UmziIndex::create(storage, def(), cfg).is_err());
    }

    #[test]
    fn run_ids_are_unique() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(storage, def(), UmziConfig::two_zone("i")).unwrap();
        let a = idx.alloc_run_id();
        let b = idx.alloc_run_id();
        assert!(b > a);
    }

    #[test]
    fn manifest_sequence_advances() {
        let storage = Arc::new(TieredStorage::in_memory());
        let idx = UmziIndex::create(storage.clone(), def(), UmziConfig::two_zone("i")).unwrap();
        idx.persist_manifest().unwrap();
        idx.persist_manifest().unwrap();
        // GC keeps 2.
        assert_eq!(storage.shared().list("i/manifest/").unwrap().len(), 2);
    }
}
