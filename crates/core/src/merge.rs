//! Index merge (§5.3).
//!
//! The hybrid merge policy: each level `L` holds one *active* run plus up to
//! `K` *inactive* (sealed) runs. When `K` inactive runs accumulate at `L`,
//! they are merged together with the active run of `L+1` into a new active
//! run at `L+1`; that run is sealed once its size reaches `T×` the size of
//! an inactive `L` run. Runs entering a zone (groom builds, evolve builds)
//! are sealed at birth. The top level of each zone never merges further —
//! groomed-zone top runs leave via evolve GC (§5.4).
//!
//! A merge publishes its result with the two-step pointer splice of
//! Figure 4, implemented by [`crate::runlist::RunList::replace_consecutive`];
//! queries racing with the splice correctly see either the old runs or the
//! new run.
//!
//! Non-persisted target levels (§6.1): merged-away *persisted* inputs are
//! not deleted — they are recorded as the new run's ancestors and parked in
//! the ancestor pool until the chain re-enters a persisted level.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;
use umzi_run::{DataBlock, EntryRef, Run};

use crate::error::UmziError;
use crate::index::UmziIndex;
use crate::Result;

/// Outcome of one completed merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// Source level.
    pub level: u32,
    /// Number of input runs (K from the source level, plus the target's
    /// active run when present).
    pub inputs: usize,
    /// ID of the produced run.
    pub output_run_id: u64,
    /// Entries in the produced run.
    pub output_entries: u64,
    /// Size of the produced run object in bytes.
    pub output_bytes: u64,
    /// Whether the produced run was immediately sealed.
    pub sealed: bool,
}

/// Sequential cursor over all entries of a run, reusing the current block.
pub(crate) struct RunCursor {
    run: Arc<Run>,
    ordinal: u64,
    block: Option<(u32, DataBlock)>,
}

impl RunCursor {
    pub(crate) fn new(run: Arc<Run>) -> Self {
        Self {
            run,
            ordinal: 0,
            block: None,
        }
    }

    /// Fetch the entry at the cursor, or `None` at end of run.
    pub(crate) fn current(&mut self) -> Result<Option<EntryRef>> {
        if self.ordinal >= self.run.entry_count() {
            return Ok(None);
        }
        let (b, slot) = self.run.locate(self.ordinal)?;
        let reuse = matches!(&self.block, Some((idx, _)) if *idx == b);
        if !reuse {
            // Merges sweep every input block exactly once: maintenance
            // traffic, never admitted to the decoded cache.
            self.block = Some((
                b,
                self.run
                    .data_block_as(b, umzi_run::AccessPattern::Maintenance)?,
            ));
        }
        let (_, block) = self.block.as_ref().expect("block just set");
        Ok(Some(block.entry(slot)?))
    }

    pub(crate) fn advance(&mut self) {
        self.ordinal += 1;
    }
}

struct HeapKey {
    key: Bytes,
    idx: usize,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.idx == other.idx
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap by (key, stream index).
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl UmziIndex {
    /// Attempt one merge of level `level` into `level + 1` (same zone).
    /// Returns `Ok(None)` when the merge condition is not met, `Ok(Some)`
    /// on success, and [`UmziError::MergeConflict`] if the input runs were
    /// concurrently removed (e.g. by evolve GC) — simply retry later.
    pub fn merge_at(&self, level: u32) -> Result<Option<MergeReport>> {
        let Some(zone_idx) = self.config.zone_of_level(level) else {
            return Ok(None);
        };
        if self.config.zone_of_level(level + 1) != Some(zone_idx) {
            return Ok(None); // zone-top level: merges never cross zones (§4.3)
        }
        let _level_guard = self.level_locks[level as usize].lock();

        let snapshot = self.zones[zone_idx].list.snapshot();
        let at_level: Vec<&Arc<Run>> = snapshot.iter().filter(|r| r.level() == level).collect();
        let sealed_count = at_level.iter().filter(|r| r.is_sealed()).count();
        let k = self.config.merge.k;
        if sealed_count < k {
            return Ok(None);
        }

        // Oldest K sealed runs = the tail of the level's segment (only the
        // newest run of a level can be unsealed).
        let inputs_l: Vec<Arc<Run>> = at_level[at_level.len() - k..]
            .iter()
            .map(|r| Arc::clone(r))
            .collect();
        debug_assert!(inputs_l.iter().all(|r| r.is_sealed()));

        // The target level's active run, if any, joins the merge.
        let target_active: Option<Arc<Run>> = snapshot
            .iter()
            .find(|r| r.level() == level + 1)
            .filter(|r| !r.is_sealed())
            .map(Arc::clone);

        let mut inputs: Vec<Arc<Run>> = inputs_l.clone();
        if let Some(t) = &target_active {
            inputs.push(Arc::clone(t));
        }
        let input_ids: Vec<u64> = inputs.iter().map(|r| r.run_id()).collect();

        let groomed_lo = inputs
            .iter()
            .map(|r| r.groomed_range().0)
            .min()
            .expect("inputs");
        let groomed_hi = inputs
            .iter()
            .map(|r| r.groomed_range().1)
            .max()
            .expect("inputs");
        let target_persisted = self.config.is_persisted_level(level + 1);

        // Ancestor bookkeeping (§6.1).
        let ancestors = if target_persisted {
            Vec::new()
        } else {
            let mut out = Vec::new();
            for r in &inputs {
                if self.config.is_persisted_level(r.level()) {
                    out.push(r.name().to_owned());
                } else {
                    out.extend(r.header().ancestors.iter().cloned());
                }
            }
            out
        };

        // K-way merge of all versions — Umzi is a multi-version index, so
        // merges combine runs without dropping older versions (time travel
        // needs them; version GC is endTS-driven in the data zones).
        let mut cursors: Vec<RunCursor> = inputs
            .iter()
            .map(|r| RunCursor::new(Arc::clone(r)))
            .collect();
        let new_run = self.build_run_sorted(
            zone_idx,
            level + 1,
            groomed_lo,
            groomed_hi,
            0,
            ancestors,
            |builder| {
                let mut heap = BinaryHeap::with_capacity(cursors.len());
                for (idx, c) in cursors.iter_mut().enumerate() {
                    if let Some(e) = c.current()? {
                        heap.push(HeapKey {
                            key: e.key.clone(),
                            idx,
                        });
                    }
                }
                while let Some(HeapKey { idx, .. }) = heap.pop() {
                    let entry = cursors[idx].current()?.expect("heap entry exists");
                    builder.push_raw(&entry.key, &entry.value)?;
                    cursors[idx].advance();
                    if let Some(e) = cursors[idx].current()? {
                        heap.push(HeapKey {
                            key: e.key.clone(),
                            idx,
                        });
                    }
                }
                Ok(())
            },
        )?;

        // Seal once the active run is T× an inactive input from level L.
        let max_input_l = inputs_l
            .iter()
            .map(|r| r.entry_count())
            .max()
            .unwrap_or(0)
            .max(1);
        let sealed = new_run.entry_count() >= self.config.merge.t * max_input_l;
        if sealed {
            new_run.seal();
        }

        // Publish with the Figure 4 splice; on conflict drop the orphan run.
        let Some(removed) = self.zones[zone_idx]
            .list
            .replace_consecutive(&input_ids, Arc::clone(&new_run))
        else {
            self.storage.delete_object(new_run.handle())?;
            self.counters
                .merge_conflicts
                .fetch_add(1, Ordering::Relaxed);
            return Err(UmziError::MergeConflict);
        };

        // Dispose of the replaced runs.
        if target_persisted {
            for r in &removed {
                for ancestor in &r.header().ancestors {
                    if let Some(a) = self.ancestor_pool.lock().remove(ancestor) {
                        self.bury([a]);
                    } else if let Err(e) =
                        self.storage.with_retry_as(umzi_storage::OpClass::Gc, || {
                            // Post-recovery ancestor without a live handle.
                            self.storage.shared().delete(ancestor)
                        })
                    {
                        // GC must not fail the merge, but a leaked object
                        // is counted and parked for the janitor.
                        if !matches!(e, umzi_storage::StorageError::NotFound { .. }) {
                            self.storage.note_gc_delete_failure(ancestor);
                        }
                    }
                }
            }
            self.bury(removed);
        } else {
            for r in removed {
                if self.config.is_persisted_level(r.level()) {
                    // Kept as an ancestor: object stays in shared storage.
                    self.ancestor_pool.lock().insert(r.name().to_owned(), r);
                } else {
                    self.bury([r]);
                }
            }
        }

        self.counters.merges.fetch_add(1, Ordering::Relaxed);
        Ok(Some(MergeReport {
            level,
            inputs: input_ids.len(),
            output_run_id: new_run.run_id(),
            output_entries: new_run.entry_count(),
            output_bytes: new_run.size_bytes(),
            sealed,
        }))
    }

    /// Run merges at every level until the structure is quiescent. Returns
    /// the number of merges performed. (Tests and synchronous callers; the
    /// background [`crate::daemon::MaintenanceDaemon`] drives `merge_at`
    /// job-by-job instead.)
    pub fn drain_merges(&self) -> Result<usize> {
        let mut total = 0;
        loop {
            let mut progressed = false;
            for level in 0..=self.config.max_level() {
                loop {
                    match self.merge_at(level) {
                        Ok(Some(_)) => {
                            total += 1;
                            progressed = true;
                        }
                        Ok(None) => break,
                        Err(UmziError::MergeConflict) => break,
                        Err(e) => return Err(e),
                    }
                }
            }
            if !progressed {
                return Ok(total);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MergePolicy, UmziConfig};
    use umzi_encoding::{ColumnType, Datum, IndexDef};
    use umzi_run::{IndexEntry, Rid, ZoneId};
    use umzi_storage::TieredStorage;

    fn setup(k: usize, t: u64, non_persisted: Vec<u32>) -> Arc<UmziIndex> {
        let storage = Arc::new(TieredStorage::in_memory());
        let def = Arc::new(
            IndexDef::builder("t")
                .equality("device", ColumnType::Int64)
                .sort("msg", ColumnType::Int64)
                .build()
                .unwrap(),
        );
        let mut cfg = UmziConfig::two_zone("idx");
        cfg.merge = MergePolicy { k, t };
        cfg.non_persisted_levels = non_persisted;
        UmziIndex::create(storage, def, cfg).unwrap()
    }

    fn add_groom(idx: &UmziIndex, block: u64, n: i64) {
        let entries: Vec<IndexEntry> = (0..n)
            .map(|i| {
                IndexEntry::new(
                    idx.layout(),
                    &[Datum::Int64(i % 5)],
                    &[Datum::Int64(i + block as i64 * 10_000)],
                    block * 100 + i as u64,
                    Rid::new(ZoneId::GROOMED, block, i as u32),
                    &[],
                )
                .unwrap()
            })
            .collect();
        idx.build_groomed_run(entries, block, block).unwrap();
    }

    fn levels(idx: &UmziIndex) -> Vec<u32> {
        idx.zones()[0]
            .list
            .snapshot()
            .iter()
            .map(|r| r.level())
            .collect()
    }

    #[test]
    fn no_merge_below_k() {
        let idx = setup(4, 4, vec![]);
        for b in 1..=3 {
            add_groom(&idx, b, 10);
        }
        assert_eq!(idx.merge_at(0).unwrap(), None);
        assert_eq!(idx.run_count(), 3);
    }

    #[test]
    fn k_runs_trigger_merge_preserving_entries() {
        let idx = setup(4, 100, vec![]);
        for b in 1..=4 {
            add_groom(&idx, b, 10);
        }
        let report = idx.merge_at(0).unwrap().expect("merge must fire");
        assert_eq!(report.level, 0);
        assert_eq!(report.inputs, 4);
        assert_eq!(
            report.output_entries, 40,
            "multi-version merge keeps all entries"
        );
        assert!(!report.sealed, "T=100 keeps the new run active");
        assert_eq!(levels(&idx), vec![1]);
        // Covered groomed range spans all inputs.
        let run = &idx.zones()[0].list.snapshot()[0];
        assert_eq!(run.groomed_range(), (1, 4));
    }

    #[test]
    fn incoming_runs_merge_into_active_target() {
        let idx = setup(2, 1000, vec![]);
        for b in 1..=2 {
            add_groom(&idx, b, 10);
        }
        idx.merge_at(0).unwrap().unwrap(); // → level-1 active (20 entries)
        for b in 3..=4 {
            add_groom(&idx, b, 10);
        }
        let report = idx.merge_at(0).unwrap().unwrap();
        assert_eq!(report.inputs, 3, "2 level-0 runs + level-1 active");
        assert_eq!(report.output_entries, 40);
        assert_eq!(levels(&idx), vec![1]);
    }

    #[test]
    fn seal_threshold_respects_t() {
        // T = 2: after merging 2 runs of 10 into 20 entries, 20 ≥ 2×10 seals.
        let idx = setup(2, 2, vec![]);
        for b in 1..=2 {
            add_groom(&idx, b, 10);
        }
        let report = idx.merge_at(0).unwrap().unwrap();
        assert!(report.sealed);
        // Next pair creates a NEW active run instead of growing the sealed one.
        for b in 3..=4 {
            add_groom(&idx, b, 10);
        }
        let report = idx.merge_at(0).unwrap().unwrap();
        assert_eq!(report.inputs, 2, "sealed target must not participate");
        assert_eq!(levels(&idx), vec![1, 1]);
    }

    #[test]
    fn cascades_to_higher_levels() {
        let idx = setup(2, 2, vec![]);
        // Enough grooms to push data through levels 0 → 1 → 2.
        for b in 1..=8 {
            add_groom(&idx, b, 10);
        }
        let merges = idx.drain_merges().unwrap();
        assert!(merges >= 4, "expected cascading merges, got {merges}");
        let max_level = levels(&idx).into_iter().max().unwrap();
        assert!(max_level >= 2, "data must have reached level 2");
        // All 80 entries survive, wherever they live.
        let total: u64 = idx.zones()[0]
            .list
            .snapshot()
            .iter()
            .map(|r| r.entry_count())
            .sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn merged_inputs_are_buried_and_collectable() {
        let idx = setup(2, 100, vec![]);
        for b in 1..=2 {
            add_groom(&idx, b, 10);
        }
        idx.merge_at(0).unwrap().unwrap();
        assert_eq!(idx.graveyard_len(), 2);
        let deleted = idx.collect_garbage().unwrap();
        assert_eq!(deleted, 2);
        assert_eq!(idx.graveyard_len(), 0);
        // Their objects are gone from shared storage.
        let runs = idx.storage().shared().list("idx/runs/").unwrap();
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn readers_delay_garbage_deletion() {
        let idx = setup(2, 100, vec![]);
        for b in 1..=2 {
            add_groom(&idx, b, 10);
        }
        let held = idx.zones()[0].list.snapshot(); // a "query" holding runs
        idx.merge_at(0).unwrap().unwrap();
        assert_eq!(
            idx.collect_garbage().unwrap(),
            0,
            "reader still holds the runs"
        );
        drop(held);
        assert_eq!(idx.collect_garbage().unwrap(), 2);
    }

    #[test]
    fn non_persisted_target_records_ancestors() {
        let idx = setup(2, 1000, vec![1]);
        for b in 1..=2 {
            add_groom(&idx, b, 10);
        }
        let shared_before = idx.storage().shared().list("idx/runs/").unwrap().len();
        idx.merge_at(0).unwrap().unwrap();
        let snap = idx.zones()[0].list.snapshot();
        assert_eq!(snap.len(), 1);
        let run = &snap[0];
        assert_eq!(run.level(), 1);
        assert_eq!(
            run.header().ancestors.len(),
            2,
            "both persisted inputs recorded"
        );
        // §6.1: old runs are NOT deleted from shared storage.
        idx.collect_garbage().unwrap();
        let shared_after = idx.storage().shared().list("idx/runs/").unwrap().len();
        assert_eq!(
            shared_after, shared_before,
            "ancestors must survive in shared storage"
        );
    }

    #[test]
    fn ancestors_deleted_when_reaching_persisted_level() {
        // Levels: 1 non-persisted; level 2 persisted. K=2, T=2 so merges
        // cascade 0→1→2.
        let idx = setup(2, 2, vec![1]);
        for b in 1..=4 {
            add_groom(&idx, b, 10);
        }
        idx.drain_merges().unwrap();
        idx.collect_garbage().unwrap();
        let snap = idx.zones()[0].list.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].level(), 2);
        assert!(snap[0].header().ancestors.is_empty());
        // Everything obsolete is gone from shared storage: only the final
        // persisted run remains under the runs prefix.
        let runs = idx.storage().shared().list("idx/runs/").unwrap();
        assert_eq!(runs.len(), 1, "ancestors cleaned up: {runs:?}");
    }

    #[test]
    fn merge_is_sorted_and_loses_nothing() {
        let idx = setup(3, 100, vec![]);
        for b in 1..=3 {
            add_groom(&idx, b, 50);
        }
        idx.merge_at(0).unwrap().unwrap();
        let run = idx.zones()[0].list.snapshot()[0].clone();
        assert_eq!(run.entry_count(), 150);
        let mut last: Option<Vec<u8>> = None;
        for ord in 0..run.entry_count() {
            let e = run.entry(ord).unwrap();
            if let Some(p) = &last {
                assert!(
                    p.as_slice() <= &e.key[..],
                    "merge output out of order at {ord}"
                );
            }
            last = Some(e.key.to_vec());
        }
    }
}
