//! Observability: a point-in-time snapshot of index structure and counters.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use umzi_storage::StorageStats;

use crate::index::UmziIndex;

/// A snapshot of index state for dashboards, benchmarks and tests.
#[derive(Debug, Clone)]
pub struct IndexStats {
    /// Live runs per zone (zone order as configured).
    pub runs_per_zone: Vec<usize>,
    /// Live runs per level.
    pub runs_per_level: BTreeMap<u32, usize>,
    /// Index entries per zone.
    pub entries_per_zone: Vec<u64>,
    /// Total index entries across zones.
    pub total_entries: u64,
    /// Completed build operations.
    pub builds: u64,
    /// Completed merges.
    pub merges: u64,
    /// Completed evolve operations.
    pub evolves: u64,
    /// Runs garbage-collected.
    pub gc_runs: u64,
    /// Abandoned merges.
    pub merge_conflicts: u64,
    /// Range scans that took the partitioned parallel-reconcile path.
    pub parallel_scans: u64,
    /// Partitions executed across all parallel scans.
    pub scan_partitions: u64,
    /// Current watermarks (one per zone boundary).
    pub watermarks: Vec<u64>,
    /// Last evolved PSN.
    pub indexed_psn: u64,
    /// Cache-manager cached level.
    pub cached_level: u32,
    /// Runs awaiting deferred deletion.
    pub graveyard: usize,
    /// Storage-hierarchy statistics.
    pub storage: StorageStats,
}

impl UmziIndex {
    /// Capture a consistent-enough snapshot of stats (individual counters
    /// are read atomically; cross-counter consistency is best-effort, which
    /// is fine for observability).
    pub fn stats(&self) -> IndexStats {
        let mut runs_per_zone = Vec::with_capacity(self.zones.len());
        let mut entries_per_zone = Vec::with_capacity(self.zones.len());
        let mut runs_per_level: BTreeMap<u32, usize> = BTreeMap::new();
        for zone in &self.zones {
            let snap = zone.list.snapshot();
            runs_per_zone.push(snap.len());
            entries_per_zone.push(snap.iter().map(|r| r.entry_count()).sum());
            for r in &snap {
                *runs_per_level.entry(r.level()).or_insert(0) += 1;
            }
        }
        IndexStats {
            total_entries: entries_per_zone.iter().sum(),
            runs_per_zone,
            runs_per_level,
            entries_per_zone,
            builds: self.counters.builds.load(Ordering::Relaxed),
            merges: self.counters.merges.load(Ordering::Relaxed),
            evolves: self.counters.evolves.load(Ordering::Relaxed),
            gc_runs: self.counters.gc_runs.load(Ordering::Relaxed),
            merge_conflicts: self.counters.merge_conflicts.load(Ordering::Relaxed),
            parallel_scans: self.counters.parallel_scans.load(Ordering::Relaxed),
            scan_partitions: self.counters.scan_partitions.load(Ordering::Relaxed),
            watermarks: (0..self.watermarks.len())
                .map(|i| self.watermark(i))
                .collect(),
            indexed_psn: self.indexed_psn(),
            cached_level: self.current_cached_level(),
            graveyard: self.graveyard_len(),
            storage: self.storage.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::UmziConfig;
    use crate::index::UmziIndex;
    use std::sync::Arc;
    use umzi_encoding::{ColumnType, Datum, IndexDef};
    use umzi_run::{IndexEntry, Rid, ZoneId};
    use umzi_storage::TieredStorage;

    #[test]
    fn stats_reflect_structure() {
        let storage = Arc::new(TieredStorage::in_memory());
        let def = Arc::new(
            IndexDef::builder("t")
                .equality("k", ColumnType::Int64)
                .build()
                .unwrap(),
        );
        let idx = UmziIndex::create(storage, def, UmziConfig::two_zone("idx")).unwrap();
        for b in 1..=3u64 {
            let es = (0..10)
                .map(|i| {
                    IndexEntry::new(
                        idx.layout(),
                        &[Datum::Int64(i)],
                        &[],
                        b * 10 + i as u64,
                        Rid::new(ZoneId::GROOMED, b, i as u32),
                        &[],
                    )
                    .unwrap()
                })
                .collect();
            idx.build_groomed_run(es, b, b).unwrap();
        }
        let s = idx.stats();
        assert_eq!(s.runs_per_zone, vec![3, 0]);
        assert_eq!(s.total_entries, 30);
        assert_eq!(s.builds, 3);
        assert_eq!(s.runs_per_level.get(&0), Some(&3));
        assert_eq!(s.watermarks, vec![0]);
    }
}
